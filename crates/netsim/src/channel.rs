//! The metered request/response channel between PDM client and database
//! server. Every exchange advances the virtual clock and updates traffic
//! counters exactly per the paper's cost formulas.

use pdm_obs::{kinds, Recorder, TraceContext};

use crate::clock::VirtualClock;
use crate::fault::{FaultEvent, FaultEventKind, FaultPlan, LinkError, ScriptedKind};
use crate::link::LinkProfile;
use crate::stats::TrafficStats;

/// Cost breakdown of one request/response exchange.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundTrip {
    /// Packets the request occupied.
    pub request_packets: usize,
    /// Chargeable bytes of the exchange.
    pub volume_bytes: f64,
    /// Latency share (2 · T_Lat).
    pub latency_time: f64,
    /// Serialization share (volume / dtr).
    pub transfer_time: f64,
}

impl RoundTrip {
    pub fn total_time(&self) -> f64 {
        self.latency_time + self.transfer_time
    }
}

/// A simulated client/server link that meters every exchange.
///
/// The charge for one round trip with a request of `r` bytes and a response
/// payload of `p` bytes is (paper eq. (2)–(4), generalized to multi-packet
/// requests as in eq. (5)):
///
/// ```text
/// q_pkts = ⌈r / size_p⌉  (min 1)
/// vol    = q_pkts·size_p + p + q_pkts·size_p/2     [half-full last packet]
/// T      = 2·T_Lat + vol/dtr
/// ```
#[derive(Debug, Clone)]
pub struct MeteredChannel {
    link: LinkProfile,
    clock: VirtualClock,
    stats: TrafficStats,
    trace: Option<crate::trace::Trace>,
    /// Observability recorder (disabled by default — a free no-op handle).
    /// The channel is the only component that advances the virtual clock,
    /// so it is also the only emitter of virtually-wide spans.
    obs: Recorder,
    /// Cross-site trace context piggybacked on every exchange while set:
    /// each request grows by [`TraceContext::WIRE_BYTES`] (entering the
    /// volume model through the packet count) and every wide span carries
    /// the trace/parent ids. `None` adds zero bytes and zero attributes —
    /// the tracing-off path is byte-identical to the untraced channel.
    ctx: Option<TraceContext>,
    faults: Option<FaultPlan>,
    /// Attempt counter across the channel's lifetime; indexes fault draws
    /// and scripted faults. Survives `reset()` so a scripted fault plan
    /// keeps addressing absolute attempt numbers.
    exchange_index: u64,
}

/// A request that has been delivered to the server but whose response has
/// not been exchanged yet — the intermediate state of the two-phase fallible
/// exchange ([`MeteredChannel::try_send_request`] /
/// [`MeteredChannel::try_receive_response`]). Carries the retransmit charges
/// accumulated while getting the request through a lossy link.
#[derive(Debug, Clone, Copy)]
pub struct PendingRequest {
    request_bytes: usize,
    request_packets: usize,
    exchange: u64,
    extra_volume: f64,
    extra_latency: f64,
    retransmits: usize,
}

impl PendingRequest {
    /// Packets the request occupied (before retransmits).
    pub fn request_packets(&self) -> usize {
        self.request_packets
    }

    /// Retransmits spent delivering the request.
    pub fn retransmits(&self) -> usize {
        self.retransmits
    }
}

impl MeteredChannel {
    pub fn new(link: LinkProfile) -> Self {
        MeteredChannel {
            link,
            clock: VirtualClock::new(),
            stats: TrafficStats::new(),
            trace: None,
            obs: Recorder::disabled(),
            ctx: None,
            faults: None,
            exchange_index: 0,
        }
    }

    /// Set (or clear) the propagated [`TraceContext`]. The session installs
    /// a fresh context per traced action; replication installs the acting
    /// session's context on every replica channel for the action's scope.
    pub fn set_trace_context(&mut self, ctx: Option<TraceContext>) {
        self.ctx = ctx;
    }

    /// The active trace context, if tracing is on.
    pub fn trace_context(&self) -> Option<TraceContext> {
        self.ctx
    }

    /// Request bytes actually put on the wire: the caller's payload plus
    /// the trace-context piggyback when tracing is on.
    fn wire_request_bytes(&self, request_bytes: usize) -> usize {
        match self.ctx {
            Some(_) => request_bytes + TraceContext::WIRE_BYTES,
            None => request_bytes,
        }
    }

    /// A channel with a fault plan installed from the start.
    pub fn with_faults(link: LinkProfile, plan: FaultPlan) -> Self {
        let mut ch = MeteredChannel::new(link);
        ch.set_fault_plan(plan);
        ch
    }

    /// Install (or replace) the fault plan consulted by the `try_*`
    /// exchange methods. A [`FaultPlan::none()`] plan behaves exactly like
    /// the reliable channel.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.faults = Some(plan);
    }

    /// The installed fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_ref()
    }

    /// Start recording a per-exchange timeline (see [`crate::trace::Trace`]).
    pub fn enable_trace(&mut self) {
        self.trace = Some(crate::trace::Trace::new());
    }

    /// The recorded timeline, if tracing is enabled.
    pub fn trace(&self) -> Option<&crate::trace::Trace> {
        self.trace.as_ref()
    }

    /// Attach an observability recorder: every exchange, fault charge, and
    /// backoff wait is emitted as a span on the virtual timeline. Attaching
    /// a disabled recorder (the default) costs nothing.
    pub fn attach_obs(&mut self, obs: Recorder) {
        self.obs = obs;
    }

    /// The attached observability recorder.
    pub fn obs(&self) -> &Recorder {
        &self.obs
    }

    pub fn link(&self) -> &LinkProfile {
        &self.link
    }

    pub fn stats(&self) -> &TrafficStats {
        &self.stats
    }

    /// Record that a retry was refused by the client's leaky-bucket retry
    /// budget (the failure was surfaced instead of re-offered to the
    /// server). Counted into `net.budget_denied_retries`.
    pub fn note_budget_denied(&mut self) {
        self.stats.budget_denied_retries += 1;
    }

    pub fn clock(&self) -> &VirtualClock {
        &self.clock
    }

    /// Elapsed virtual time in seconds.
    pub fn elapsed(&self) -> f64 {
        self.clock.now()
    }

    /// Clear counters, clock, and any recorded trace before measuring a new
    /// user action.
    pub fn reset(&mut self) {
        self.clock.reset();
        self.stats = TrafficStats::new();
        if let Some(trace) = &mut self.trace {
            trace.clear();
        }
        // The virtual clock restarts at 0; rebase the recorder so the
        // action timeline stays monotonic.
        self.obs.meter_reset();
    }

    /// Perform one metered request/response exchange on the reliable path
    /// (no faults drawn, even when a plan is installed).
    pub fn round_trip(&mut self, request_bytes: usize, response_payload_bytes: usize) -> RoundTrip {
        let request_bytes = self.wire_request_bytes(request_bytes);
        let request_packets = self.link.packets_for(request_bytes);
        self.exchange_index += 1;
        self.finish_exchange(
            request_bytes,
            request_packets,
            response_payload_bytes,
            0.0,
            0.0,
            0,
        )
    }

    /// Shared success-path accounting. With zero extras this is the exact
    /// computation the reliable channel has always performed (adding 0.0 is
    /// an identity in IEEE arithmetic), so a fault-free plan reproduces the
    /// reliable numbers byte for byte.
    fn finish_exchange(
        &mut self,
        request_bytes: usize,
        request_packets: usize,
        response_payload_bytes: usize,
        extra_volume: f64,
        extra_latency: f64,
        retransmits: usize,
    ) -> RoundTrip {
        let request_volume = (request_packets * self.link.packet_size) as f64;
        let correction = request_packets as f64 * self.link.packet_size as f64 / 2.0;
        let volume = request_volume + response_payload_bytes as f64 + correction + extra_volume;

        let latency_time = 2.0 * self.link.latency + extra_latency;
        let transfer_time = self.link.transfer_time(volume);

        self.stats.queries += 1;
        self.stats.communications += 2;
        self.stats.request_packets += request_packets;
        self.stats.response_payload_bytes += response_payload_bytes;
        self.stats.volume_bytes += volume;
        self.stats.latency_time += latency_time;
        self.stats.transfer_time += transfer_time;
        self.stats.retransmits += retransmits;

        // The exact clock-advance amount is computed ONCE and shared by the
        // clock and the span's `v_s` attribute: summing `v_s` over the wide
        // spans in record order reproduces `elapsed()` bit-for-bit (same
        // additions, same order — interval subtraction would not).
        let advance = latency_time + transfer_time;
        let start = self.clock.now();
        self.clock.advance(advance);

        let cost = RoundTrip {
            request_packets,
            volume_bytes: volume,
            latency_time,
            transfer_time,
        };
        if let Some(trace) = &mut self.trace {
            trace.record(crate::trace::TraceEntry {
                start,
                request_bytes,
                response_bytes: response_payload_bytes,
                cost,
            });
        }
        // Exact per-exchange latency/transfer split: profiles summing these
        // attributes in record order reproduce the TrafficStats totals
        // bit-for-bit (same additions, same order).
        let mut attrs = vec![
            ("latency_s", latency_time),
            ("transfer_s", transfer_time),
            ("volume_bytes", volume),
            ("request_bytes", request_bytes as f64),
            ("response_bytes", response_payload_bytes as f64),
            ("retransmits", retransmits as f64),
            ("v_s", advance),
        ];
        if let Some(ctx) = self.ctx {
            attrs.push(("trace_id", ctx.trace_id as f64));
            attrs.push(("parent_span", ctx.parent_span as f64));
        }
        self.obs.record_closed(
            kinds::NET_EXCHANGE,
            format!("q{}", self.stats.queries),
            start,
            self.clock.now(),
            &attrs,
            "",
        );
        cost
    }

    /// Charge a failed attempt: the client burns `waited` virtual seconds
    /// of timeout budget, recorded separately from the successful traffic's
    /// latency/transfer shares.
    fn charge_failure(&mut self, exchange: u64, waited: f64, kind: FaultEventKind) {
        self.stats.failed_attempts += 1;
        self.stats.fault_wait_time += waited;
        match kind {
            FaultEventKind::RequestTimeout => self.stats.timeouts += 1,
            FaultEventKind::Outage => self.stats.outage_hits += 1,
            FaultEventKind::ServerError => self.stats.server_errors += 1,
            FaultEventKind::ResponseLost => self.stats.timeouts += 1,
            FaultEventKind::Retransmit => {}
        }
        let at = self.clock.now();
        self.clock.advance(waited);
        if let Some(trace) = &mut self.trace {
            trace.record_fault(FaultEvent { exchange, at, kind });
        }
        let mut attrs = vec![("wait_s", waited), ("v_s", waited)];
        if let Some(ctx) = self.ctx {
            attrs.push(("trace_id", ctx.trace_id as f64));
            attrs.push(("parent_span", ctx.parent_span as f64));
        }
        self.obs.record_closed(
            kinds::NET_FAULT,
            format!("{kind:?} x{exchange}"),
            at,
            self.clock.now(),
            &attrs,
            "",
        );
    }

    fn record_fault(&mut self, exchange: u64, kind: FaultEventKind) {
        let at = self.clock.now();
        if let Some(trace) = &mut self.trace {
            trace.record_fault(FaultEvent { exchange, at, kind });
        }
    }

    /// Phase 1 of a fallible exchange: deliver the request to the server.
    ///
    /// On success the returned [`PendingRequest`] carries any retransmit
    /// charges; the caller performs the server-side work and completes the
    /// exchange with [`try_receive_response`](Self::try_receive_response).
    /// On failure the timeout budget has been charged to the clock and to
    /// `fault_wait_time`, and — except for [`LinkError::ResponseLost`],
    /// which phase 1 never returns — the server has seen nothing.
    pub fn try_send_request(&mut self, request_bytes: usize) -> Result<PendingRequest, LinkError> {
        let request_bytes = self.wire_request_bytes(request_bytes);
        let exchange = self.exchange_index;
        self.exchange_index += 1;
        let request_packets = self.link.packets_for(request_bytes);

        let plan = match &self.faults {
            Some(plan) if !plan.is_none() => plan.clone(),
            _ => {
                return Ok(PendingRequest {
                    request_bytes,
                    request_packets,
                    exchange,
                    extra_volume: 0.0,
                    extra_latency: 0.0,
                    retransmits: 0,
                })
            }
        };

        // Scheduled outage?
        if let Some(window) = plan.outage_at(self.clock.now()) {
            let waited = plan.timeout.min(window.end - self.clock.now());
            self.charge_failure(exchange, waited, FaultEventKind::Outage);
            return Err(LinkError::Outage {
                waited,
                until: window.end,
            });
        }

        // Scripted fault pinned to this attempt?
        match plan.scripted_for(exchange) {
            Some(ScriptedKind::StallRequest) => {
                self.charge_failure(exchange, plan.timeout, FaultEventKind::RequestTimeout);
                return Err(LinkError::RequestTimeout {
                    waited: plan.timeout,
                });
            }
            Some(ScriptedKind::ServerError) => {
                self.charge_failure(exchange, plan.timeout, FaultEventKind::ServerError);
                return Err(LinkError::ServerError {
                    waited: plan.timeout,
                });
            }
            Some(ScriptedKind::LoseResponse) | None => {}
        }

        let mut rng = plan.rng_for(exchange);

        // Connection stall before delivery.
        if plan.stall_rate > 0.0 && rng.f64() < plan.stall_rate {
            self.charge_failure(exchange, plan.timeout, FaultEventKind::RequestTimeout);
            return Err(LinkError::RequestTimeout {
                waited: plan.timeout,
            });
        }

        // Per-packet loss with TCP-like retransmit accounting: every lost
        // packet is re-sent, re-charging its volume and one round of
        // latency; a packet exceeding the cap abandons the attempt.
        let mut extra_volume = 0.0;
        let mut extra_latency = 0.0;
        let mut retransmits = 0usize;
        for _packet in 0..request_packets {
            let mut tries = 0u32;
            while plan.request_loss_rate > 0.0 && rng.f64() < plan.request_loss_rate {
                tries += 1;
                if tries > plan.max_retransmits {
                    self.charge_failure(exchange, plan.timeout, FaultEventKind::RequestTimeout);
                    return Err(LinkError::RequestTimeout {
                        waited: plan.timeout,
                    });
                }
                extra_volume += self.link.packet_size as f64;
                extra_latency += 2.0 * self.link.latency;
                retransmits += 1;
                self.record_fault(exchange, FaultEventKind::Retransmit);
            }
        }

        // Transient server refusal (request delivered, no effects).
        if plan.server_error_rate > 0.0 && rng.f64() < plan.server_error_rate {
            self.charge_failure(exchange, plan.timeout, FaultEventKind::ServerError);
            return Err(LinkError::ServerError {
                waited: plan.timeout,
            });
        }

        Ok(PendingRequest {
            request_bytes,
            request_packets,
            exchange,
            extra_volume,
            extra_latency,
            retransmits,
        })
    }

    /// Phase 2 of a fallible exchange: ship the response back. On success
    /// the whole exchange is accounted exactly like a reliable round trip
    /// plus the accumulated retransmit charges. On
    /// [`LinkError::ResponseLost`] the server-side work HAS happened — the
    /// caller must treat replays with care (idempotency tokens, reads only).
    pub fn try_receive_response(
        &mut self,
        pending: PendingRequest,
        response_payload_bytes: usize,
    ) -> Result<RoundTrip, LinkError> {
        let PendingRequest {
            request_bytes,
            request_packets,
            exchange,
            mut extra_volume,
            mut extra_latency,
            mut retransmits,
        } = pending;

        if let Some(plan) = self.faults.as_ref().filter(|p| !p.is_none()).cloned() {
            if plan.scripted_for(exchange) == Some(ScriptedKind::LoseResponse) {
                self.charge_failure(exchange, plan.timeout, FaultEventKind::ResponseLost);
                return Err(LinkError::ResponseLost {
                    waited: plan.timeout,
                });
            }
            if plan.response_loss_rate > 0.0 {
                // Response-direction packet loss; draws come from a stream
                // disjoint from phase 1 (offset by the exchange count) so
                // adding response faults never perturbs request draws.
                let mut rng = plan.rng_for(exchange ^ u64::MAX);
                let response_packets = self.link.packets_for(response_payload_bytes.max(1));
                for _packet in 0..response_packets {
                    let mut tries = 0u32;
                    while rng.f64() < plan.response_loss_rate {
                        tries += 1;
                        if tries > plan.max_retransmits {
                            self.charge_failure(
                                exchange,
                                plan.timeout,
                                FaultEventKind::ResponseLost,
                            );
                            return Err(LinkError::ResponseLost {
                                waited: plan.timeout,
                            });
                        }
                        extra_volume += self.link.packet_size as f64;
                        extra_latency += 2.0 * self.link.latency;
                        retransmits += 1;
                        self.record_fault(exchange, FaultEventKind::Retransmit);
                    }
                }
            }
        }

        Ok(self.finish_exchange(
            request_bytes,
            request_packets,
            response_payload_bytes,
            extra_volume,
            extra_latency,
            retransmits,
        ))
    }

    /// Burn `seconds` of virtual time without traffic — retry backoff,
    /// waiting out an outage window. Charged to `fault_wait_time` so the
    /// eq. (4)/(6) identities keep holding for the successful traffic.
    pub fn wait(&mut self, seconds: f64) {
        if seconds <= 0.0 {
            return;
        }
        self.stats.fault_wait_time += seconds;
        let start = self.clock.now();
        self.clock.advance(seconds);
        let mut attrs = vec![("wait_s", seconds), ("v_s", seconds)];
        if let Some(ctx) = self.ctx {
            attrs.push(("trace_id", ctx.trace_id as f64));
            attrs.push(("parent_span", ctx.parent_span as f64));
        }
        self.obs.record_closed(
            kinds::NET_BACKOFF,
            "backoff",
            start,
            self.clock.now(),
            &attrs,
            "",
        );
    }

    /// Exchange attempts started over the channel's lifetime (successful or
    /// not). Useful as a deterministic salt for retry jitter.
    pub fn exchanges_attempted(&self) -> u64 {
        self.exchange_index
    }

    /// One fallible exchange where the response size is known up front —
    /// the common read path. Equivalent to `try_send_request` followed by
    /// `try_receive_response`.
    pub fn try_round_trip(
        &mut self,
        request_bytes: usize,
        response_payload_bytes: usize,
    ) -> Result<RoundTrip, LinkError> {
        let pending = self.try_send_request(request_bytes)?;
        self.try_receive_response(pending, response_payload_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_packet_round_trip_costs_match_paper_formula() {
        let mut ch = MeteredChannel::new(LinkProfile::wan_256());
        // One navigational query (1 packet) returning 9 nodes of 512 B —
        // the paper's single-level expand at β=9.
        let rt = ch.round_trip(200, 9 * 512);
        assert_eq!(rt.request_packets, 1);
        // vol = 4096 + 4608 + 2048 = 10752 B → 0.328125 s at 256 kbit/s
        assert!((rt.volume_bytes - 10752.0).abs() < 1e-9);
        assert!((rt.transfer_time - 0.328125).abs() < 1e-9);
        assert!((rt.latency_time - 0.30).abs() < 1e-12);
        assert!((ch.elapsed() - rt.total_time()).abs() < 1e-12);
    }

    #[test]
    fn multi_packet_request_charges_qr_packets() {
        let mut ch = MeteredChannel::new(LinkProfile::wan_256());
        // A 10 kB recursive query needs 3 packets.
        let rt = ch.round_trip(10_000, 0);
        assert_eq!(rt.request_packets, 3);
        // vol = 3·4096 + 0 + 3·2048 = 18432
        assert!((rt.volume_bytes - 18432.0).abs() < 1e-9);
    }

    #[test]
    fn stats_accumulate_across_round_trips() {
        let mut ch = MeteredChannel::new(LinkProfile::wan_512());
        for _ in 0..5 {
            ch.round_trip(100, 512);
        }
        let s = ch.stats();
        assert_eq!(s.queries, 5);
        assert_eq!(s.communications, 10);
        assert_eq!(s.request_packets, 5);
        assert_eq!(s.response_payload_bytes, 5 * 512);
        assert!((s.latency_time - 5.0 * 0.30).abs() < 1e-12);
        assert!((ch.elapsed() - s.response_time()).abs() < 1e-12);
    }

    #[test]
    fn reset_clears_everything() {
        let mut ch = MeteredChannel::new(LinkProfile::wan_512());
        ch.round_trip(100, 100);
        ch.reset();
        assert_eq!(ch.elapsed(), 0.0);
        assert_eq!(ch.stats().queries, 0);
    }

    #[test]
    fn fault_free_plan_reproduces_reliable_numbers_exactly() {
        use crate::fault::FaultPlan;
        let mut reliable = MeteredChannel::new(LinkProfile::wan_256());
        let mut faulty = MeteredChannel::with_faults(LinkProfile::wan_256(), FaultPlan::none());
        for (req, resp) in [(200usize, 9 * 512usize), (10_000, 0), (150, 4096)] {
            let a = reliable.round_trip(req, resp);
            let b = faulty.try_round_trip(req, resp).unwrap();
            assert_eq!(a, b);
        }
        assert_eq!(reliable.stats(), faulty.stats());
        assert_eq!(reliable.elapsed().to_bits(), faulty.elapsed().to_bits());
    }

    #[test]
    fn trace_context_pads_requests_and_v_s_sums_to_elapsed() {
        let mut plain = MeteredChannel::new(LinkProfile::wan_256());
        let mut traced = MeteredChannel::new(LinkProfile::wan_256());
        traced.attach_obs(Recorder::new());
        traced.set_trace_context(Some(TraceContext::new(0xBEEF, 1)));

        // Small request: the 16 B piggyback stays inside the same packet,
        // so every charged number is bit-identical to the untraced run.
        plain.round_trip(200, 4096);
        traced.round_trip(200, 4096);
        assert_eq!(
            plain.stats().volume_bytes.to_bits(),
            traced.stats().volume_bytes.to_bits()
        );

        // Request exactly at the packet boundary: the piggyback tips one
        // more packet — the volume model sees the context.
        let size = plain.link().packet_size;
        plain.round_trip(size, 0);
        traced.round_trip(size, 0);
        assert_eq!(
            plain.stats().request_packets + 1,
            traced.stats().request_packets
        );

        // Summing the exact `v_s` attributes over wide spans in record
        // order reproduces the channel clock bit-for-bit.
        traced.wait(0.25);
        let sum = traced
            .obs()
            .spans()
            .iter()
            .filter_map(|s| s.attr("v_s"))
            .fold(0.0f64, |a, v| a + v);
        assert_eq!(sum.to_bits(), traced.elapsed().to_bits());
        // Every wide span carries the propagated ids.
        for s in traced.obs().spans() {
            assert_eq!(s.attr("trace_id"), Some(0xBEEF_u64 as f64));
            assert_eq!(s.attr("parent_span"), Some(1.0));
        }
    }

    #[test]
    fn lost_request_packets_recharge_volume_and_latency() {
        use crate::fault::FaultPlan;
        // High loss with a generous cap: exchanges succeed but pay for
        // retransmits.
        let plan = FaultPlan::lossy(7, 0.4).with_max_retransmits(1000);
        let mut ch = MeteredChannel::with_faults(LinkProfile::wan_256(), plan);
        let mut total_retransmits = 0usize;
        for _ in 0..50 {
            let rt = ch.try_round_trip(10_000, 2048).unwrap();
            assert!(rt.volume_bytes >= 18432.0 + 2048.0);
            total_retransmits = ch.stats().retransmits;
        }
        assert!(total_retransmits > 0, "40% loss must cause retransmits");
        let base_latency = 2.0 * 0.15 * 50.0;
        assert!(ch.stats().latency_time > base_latency);
        assert_eq!(ch.stats().failed_attempts, 0);
    }

    #[test]
    fn retransmit_cap_fails_the_attempt_with_timeout_charge() {
        use crate::fault::{FaultPlan, LinkError};
        let plan = FaultPlan::lossy(3, 1.0)
            .with_max_retransmits(2)
            .with_timeout(30.0);
        let mut ch = MeteredChannel::with_faults(LinkProfile::wan_256(), plan);
        let err = ch.try_round_trip(100, 100).unwrap_err();
        assert!(matches!(err, LinkError::RequestTimeout { .. }));
        assert!((err.waited() - 30.0).abs() < 1e-12);
        assert!((ch.elapsed() - 30.0).abs() < 1e-12);
        assert_eq!(ch.stats().queries, 0);
        assert_eq!(ch.stats().failed_attempts, 1);
        assert!((ch.stats().fault_wait_time - 30.0).abs() < 1e-12);
    }

    #[test]
    fn scripted_response_loss_hits_exactly_the_requested_exchange() {
        use crate::fault::{FaultPlan, LinkError, ScriptedKind};
        let plan = FaultPlan::none().with_scripted(1, ScriptedKind::LoseResponse);
        let mut ch = MeteredChannel::with_faults(LinkProfile::wan_256(), plan);
        ch.try_round_trip(100, 100).unwrap(); // exchange 0
        let err = ch.try_round_trip(100, 100).unwrap_err(); // exchange 1
        assert!(matches!(err, LinkError::ResponseLost { .. }));
        assert!(!err.request_not_delivered());
        ch.try_round_trip(100, 100).unwrap(); // exchange 2
        assert_eq!(ch.stats().queries, 2);
        assert_eq!(ch.stats().failed_attempts, 1);
    }

    #[test]
    fn outage_window_fails_attempts_until_it_passes() {
        use crate::fault::{FaultPlan, LinkError, OutageWindow};
        let plan = FaultPlan::none()
            .with_outage(OutageWindow::new(0.0, 10.0))
            .with_timeout(4.0);
        let mut ch = MeteredChannel::with_faults(LinkProfile::wan_256(), plan);
        // Attempts burn min(timeout, remaining outage) until the window ends.
        let e1 = ch.try_round_trip(100, 0).unwrap_err();
        match e1 {
            LinkError::Outage { until, .. } => assert_eq!(until, 10.0),
            other => panic!("unexpected {other:?}"),
        }
        ch.try_round_trip(100, 0).unwrap_err();
        let e3 = ch.try_round_trip(100, 0).unwrap_err();
        // 4 + 4 = 8s elapsed; third failure burns the remaining 2s.
        assert!((e3.waited() - 2.0).abs() < 1e-12);
        assert!((ch.elapsed() - 10.0).abs() < 1e-12);
        ch.try_round_trip(100, 0).unwrap();
        assert_eq!(ch.stats().outage_hits, 3);
    }

    #[test]
    fn same_seed_same_faults() {
        use crate::fault::FaultPlan;
        let run = |seed: u64| {
            let plan = FaultPlan::lossy(seed, 0.3).with_server_error_rate(0.1);
            let mut ch = MeteredChannel::with_faults(LinkProfile::wan_512(), plan);
            let mut log = Vec::new();
            for _ in 0..30 {
                log.push(ch.try_round_trip(500, 1024).map_err(|e| format!("{e}")));
            }
            (log, ch.stats().clone(), ch.elapsed())
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11).0, run(12).0);
    }

    #[test]
    fn two_phase_exchange_matches_glued_round_trip() {
        use crate::fault::FaultPlan;
        let plan = FaultPlan::lossy(5, 0.2);
        let mut a = MeteredChannel::with_faults(LinkProfile::wan_256(), plan.clone());
        let mut b = MeteredChannel::with_faults(LinkProfile::wan_256(), plan);
        for _ in 0..20 {
            let ra = a.try_round_trip(300, 700);
            let rb = b
                .try_send_request(300)
                .and_then(|p| b.try_receive_response(p, 700));
            assert_eq!(ra, rb);
        }
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn latency_dominates_small_navigational_queries_on_wan() {
        // The paper's core observation: for chatty navigational access the
        // per-query latency dwarfs the payload transfer.
        let mut ch = MeteredChannel::new(LinkProfile::wan_256());
        let rt = ch.round_trip(150, 512);
        assert!(rt.latency_time > rt.transfer_time);
    }
}
