//! The metered request/response channel between PDM client and database
//! server. Every exchange advances the virtual clock and updates traffic
//! counters exactly per the paper's cost formulas.

use crate::clock::VirtualClock;
use crate::link::LinkProfile;
use crate::stats::TrafficStats;

/// Cost breakdown of one request/response exchange.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundTrip {
    /// Packets the request occupied.
    pub request_packets: usize,
    /// Chargeable bytes of the exchange.
    pub volume_bytes: f64,
    /// Latency share (2 · T_Lat).
    pub latency_time: f64,
    /// Serialization share (volume / dtr).
    pub transfer_time: f64,
}

impl RoundTrip {
    pub fn total_time(&self) -> f64 {
        self.latency_time + self.transfer_time
    }
}

/// A simulated client/server link that meters every exchange.
///
/// The charge for one round trip with a request of `r` bytes and a response
/// payload of `p` bytes is (paper eq. (2)–(4), generalized to multi-packet
/// requests as in eq. (5)):
///
/// ```text
/// q_pkts = ⌈r / size_p⌉  (min 1)
/// vol    = q_pkts·size_p + p + q_pkts·size_p/2     [half-full last packet]
/// T      = 2·T_Lat + vol/dtr
/// ```
#[derive(Debug, Clone)]
pub struct MeteredChannel {
    link: LinkProfile,
    clock: VirtualClock,
    stats: TrafficStats,
    trace: Option<crate::trace::Trace>,
}

impl MeteredChannel {
    pub fn new(link: LinkProfile) -> Self {
        MeteredChannel {
            link,
            clock: VirtualClock::new(),
            stats: TrafficStats::new(),
            trace: None,
        }
    }

    /// Start recording a per-exchange timeline (see [`crate::trace::Trace`]).
    pub fn enable_trace(&mut self) {
        self.trace = Some(crate::trace::Trace::new());
    }

    /// The recorded timeline, if tracing is enabled.
    pub fn trace(&self) -> Option<&crate::trace::Trace> {
        self.trace.as_ref()
    }

    pub fn link(&self) -> &LinkProfile {
        &self.link
    }

    pub fn stats(&self) -> &TrafficStats {
        &self.stats
    }

    pub fn clock(&self) -> &VirtualClock {
        &self.clock
    }

    /// Elapsed virtual time in seconds.
    pub fn elapsed(&self) -> f64 {
        self.clock.now()
    }

    /// Clear counters, clock, and any recorded trace before measuring a new
    /// user action.
    pub fn reset(&mut self) {
        self.clock.reset();
        self.stats = TrafficStats::new();
        if let Some(trace) = &mut self.trace {
            trace.clear();
        }
    }

    /// Perform one metered request/response exchange.
    pub fn round_trip(&mut self, request_bytes: usize, response_payload_bytes: usize) -> RoundTrip {
        let request_packets = self.link.packets_for(request_bytes);
        let request_volume = (request_packets * self.link.packet_size) as f64;
        let correction = request_packets as f64 * self.link.packet_size as f64 / 2.0;
        let volume = request_volume + response_payload_bytes as f64 + correction;

        let latency_time = 2.0 * self.link.latency;
        let transfer_time = self.link.transfer_time(volume);

        self.stats.queries += 1;
        self.stats.communications += 2;
        self.stats.request_packets += request_packets;
        self.stats.response_payload_bytes += response_payload_bytes;
        self.stats.volume_bytes += volume;
        self.stats.latency_time += latency_time;
        self.stats.transfer_time += transfer_time;

        let start = self.clock.now();
        self.clock.advance(latency_time + transfer_time);

        let cost = RoundTrip {
            request_packets,
            volume_bytes: volume,
            latency_time,
            transfer_time,
        };
        if let Some(trace) = &mut self.trace {
            trace.record(crate::trace::TraceEntry {
                start,
                request_bytes,
                response_bytes: response_payload_bytes,
                cost,
            });
        }
        cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_packet_round_trip_costs_match_paper_formula() {
        let mut ch = MeteredChannel::new(LinkProfile::wan_256());
        // One navigational query (1 packet) returning 9 nodes of 512 B —
        // the paper's single-level expand at β=9.
        let rt = ch.round_trip(200, 9 * 512);
        assert_eq!(rt.request_packets, 1);
        // vol = 4096 + 4608 + 2048 = 10752 B → 0.328125 s at 256 kbit/s
        assert!((rt.volume_bytes - 10752.0).abs() < 1e-9);
        assert!((rt.transfer_time - 0.328125).abs() < 1e-9);
        assert!((rt.latency_time - 0.30).abs() < 1e-12);
        assert!((ch.elapsed() - rt.total_time()).abs() < 1e-12);
    }

    #[test]
    fn multi_packet_request_charges_qr_packets() {
        let mut ch = MeteredChannel::new(LinkProfile::wan_256());
        // A 10 kB recursive query needs 3 packets.
        let rt = ch.round_trip(10_000, 0);
        assert_eq!(rt.request_packets, 3);
        // vol = 3·4096 + 0 + 3·2048 = 18432
        assert!((rt.volume_bytes - 18432.0).abs() < 1e-9);
    }

    #[test]
    fn stats_accumulate_across_round_trips() {
        let mut ch = MeteredChannel::new(LinkProfile::wan_512());
        for _ in 0..5 {
            ch.round_trip(100, 512);
        }
        let s = ch.stats();
        assert_eq!(s.queries, 5);
        assert_eq!(s.communications, 10);
        assert_eq!(s.request_packets, 5);
        assert_eq!(s.response_payload_bytes, 5 * 512);
        assert!((s.latency_time - 5.0 * 0.30).abs() < 1e-12);
        assert!((ch.elapsed() - s.response_time()).abs() < 1e-12);
    }

    #[test]
    fn reset_clears_everything() {
        let mut ch = MeteredChannel::new(LinkProfile::wan_512());
        ch.round_trip(100, 100);
        ch.reset();
        assert_eq!(ch.elapsed(), 0.0);
        assert_eq!(ch.stats().queries, 0);
    }

    #[test]
    fn latency_dominates_small_navigational_queries_on_wan() {
        // The paper's core observation: for chatty navigational access the
        // per-query latency dwarfs the payload transfer.
        let mut ch = MeteredChannel::new(LinkProfile::wan_256());
        let rt = ch.round_trip(150, 512);
        assert!(rt.latency_time > rt.transfer_time);
    }
}
