//! Packetization helpers.

/// Number of packets a message of `bytes` occupies, minimum one. The paper
/// assumes every query "can be transmitted by using only one message
/// (packet)" for navigational access, while large recursive queries may need
/// `q_r > 1` packets (§5.4).
pub fn packet_count(bytes: usize, packet_size: usize) -> usize {
    assert!(packet_size > 0);
    if bytes == 0 {
        1
    } else {
        bytes.div_ceil(packet_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimum_one_packet() {
        assert_eq!(packet_count(0, 4096), 1);
        assert_eq!(packet_count(1, 4096), 1);
        assert_eq!(packet_count(4096, 4096), 1);
    }

    #[test]
    fn rounds_up() {
        assert_eq!(packet_count(4097, 4096), 2);
        assert_eq!(packet_count(8192, 4096), 2);
        assert_eq!(packet_count(8193, 4096), 3);
    }

    #[test]
    fn exhaustive_boundary_sweep() {
        for n in 1..=5usize {
            assert_eq!(packet_count(n * 4096, 4096), n);
            assert_eq!(packet_count(n * 4096 + 1, 4096), n + 1);
        }
    }
}
