//! Link parameterization: the paper's `dtr`, `T_Lat`, `size_p` triple.

/// Physical characteristics of the client/server link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkProfile {
    /// Data transfer rate in kbit/s (1 kbit = 1024 bits, matching the
    /// paper's arithmetic).
    pub dtr_kbit: f64,
    /// One-way latency per communication, in seconds.
    pub latency: f64,
    /// Packet size in bytes (the paper uses 4 kB = 4096 B throughout).
    pub packet_size: usize,
}

impl LinkProfile {
    pub const PAPER_PACKET_SIZE: usize = 4096;

    pub fn new(dtr_kbit: f64, latency: f64, packet_size: usize) -> Self {
        assert!(dtr_kbit > 0.0, "dtr must be positive");
        assert!(latency >= 0.0, "latency must be non-negative");
        assert!(packet_size > 0, "packet size must be positive");
        LinkProfile {
            dtr_kbit,
            latency,
            packet_size,
        }
    }

    /// The paper's first WAN setting: 256 kbit/s, 150 ms latency.
    pub fn wan_256() -> Self {
        Self::new(256.0, 0.15, Self::PAPER_PACKET_SIZE)
    }

    /// The paper's second WAN setting: 512 kbit/s, 150 ms latency.
    pub fn wan_512() -> Self {
        Self::new(512.0, 0.15, Self::PAPER_PACKET_SIZE)
    }

    /// The paper's third WAN setting: 1024 kbit/s, 50 ms latency.
    pub fn wan_1024() -> Self {
        Self::new(1024.0, 0.05, Self::PAPER_PACKET_SIZE)
    }

    /// A typical switched LAN of the paper's era (100 Mbit/s, sub-ms
    /// latency) — the environment where "acceptable response times can be
    /// achieved" even navigationally (§1).
    pub fn lan() -> Self {
        Self::new(100.0 * 1024.0, 0.0005, Self::PAPER_PACKET_SIZE)
    }

    /// All three WAN settings of Tables 2–4, in paper order.
    pub fn paper_wans() -> [LinkProfile; 3] {
        [Self::wan_256(), Self::wan_512(), Self::wan_1024()]
    }

    /// Seconds to push `bytes` through the link (serialization delay).
    pub fn transfer_time(&self, bytes: f64) -> f64 {
        bytes * 8.0 / (self.dtr_kbit * 1024.0)
    }

    /// Packets needed for a message of `bytes` (minimum one — every message
    /// occupies at least one packet).
    pub fn packets_for(&self, bytes: usize) -> usize {
        crate::packet::packet_count(bytes, self.packet_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_profiles() {
        assert_eq!(LinkProfile::wan_256().dtr_kbit, 256.0);
        assert_eq!(LinkProfile::wan_256().latency, 0.15);
        assert_eq!(LinkProfile::wan_1024().latency, 0.05);
        assert_eq!(LinkProfile::wan_512().packet_size, 4096);
    }

    #[test]
    fn transfer_time_uses_1024_bit_kbits() {
        // 256 kbit/s link: 262144 bits/s; 4096 bytes = 32768 bits → 0.125 s
        let t = LinkProfile::wan_256().transfer_time(4096.0);
        assert!((t - 0.125).abs() < 1e-12);
    }

    #[test]
    fn table2_query_transfer_time_reproduced() {
        // δ=3, β=9 Query under late evaluation: 819 nodes × 512 B payload
        // plus 1.5 packets of request overhead = 12.98 s at 256 kbit/s.
        let vol = 819.0 * 512.0 + 1.5 * 4096.0;
        let t = LinkProfile::wan_256().transfer_time(vol);
        assert!((t - 12.98).abs() < 0.005, "got {t}");
    }

    #[test]
    fn lan_is_orders_of_magnitude_faster() {
        let wan = LinkProfile::wan_256().transfer_time(1e6);
        let lan = LinkProfile::lan().transfer_time(1e6);
        assert!(wan / lan > 300.0);
    }

    #[test]
    #[should_panic]
    fn zero_dtr_rejected() {
        LinkProfile::new(0.0, 0.1, 4096);
    }
}
