//! Virtual time. The simulator is single-threaded and deterministic: time
//! only moves when a channel charges delay for a message exchange.

/// A monotonically advancing virtual clock measured in seconds.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct VirtualClock {
    now: f64,
}

impl VirtualClock {
    pub fn new() -> Self {
        VirtualClock { now: 0.0 }
    }

    /// Current virtual time in seconds since the simulation started.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Advance by `seconds` (must be non-negative; panics on NaN/negative —
    /// a negative advance is always a bug in the caller's cost math).
    pub fn advance(&mut self, seconds: f64) {
        assert!(
            seconds >= 0.0 && seconds.is_finite(),
            "clock advance must be finite and non-negative, got {seconds}"
        );
        self.now += seconds;
    }

    /// Reset to zero (start of a new measured action).
    pub fn reset(&mut self) {
        self.now = 0.0;
    }

    /// Time elapsed since `mark` (an earlier `now()` reading).
    pub fn since(&self, mark: f64) -> f64 {
        self.now - mark
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero_and_accumulates() {
        let mut c = VirtualClock::new();
        assert_eq!(c.now(), 0.0);
        c.advance(0.15);
        c.advance(1.5);
        assert!((c.now() - 1.65).abs() < 1e-12);
    }

    #[test]
    fn since_measures_deltas() {
        let mut c = VirtualClock::new();
        c.advance(2.0);
        let mark = c.now();
        c.advance(0.5);
        assert!((c.since(mark) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn reset_restarts() {
        let mut c = VirtualClock::new();
        c.advance(3.0);
        c.reset();
        assert_eq!(c.now(), 0.0);
    }

    #[test]
    #[should_panic]
    fn negative_advance_panics() {
        VirtualClock::new().advance(-1.0);
    }
}
