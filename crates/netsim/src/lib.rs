#![cfg_attr(test, allow(clippy::unwrap_used))]

//! # pdm-net — deterministic WAN/LAN simulator
//!
//! Substitutes for the paper's physical testbed (PDM clients in Germany,
//! database server in Brazil). The paper itself characterizes the link with
//! three parameters — data transfer rate `dtr`, latency `T_Lat`, packet size
//! `size_p` (Table 1) — and its whole evaluation is the accounting of
//! messages and bytes over such a link. This crate implements exactly that
//! accounting against a virtual clock, so real SQL traffic produced by the
//! PDM layer can be *measured* rather than predicted, and then compared
//! against the closed-form model in `pdm-model`.
//!
//! Units follow the paper: `dtr` is in kbit/s with 1 kbit = 1024 bits
//! (required to reproduce Table 2 to the cent), packet size in bytes
//! (4 kB = 4096 B), times in seconds.

pub mod channel;
pub mod clock;
pub mod fault;
pub mod link;
pub mod packet;
pub mod stats;
pub mod trace;

pub use channel::{MeteredChannel, PendingRequest, RoundTrip};
pub use clock::VirtualClock;
pub use fault::{
    FaultEvent, FaultEventKind, FaultPlan, LinkError, OutageWindow, ScriptedFault, ScriptedKind,
};
pub use link::LinkProfile;
pub use packet::packet_count;
pub use stats::{record_traffic, TrafficStats};
pub use trace::{Trace, TraceEntry};
