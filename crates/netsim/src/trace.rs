//! Exchange traces: an optional per-round-trip timeline the channel records,
//! for post-hoc analysis (where did the seconds go?) and for the examples'
//! reporting. Each entry is one request/response exchange with its start
//! time and cost breakdown.

use crate::channel::RoundTrip;

/// One recorded exchange.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEntry {
    /// Virtual time when the exchange started.
    pub start: f64,
    /// Request size in bytes (the SQL text / procedure call).
    pub request_bytes: usize,
    /// Response payload in bytes.
    pub response_bytes: usize,
    /// The computed cost of the exchange.
    pub cost: RoundTrip,
}

impl TraceEntry {
    /// Virtual time when the exchange completed.
    pub fn end(&self) -> f64 {
        self.start + self.cost.total_time()
    }
}

/// A timeline of exchanges, plus any fault events observed on the link.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    entries: Vec<TraceEntry>,
    fault_events: Vec<crate::fault::FaultEvent>,
}

impl Trace {
    pub fn new() -> Self {
        Trace::default()
    }

    pub fn record(&mut self, entry: TraceEntry) {
        self.entries.push(entry);
    }

    /// Record a fault occurrence (retransmit, timeout, outage, …).
    pub fn record_fault(&mut self, event: crate::fault::FaultEvent) {
        self.fault_events.push(event);
    }

    /// Fault events in occurrence order.
    pub fn fault_events(&self) -> &[crate::fault::FaultEvent] {
        &self.fault_events
    }

    pub fn clear(&mut self) {
        self.entries.clear();
        self.fault_events.clear();
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// The single most expensive exchange, if any.
    pub fn slowest(&self) -> Option<&TraceEntry> {
        self.entries
            .iter()
            .max_by(|a, b| a.cost.total_time().total_cmp(&b.cost.total_time()))
    }

    /// Total time across all exchanges.
    pub fn total_time(&self) -> f64 {
        self.entries.iter().map(|e| e.cost.total_time()).sum()
    }

    /// Share of total time spent on latency rather than transfer — the
    /// paper's diagnostic quantity: chatty workloads score near 1.
    pub fn latency_share(&self) -> f64 {
        let total = self.total_time();
        if total == 0.0 {
            return 0.0;
        }
        self.entries
            .iter()
            .map(|e| e.cost.latency_time)
            .sum::<f64>()
            / total
    }

    /// Time percentile over exchange costs (p in 0..=100, nearest-rank).
    pub fn percentile(&self, p: f64) -> Option<f64> {
        if self.entries.is_empty() {
            return None;
        }
        let mut costs: Vec<f64> = self.entries.iter().map(|e| e.cost.total_time()).collect();
        costs.sort_by(f64::total_cmp);
        let rank = ((p / 100.0) * costs.len() as f64).ceil().max(1.0) as usize - 1;
        // lint:allow(unchecked-index): rank is clamped to len-1 and the
        // empty case returned None above.
        Some(costs[rank.min(costs.len() - 1)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::MeteredChannel;
    use crate::link::LinkProfile;

    fn traced_channel() -> (MeteredChannel, Trace) {
        let mut ch = MeteredChannel::new(LinkProfile::wan_256());
        let mut trace = Trace::new();
        for (req, resp) in [(100usize, 512usize), (200, 4096), (150, 0)] {
            let start = ch.elapsed();
            let cost = ch.round_trip(req, resp);
            trace.record(TraceEntry {
                start,
                request_bytes: req,
                response_bytes: resp,
                cost,
            });
        }
        (ch, trace)
    }

    #[test]
    fn trace_times_align_with_channel() {
        let (ch, trace) = traced_channel();
        assert_eq!(trace.len(), 3);
        assert!((trace.total_time() - ch.elapsed()).abs() < 1e-12);
        // entries are contiguous
        assert!((trace.entries()[0].end() - trace.entries()[1].start).abs() < 1e-12);
    }

    #[test]
    fn slowest_is_the_big_response() {
        let (_, trace) = traced_channel();
        assert_eq!(trace.slowest().unwrap().response_bytes, 4096);
    }

    #[test]
    fn latency_share_bounds() {
        let (_, trace) = traced_channel();
        let share = trace.latency_share();
        assert!(share > 0.0 && share < 1.0);
        assert_eq!(Trace::new().latency_share(), 0.0);
    }

    #[test]
    fn percentiles() {
        let (_, trace) = traced_channel();
        let p50 = trace.percentile(50.0).unwrap();
        let p100 = trace.percentile(100.0).unwrap();
        assert!(p50 <= p100);
        assert!(Trace::new().percentile(50.0).is_none());
    }
}
