//! Deterministic fault injection for the simulated WAN link.
//!
//! The paper's testbed (client in Germany, server in Brazil) ran over real
//! intercontinental links, where packet loss, stalls, and outages are facts
//! of life the tuning strategies must survive. This module models those
//! faults *reproducibly*: a [`FaultPlan`] is a pure function of its seed and
//! the exchange index, so a sweep over loss rates is exactly repeatable and
//! a reported failure replays from one integer.
//!
//! Faults are layered on the paper's cost accounting without disturbing it:
//! a fault-free plan (`FaultPlan::none()`) reproduces the reliable channel's
//! numbers byte for byte, and the fault charges land in a separate
//! `fault_wait_time` stats component so eq. (4)/(6) identities on latency
//! and transfer still hold for the successful traffic.

use pdm_prng::{splitmix64, Prng};
use std::fmt;

/// Default virtual-time budget burned by one failed attempt (seconds) —
/// the client's request timeout.
pub const DEFAULT_TIMEOUT: f64 = 30.0;

/// Default retransmit cap per packet before the attempt is abandoned.
pub const DEFAULT_MAX_RETRANSMITS: u32 = 6;

/// A scheduled link-outage window in virtual time. Attempts started inside
/// `[start, end)` fail immediately with [`LinkError::Outage`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OutageWindow {
    pub start: f64,
    pub end: f64,
}

impl OutageWindow {
    pub fn new(start: f64, end: f64) -> Self {
        assert!(start.is_finite() && end.is_finite() && start < end);
        OutageWindow { start, end }
    }

    pub fn contains(&self, t: f64) -> bool {
        t >= self.start && t < self.end
    }
}

/// A fault pinned to one specific exchange attempt (0-based index counted
/// across the channel's lifetime). Scripted faults make integration tests
/// precise: "lose exactly the response of exchange 7".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScriptedFault {
    pub exchange: u64,
    pub kind: ScriptedKind,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScriptedKind {
    /// The request never reaches the server; the client times out.
    StallRequest,
    /// The server refuses the request with a transient error.
    ServerError,
    /// The server processes the request but the response is lost — the only
    /// fault where server-side effects have already happened.
    LoseResponse,
}

/// A seeded, reproducible plan of link faults consulted by the channel on
/// every exchange attempt. All probabilities are per-draw in `[0, 1]`.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for the per-exchange fault draws.
    pub seed: u64,
    /// Per-request-packet loss probability (each loss charges one
    /// retransmit: packet volume plus a 2·T_Lat wait).
    pub request_loss_rate: f64,
    /// Per-response-packet loss probability (same retransmit accounting).
    pub response_loss_rate: f64,
    /// Probability that the connection stalls before the request is
    /// delivered (client burns the timeout; server never saw the request).
    pub stall_rate: f64,
    /// Probability of a transient server-side refusal (deadlock victim,
    /// connection reset during parse — request delivered, no effects).
    pub server_error_rate: f64,
    /// Virtual seconds one failed attempt burns before the client gives up.
    pub timeout: f64,
    /// Retransmits allowed per packet before the attempt is abandoned.
    pub max_retransmits: u32,
    /// Scheduled outage windows in virtual time.
    pub outages: Vec<OutageWindow>,
    /// Exchange-indexed faults for deterministic tests.
    pub scripted: Vec<ScriptedFault>,
}

impl FaultPlan {
    /// The all-zero plan: every exchange succeeds with the reliable
    /// channel's exact accounting.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            request_loss_rate: 0.0,
            response_loss_rate: 0.0,
            stall_rate: 0.0,
            server_error_rate: 0.0,
            timeout: DEFAULT_TIMEOUT,
            max_retransmits: DEFAULT_MAX_RETRANSMITS,
            outages: Vec::new(),
            scripted: Vec::new(),
        }
    }

    /// A symmetric lossy link: `loss` applies per packet in both directions.
    pub fn lossy(seed: u64, loss: f64) -> Self {
        assert!((0.0..=1.0).contains(&loss));
        FaultPlan {
            seed,
            request_loss_rate: loss,
            response_loss_rate: loss,
            ..FaultPlan::none()
        }
    }

    pub fn with_stall_rate(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p));
        self.stall_rate = p;
        self
    }

    pub fn with_server_error_rate(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p));
        self.server_error_rate = p;
        self
    }

    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    pub fn with_timeout(mut self, seconds: f64) -> Self {
        assert!(seconds.is_finite() && seconds >= 0.0);
        self.timeout = seconds;
        self
    }

    pub fn with_max_retransmits(mut self, n: u32) -> Self {
        self.max_retransmits = n;
        self
    }

    pub fn with_outage(mut self, window: OutageWindow) -> Self {
        self.outages.push(window);
        self
    }

    pub fn with_scripted(mut self, exchange: u64, kind: ScriptedKind) -> Self {
        self.scripted.push(ScriptedFault { exchange, kind });
        self
    }

    /// Derive a per-site variant of this plan: same rates and windows, but
    /// a site-mixed seed so every replication ship link draws its own
    /// independent (still deterministic) fault stream.
    pub fn for_site(mut self, site: u64) -> Self {
        self.seed = splitmix64(self.seed ^ site.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        self
    }

    /// True when the plan can never produce a fault — the channel then
    /// skips fault drawing entirely.
    pub fn is_none(&self) -> bool {
        self.request_loss_rate == 0.0
            && self.response_loss_rate == 0.0
            && self.stall_rate == 0.0
            && self.server_error_rate == 0.0
            && self.outages.is_empty()
            && self.scripted.is_empty()
    }

    /// The deterministic fault-draw generator for one exchange attempt.
    pub fn rng_for(&self, exchange: u64) -> Prng {
        Prng::seed_from_u64(splitmix64(self.seed ^ splitmix64(exchange.wrapping_add(1))))
    }

    /// The scripted fault pinned to this exchange, if any.
    pub fn scripted_for(&self, exchange: u64) -> Option<ScriptedKind> {
        self.scripted
            .iter()
            .find(|s| s.exchange == exchange)
            .map(|s| s.kind)
    }

    /// The outage window covering virtual time `t`, if any.
    pub fn outage_at(&self, t: f64) -> Option<OutageWindow> {
        self.outages.iter().copied().find(|w| w.contains(t))
    }
}

/// Why an exchange attempt failed. `waited` is the virtual time the failed
/// attempt burned (already charged to the channel's clock and to the stats'
/// `fault_wait_time`), so callers can reason about budget spent so far.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LinkError {
    /// The link is down; `until` is the end of the outage window, so a
    /// retry policy can sleep past it instead of hammering a dead link.
    Outage { waited: f64, until: f64 },
    /// The request never made it (stall, or a packet exceeded its
    /// retransmit cap). The server saw nothing; no effects happened.
    RequestTimeout { waited: f64 },
    /// The server refused the request with a transient error. No effects.
    ServerError { waited: f64 },
    /// The server processed the request but the response was lost. Effects
    /// HAVE happened server-side — the caller must not blindly replay
    /// non-idempotent work.
    ResponseLost { waited: f64 },
}

impl LinkError {
    /// Virtual seconds this failed attempt burned.
    pub fn waited(&self) -> f64 {
        match self {
            LinkError::Outage { waited, .. }
            | LinkError::RequestTimeout { waited }
            | LinkError::ServerError { waited }
            | LinkError::ResponseLost { waited } => *waited,
        }
    }

    /// True when the request provably never reached the server, so any
    /// request (idempotent or not) is safe to replay.
    pub fn request_not_delivered(&self) -> bool {
        !matches!(self, LinkError::ResponseLost { .. })
    }
}

impl fmt::Display for LinkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinkError::Outage { waited, until } => {
                write!(f, "link outage until t={until:.2}s (waited {waited:.2}s)")
            }
            LinkError::RequestTimeout { waited } => {
                write!(f, "request timed out after {waited:.2}s")
            }
            LinkError::ServerError { waited } => {
                write!(f, "transient server error after {waited:.2}s")
            }
            LinkError::ResponseLost { waited } => {
                write!(
                    f,
                    "response lost after {waited:.2}s (server effects applied)"
                )
            }
        }
    }
}

impl std::error::Error for LinkError {}

/// One fault occurrence on the channel's timeline, recorded when tracing is
/// enabled.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// Exchange attempt index the fault belongs to.
    pub exchange: u64,
    /// Virtual time the fault was observed.
    pub at: f64,
    pub kind: FaultEventKind,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultEventKind {
    /// A lost packet was retransmitted (request or response direction).
    Retransmit,
    /// The attempt was abandoned: request never delivered.
    RequestTimeout,
    /// The attempt hit a scheduled outage window.
    Outage,
    /// The server refused the request.
    ServerError,
    /// The response was lost after server-side processing.
    ResponseLost,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_plan_is_none() {
        assert!(FaultPlan::none().is_none());
        assert!(!FaultPlan::lossy(1, 0.1).is_none());
        assert!(!FaultPlan::none()
            .with_scripted(0, ScriptedKind::ServerError)
            .is_none());
        assert!(!FaultPlan::none()
            .with_outage(OutageWindow::new(1.0, 2.0))
            .is_none());
    }

    #[test]
    fn rng_is_deterministic_per_exchange() {
        let plan = FaultPlan::lossy(42, 0.5);
        let a: Vec<u64> = (0..4).map(|i| plan.rng_for(i).next_u64()).collect();
        let b: Vec<u64> = (0..4).map(|i| plan.rng_for(i).next_u64()).collect();
        assert_eq!(a, b);
        // distinct exchanges draw from distinct streams
        assert_ne!(a[0], a[1]);
    }

    #[test]
    fn outage_lookup() {
        let plan = FaultPlan::none().with_outage(OutageWindow::new(10.0, 20.0));
        assert_eq!(plan.outage_at(9.99), None);
        assert_eq!(plan.outage_at(10.0), Some(OutageWindow::new(10.0, 20.0)));
        assert_eq!(plan.outage_at(19.99), Some(OutageWindow::new(10.0, 20.0)));
        assert_eq!(plan.outage_at(20.0), None);
    }

    #[test]
    fn scripted_lookup() {
        let plan = FaultPlan::none()
            .with_scripted(3, ScriptedKind::LoseResponse)
            .with_scripted(5, ScriptedKind::ServerError);
        assert_eq!(plan.scripted_for(3), Some(ScriptedKind::LoseResponse));
        assert_eq!(plan.scripted_for(4), None);
        assert_eq!(plan.scripted_for(5), Some(ScriptedKind::ServerError));
    }

    #[test]
    fn link_error_accessors() {
        let e = LinkError::ResponseLost { waited: 30.0 };
        assert_eq!(e.waited(), 30.0);
        assert!(!e.request_not_delivered());
        let t = LinkError::RequestTimeout { waited: 30.0 };
        assert!(t.request_not_delivered());
        assert!(t.to_string().contains("timed out"));
    }
}
