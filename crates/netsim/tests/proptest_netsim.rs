#![allow(clippy::unwrap_used)]

//! Property tests for the cost invariants of the paper's eqs. (2)–(5) and
//! for the fault layer's central guarantee: a fault-free plan reproduces
//! the reliable channel byte for byte, and a seeded plan is deterministic.

use pdm_net::{packet_count, FaultPlan, LinkProfile, MeteredChannel};
use pdm_prng::check::cases;
use pdm_prng::Prng;

fn arb_link(rng: &mut Prng) -> LinkProfile {
    LinkProfile::new(
        rng.f64_range(16.0, 20_000.0),
        rng.f64_range(0.0005, 0.5),
        4096,
    )
}

#[test]
fn packet_count_is_monotone_and_matches_ceil() {
    cases(
        "packet_count_is_monotone_and_matches_ceil",
        256,
        0x41,
        |rng| {
            let size = rng.usize_inclusive(1, 8192);
            let a = rng.usize_inclusive(0, 100_000);
            let b = rng.usize_inclusive(0, 100_000);
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            // eq. (5): q_r = ⌈r / size_p⌉, minimum one packet
            assert!(packet_count(lo, size) <= packet_count(hi, size));
            let expected = if hi == 0 { 1 } else { hi.div_ceil(size) };
            assert_eq!(packet_count(hi, size), expected);
            assert!(packet_count(lo, size) >= 1);
        },
    );
}

#[test]
fn round_trip_satisfies_the_cost_identities() {
    cases(
        "round_trip_satisfies_the_cost_identities",
        256,
        0x42,
        |rng| {
            let link = arb_link(rng);
            let req = rng.usize_inclusive(0, 50_000);
            let resp = rng.usize_inclusive(0, 500_000);
            let mut ch = MeteredChannel::new(link);
            let rt = ch.round_trip(req, resp);

            // eq. (2)/(5): volume = q·size_p + payload + q·size_p/2
            let q = link.packets_for(req) as f64;
            let vol = q * 4096.0 + resp as f64 + q * 4096.0 / 2.0;
            assert!(
                (rt.volume_bytes - vol).abs() < 1e-6,
                "vol {} vs {}",
                rt.volume_bytes,
                vol
            );

            // eq. (4): T = 2·T_Lat + vol/dtr, exactly decomposed
            assert_eq!(rt.latency_time, 2.0 * link.latency);
            assert_eq!(rt.transfer_time, link.transfer_time(rt.volume_bytes));
            assert_eq!(rt.total_time(), rt.latency_time + rt.transfer_time);

            // the channel's clock and stats agree with the exchange
            assert_eq!(ch.elapsed(), rt.total_time());
            assert_eq!(ch.stats().response_time(), rt.total_time());
        },
    );
}

#[test]
fn volume_is_monotone_in_request_and_response_size() {
    cases(
        "volume_is_monotone_in_request_and_response_size",
        256,
        0x43,
        |rng| {
            let link = arb_link(rng);
            let req = rng.usize_inclusive(0, 20_000);
            let resp = rng.usize_inclusive(0, 100_000);
            let more_req = req + rng.usize_inclusive(0, 20_000);
            let more_resp = resp + rng.usize_inclusive(0, 100_000);
            let cost = |r: usize, p: usize| MeteredChannel::new(link).round_trip(r, p);
            assert!(cost(more_req, resp).volume_bytes >= cost(req, resp).volume_bytes);
            assert!(cost(req, more_resp).volume_bytes >= cost(req, resp).volume_bytes);
            assert!(cost(req, more_resp).total_time() >= cost(req, resp).total_time());
        },
    );
}

#[test]
fn fault_free_plan_is_byte_identical_to_reliable_channel() {
    cases(
        "fault_free_plan_is_byte_identical_to_reliable_channel",
        128,
        0x44,
        |rng| {
            let link = arb_link(rng);
            let mut reliable = MeteredChannel::new(link);
            let mut faulty = MeteredChannel::with_faults(link, FaultPlan::none());
            for _ in 0..rng.usize_inclusive(1, 12) {
                let req = rng.usize_inclusive(0, 30_000);
                let resp = rng.usize_inclusive(0, 200_000);
                let a = reliable.round_trip(req, resp);
                let b = faulty
                    .try_round_trip(req, resp)
                    .expect("fault-free plan never fails");
                assert_eq!(a.volume_bytes.to_bits(), b.volume_bytes.to_bits());
                assert_eq!(a.latency_time.to_bits(), b.latency_time.to_bits());
                assert_eq!(a.transfer_time.to_bits(), b.transfer_time.to_bits());
            }
            assert_eq!(reliable.stats(), faulty.stats());
            assert_eq!(reliable.elapsed().to_bits(), faulty.elapsed().to_bits());
        },
    );
}

#[test]
fn table2_anchor_survives_the_fault_layer() {
    // The Table 2 regression guard, through the fallible path: one
    // navigational expand (200 B request, 9 × 512 B response) on wan_256
    // must still cost exactly 10752 B / 0.328125 s transfer / 0.30 s latency.
    let mut ch = MeteredChannel::with_faults(LinkProfile::wan_256(), FaultPlan::none());
    let rt = ch.try_round_trip(200, 9 * 512).unwrap();
    assert_eq!(rt.request_packets, 1);
    assert!((rt.volume_bytes - 10752.0).abs() < 1e-12);
    assert!((rt.transfer_time - 0.328125).abs() < 1e-12);
    assert!((rt.latency_time - 0.30).abs() < 1e-12);
}

#[test]
fn seeded_fault_plans_replay_identically() {
    cases("seeded_fault_plans_replay_identically", 64, 0x45, |rng| {
        let link = arb_link(rng);
        let seed = rng.next_u64();
        let loss = rng.f64_range(0.0, 0.4);
        let stall = rng.f64_range(0.0, 0.1);
        let run = || {
            let plan = FaultPlan::lossy(seed, loss).with_stall_rate(stall);
            let mut ch = MeteredChannel::with_faults(link, plan);
            let mut outcomes = Vec::new();
            for _ in 0..20 {
                outcomes.push(ch.try_round_trip(600, 2048).map_err(|e| e.to_string()));
            }
            (outcomes, ch.stats().clone(), ch.elapsed().to_bits())
        };
        assert_eq!(run(), run());
    });
}

#[test]
fn failed_attempts_charge_only_fault_wait_time() {
    cases(
        "failed_attempts_charge_only_fault_wait_time",
        64,
        0x46,
        |rng| {
            let link = arb_link(rng);
            let plan = FaultPlan::lossy(rng.next_u64(), rng.f64_range(0.1, 0.6))
                .with_server_error_rate(rng.f64_range(0.0, 0.3));
            let mut ch = MeteredChannel::with_faults(link, plan);
            for _ in 0..30 {
                let _ = ch.try_round_trip(500, 4096);
            }
            let s = ch.stats();
            // the eq. (4)/(6) identity holds for the successful traffic: the
            // clock is exactly latency + transfer + waited-out failures
            let expected = s.latency_time + s.transfer_time + s.fault_wait_time;
            assert!((ch.elapsed() - expected).abs() < 1e-9);
            // failures never count as queries
            assert_eq!(s.queries + s.failed_attempts, 30);
        },
    );
}
