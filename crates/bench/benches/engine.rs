#![allow(clippy::unwrap_used)]

//! Engine microbenchmarks: the SQL-processing building blocks the
//! reproduction rests on. Local execution cost is explicitly out of scope
//! for the paper's response-time model ("transmission costs are the
//! dominating limitation factor", §6), but these benches document that the
//! substrate's asymptotics are sane — index probes O(1), semi-naive
//! recursion linear in the visible tree.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use pdm_sql::parser::{parse_query, parse_statement};
use pdm_workload::{build_database, TreeSpec};

const RECURSIVE_SQL: &str = "WITH RECURSIVE rtbl (type, obid, name, dec) AS \
 (SELECT type, obid, name, dec FROM assy WHERE assy.obid = 1 \
  UNION SELECT assy.type, assy.obid, assy.name, assy.dec \
  FROM rtbl JOIN link ON rtbl.obid = link.left JOIN assy ON link.right = assy.obid \
  UNION SELECT comp.type, comp.obid, comp.name, '' \
  FROM rtbl JOIN link ON rtbl.obid = link.left JOIN comp ON link.right = comp.obid) \
 SELECT type, obid, name, dec FROM rtbl ORDER BY 1, 2";

fn bench_parser(c: &mut Criterion) {
    c.bench_function("parse/navigational_expand", |b| {
        let sql = "SELECT assy.type, assy.obid, assy.name FROM link \
                   JOIN assy ON link.right = assy.obid WHERE link.left = 42";
        b.iter(|| parse_statement(black_box(sql)).unwrap());
    });
    c.bench_function("parse/recursive_mle", |b| {
        b.iter(|| parse_query(black_box(RECURSIVE_SQL)).unwrap());
    });
}

fn bench_navigational_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("expand_children");
    for (depth, branching) in [(3u32, 5u32), (5, 5)] {
        let spec = TreeSpec::new(depth, branching, 1.0).with_node_size(128);
        let (db, _) = build_database(&spec).unwrap();
        let sql = "SELECT assy.type, assy.obid, assy.name FROM link \
                   JOIN assy ON link.right = assy.obid WHERE link.left = 1";
        group.bench_with_input(
            BenchmarkId::new("indexed", format!("d{depth}b{branching}")),
            &db,
            |b, db| b.iter(|| db.query(black_box(sql)).unwrap()),
        );
    }
    group.finish();
}

fn bench_recursive_mle(c: &mut Criterion) {
    let mut group = c.benchmark_group("recursive_mle");
    group.sample_size(20);
    for (depth, branching) in [(3u32, 3u32), (5, 3), (4, 5)] {
        let spec = TreeSpec::new(depth, branching, 1.0).with_node_size(128);
        let (db, _) = build_database(&spec).unwrap();
        let nodes = spec.assembly_count() + spec.component_count();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{nodes}nodes")),
            &db,
            |b, db| b.iter(|| db.query(black_box(RECURSIVE_SQL)).unwrap()),
        );
    }
    group.finish();
}

fn bench_subquery_cache(c: &mut Criterion) {
    // The §5.3.1 "intelligent optimizer" behaviour: an uncorrelated NOT
    // EXISTS over the recursion result, with and without the cache.
    let spec = TreeSpec::new(4, 3, 1.0).with_node_size(128);
    let sql = "WITH RECURSIVE rtbl (type, obid, dec) AS \
      (SELECT type, obid, dec FROM assy WHERE assy.obid = 1 \
       UNION SELECT assy.type, assy.obid, assy.dec \
       FROM rtbl JOIN link ON rtbl.obid = link.left JOIN assy ON link.right = assy.obid) \
      SELECT type, obid FROM rtbl \
      WHERE NOT EXISTS (SELECT * FROM rtbl WHERE dec != '+')";

    let mut group = c.benchmark_group("forall_subquery");
    group.sample_size(20);
    let (db_on, _) = build_database(&spec).unwrap();
    group.bench_function("cache_on", |b| {
        b.iter(|| db_on.query(black_box(sql)).unwrap())
    });
    let (mut db_off, _) = build_database(&spec).unwrap();
    db_off.config.subquery_cache = false;
    group.bench_function("cache_off", |b| {
        b.iter(|| db_off.query(black_box(sql)).unwrap())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_parser,
    bench_navigational_query,
    bench_recursive_mle,
    bench_subquery_cache
);
criterion_main!(benches);
