#![allow(clippy::unwrap_used)]

//! End-to-end strategy benches: one full PDM action (real SQL, metered WAN)
//! per iteration. Wall-clock here measures the *machinery*; the reproduced
//! result is the virtual response time, which the `validate` binary and the
//! integration tests check against the model.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use pdm_bench::{make_session, run_action, SimAction};
use pdm_core::Strategy;
use pdm_net::LinkProfile;

fn bench_mle_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("mle");
    group.sample_size(10);
    for strategy in Strategy::ALL {
        let mut session =
            make_session(4, 3, 0.6, 256, strategy, LinkProfile::wan_256());
        group.bench_with_input(
            BenchmarkId::from_parameter(strategy.label().replace(' ', "_")),
            &(),
            |b, _| {
                b.iter(|| run_action(&mut session, SimAction::MultiLevelExpand));
            },
        );
    }
    group.finish();
}

fn bench_query_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("query_all");
    group.sample_size(10);
    for strategy in [Strategy::LateEval, Strategy::EarlyEval] {
        let mut session =
            make_session(4, 3, 0.6, 256, strategy, LinkProfile::wan_256());
        group.bench_with_input(
            BenchmarkId::from_parameter(strategy.label().replace(' ', "_")),
            &(),
            |b, _| {
                b.iter(|| run_action(&mut session, SimAction::Query));
            },
        );
    }
    group.finish();
}

fn bench_checkout_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("checkout");
    group.sample_size(10);

    group.bench_function("classic_recursive", |b| {
        let mut session =
            make_session(3, 3, 1.0, 256, Strategy::Recursive, LinkProfile::wan_256());
        b.iter(|| {
            let out = session.check_out(1).unwrap();
            let tree = out.tree.expect("checkout succeeds");
            session.check_in(&tree).unwrap();
        });
    });

    group.bench_function("function_shipping", |b| {
        let mut session =
            make_session(3, 3, 1.0, 256, Strategy::Recursive, LinkProfile::wan_256());
        b.iter(|| {
            let out = session.check_out_function_shipping(1).unwrap();
            let tree = out.tree.expect("checkout succeeds");
            session.check_in(&tree).unwrap();
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_mle_strategies,
    bench_query_strategies,
    bench_checkout_variants
);
criterion_main!(benches);
