#![allow(clippy::unwrap_used)]

//! Query-modificator benches: the client-side cost of §5.5's steps A–D.
//! The paper stores translated conditions in the rule table precisely to
//! keep this path cheap; these benches quantify it.

use criterion::{criterion_group, criterion_main, Criterion};
use std::collections::HashSet;
use std::hint::black_box;

use pdm_core::query::modificator::Modificator;
use pdm_core::query::{navigational, recursive};
use pdm_core::rules::condition::{AggFunc, CmpOp, Condition, RowPredicate};
use pdm_core::rules::{ActionKind, Rule};
use pdm_core::RuleTable;

fn full_rule_table() -> RuleTable {
    let mut t = RuleTable::new();
    for table in ["link", "assy", "comp"] {
        t.add(Rule::for_all_users(
            ActionKind::Access,
            table,
            Condition::Row(RowPredicate::compare("strc_opt", CmpOp::Eq, "OPTA")),
        ));
    }
    t.add(Rule::for_all_users(
        ActionKind::MultiLevelExpand,
        "assy",
        Condition::ForAllRows {
            object_type: Some("assy".into()),
            predicate: RowPredicate::compare("dec", CmpOp::Eq, "+"),
        },
    ));
    t.add(Rule::for_all_users(
        ActionKind::MultiLevelExpand,
        "assy",
        Condition::TreeAggregate {
            func: AggFunc::Count,
            attr: None,
            object_type: Some("assy".into()),
            op: CmpOp::LtEq,
            value: 100_000.0,
        },
    ));
    t.add(Rule::for_all_users(
        ActionKind::MultiLevelExpand,
        "comp",
        Condition::ExistsStructure {
            object_table: "comp".into(),
            relation_table: "specified_by".into(),
            related_table: "spec".into(),
        },
    ));
    t
}

fn bench_modify_recursive(c: &mut Criterion) {
    let rules = full_rule_table();
    let views = HashSet::new();
    let m = Modificator::new(&rules, "scott", ActionKind::MultiLevelExpand, &views);
    c.bench_function("modify/recursive_all_classes", |b| {
        b.iter(|| {
            let mut q = recursive::mle_query(1);
            m.modify_recursive(black_box(&mut q)).unwrap();
            q
        });
    });
}

fn bench_modify_navigational(c: &mut Criterion) {
    let rules = full_rule_table();
    let views = HashSet::new();
    let m = Modificator::new(&rules, "scott", ActionKind::MultiLevelExpand, &views);
    c.bench_function("modify/navigational_row_conditions", |b| {
        b.iter(|| {
            let mut q = navigational::expand_query(42);
            m.modify_navigational(black_box(&mut q)).unwrap();
            q
        });
    });
}

fn bench_render_and_parse(c: &mut Criterion) {
    // Generating SQL text and re-parsing it at the server is on the per-
    // query path of every strategy.
    let rules = full_rule_table();
    let views = HashSet::new();
    let m = Modificator::new(&rules, "scott", ActionKind::MultiLevelExpand, &views);
    let mut q = recursive::mle_query(1);
    m.modify_recursive(&mut q).unwrap();
    let sql = q.to_string();
    c.bench_function("modify/render_modified_query", |b| {
        b.iter(|| black_box(&q).to_string());
    });
    c.bench_function("modify/reparse_modified_query", |b| {
        b.iter(|| pdm_sql::parser::parse_query(black_box(&sql)).unwrap());
    });
}

criterion_group!(
    benches,
    bench_modify_recursive,
    bench_modify_navigational,
    bench_render_and_parse
);
criterion_main!(benches);
