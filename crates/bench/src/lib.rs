#![cfg_attr(test, allow(clippy::unwrap_used))]

//! Shared harness for the table/figure regeneration binaries and the
//! Criterion benches: builds paper-scenario sessions and measures actions
//! under each strategy.

use pdm_core::rules::condition::{CmpOp, Condition, RowPredicate};
use pdm_core::rules::{ActionKind, Rule};
use pdm_core::{RuleTable, Session, SessionConfig, Strategy};
use pdm_net::{LinkProfile, TrafficStats};
use pdm_workload::{build_database, TreeSpec, VisibilityMode};

/// The paper's three user actions, simulation-side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimAction {
    Query,
    Expand,
    MultiLevelExpand,
}

impl SimAction {
    pub const ALL: [SimAction; 3] = [
        SimAction::Query,
        SimAction::Expand,
        SimAction::MultiLevelExpand,
    ];

    pub fn label(&self) -> &'static str {
        match self {
            SimAction::Query => "Query",
            SimAction::Expand => "Exp",
            SimAction::MultiLevelExpand => "MLE",
        }
    }

    pub fn to_model(&self) -> pdm_model::Action {
        match self {
            SimAction::Query => pdm_model::Action::Query,
            SimAction::Expand => pdm_model::Action::Expand,
            SimAction::MultiLevelExpand => pdm_model::Action::MultiLevelExpand,
        }
    }
}

/// Map simulation strategy to model strategy.
pub fn to_model_strategy(s: Strategy) -> pdm_model::Strategy {
    match s {
        Strategy::LateEval => pdm_model::Strategy::LateEval,
        Strategy::EarlyEval => pdm_model::Strategy::EarlyEval,
        Strategy::Recursive => pdm_model::Strategy::Recursive,
    }
}

/// The γ-visibility rule set every simulated session uses (structure-option
/// access rules on relations and objects, §3.1 example 3).
pub fn visibility_rules() -> RuleTable {
    let mut t = RuleTable::new();
    for table in ["link", "assy", "comp"] {
        t.add(Rule::for_all_users(
            ActionKind::Access,
            table,
            Condition::Row(RowPredicate::compare("strc_opt", CmpOp::Eq, "OPTA")),
        ));
    }
    t
}

/// Build a session over a freshly generated tree.
pub fn make_session(
    depth: u32,
    branching: u32,
    gamma: f64,
    node_size: usize,
    strategy: Strategy,
    link: LinkProfile,
) -> Session {
    let spec = TreeSpec::new(depth, branching, gamma)
        .with_node_size(node_size)
        .with_visibility(VisibilityMode::Deterministic);
    let (db, _) = build_database(&spec).expect("benchmark database build cannot fail");
    Session::new(
        db,
        SessionConfig::new("scott", strategy, link),
        visibility_rules(),
    )
}

/// Run one action and return its traffic stats.
pub fn run_action(session: &mut Session, action: SimAction) -> TrafficStats {
    match action {
        SimAction::Query => session.query_all(1).expect("benchmark action failed").stats,
        SimAction::Expand => {
            session
                .single_level_expand(1)
                .expect("benchmark action failed")
                .stats
        }
        SimAction::MultiLevelExpand => {
            session
                .multi_level_expand(1)
                .expect("benchmark action failed")
                .stats
        }
    }
}

/// Format seconds like the paper's tables (two decimals).
pub fn fmt_s(v: f64) -> String {
    format!("{v:.2}")
}

/// A simulated reproduction of one paper table: the same grid as
/// `pdm_model::tables`, but *measured* by running real SQL through the
/// engine and the WAN simulator instead of evaluating formulas.
pub struct PaperSim {
    /// (δ, β) tree shapes.
    pub trees: Vec<(u32, u32)>,
    pub gamma: f64,
    pub node_size: usize,
    pub links: Vec<LinkProfile>,
}

impl PaperSim {
    /// The paper's full grid (Tables 2–4). The largest tree has 97,655
    /// nodes; use a release build.
    pub fn paper() -> Self {
        PaperSim {
            trees: vec![(3, 9), (9, 3), (7, 5)],
            gamma: 0.6,
            node_size: 512,
            links: LinkProfile::paper_wans().to_vec(),
        }
    }

    /// A scaled-down grid for quick (debug-build) runs; shapes keep the
    /// deep-vs-wide contrast.
    pub fn small() -> Self {
        PaperSim {
            trees: vec![(3, 4), (5, 3), (4, 5)],
            gamma: 0.6,
            node_size: 512,
            links: LinkProfile::paper_wans().to_vec(),
        }
    }

    /// Run `actions` under `strategy` over the whole grid and render a
    /// paper-style table. Every cell also reports the analytic prediction
    /// and the relative error; `with_savings` adds measured savings against
    /// a late-evaluation run on the same data.
    pub fn render(&self, strategy: Strategy, actions: &[SimAction], with_savings: bool) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "simulated grid: γ={}, node={}B; measured vs model, times in s",
            self.gamma, self.node_size
        );
        let _ = write!(out, "{:<26}", "");
        for (d, b) in &self.trees {
            for a in actions {
                let _ = write!(out, "{:>16}", format!("δ{d}β{b} {}", a.label()));
            }
        }
        let _ = writeln!(out);

        // One session per tree, reused across links/actions/strategies;
        // keep the realized tree profile so the model predicts exactly what
        // the generated (integer-count) tree should measure.
        let mut sessions: Vec<(Session, pdm_model::response::TreeProfile)> = self
            .trees
            .iter()
            .map(|&(d, b)| {
                let spec = TreeSpec::new(d, b, self.gamma)
                    .with_node_size(self.node_size)
                    .with_visibility(VisibilityMode::Deterministic);
                let (db, data) =
                    build_database(&spec).expect("benchmark database build cannot fail");
                let session = Session::new(
                    db,
                    SessionConfig::new("scott", strategy, self.links[0]),
                    visibility_rules(),
                );
                (session, realized_profile(&data))
            })
            .collect();

        for link in &self.links {
            let mut measured_row: Vec<f64> = Vec::new();
            let mut predicted_row: Vec<f64> = Vec::new();
            let mut savings_row: Vec<Option<f64>> = Vec::new();

            for (session, profile) in sessions.iter_mut() {
                session.set_link(*link);
                for a in actions {
                    session.set_strategy(strategy);
                    let stats = run_action(session, *a);
                    let measured = stats.response_time();
                    let predicted = pdm_model::response::response_from_profile(
                        profile,
                        a.to_model(),
                        to_model_strategy(strategy),
                        link,
                        self.node_size,
                        0,
                    )
                    .total();
                    measured_row.push(measured);
                    predicted_row.push(predicted);
                    if with_savings && strategy != Strategy::LateEval {
                        session.set_strategy(Strategy::LateEval);
                        let base = run_action(session, *a).response_time();
                        savings_row.push(Some(100.0 * (base - measured) / base));
                    } else {
                        savings_row.push(None);
                    }
                }
            }

            let head = format!("T_Lat={:.2} dtr={:.0}", link.latency, link.dtr_kbit);
            let _ = write!(out, "{:<26}", format!("{head} measured"));
            for v in &measured_row {
                let _ = write!(out, "{:>16.2}", v);
            }
            let _ = writeln!(out);
            let _ = write!(out, "{:<26}", "          model");
            for v in &predicted_row {
                let _ = write!(out, "{:>16.2}", v);
            }
            let _ = writeln!(out);
            let _ = write!(out, "{:<26}", "          rel err %");
            for (m, p) in measured_row.iter().zip(&predicted_row) {
                let _ = write!(out, "{:>16.2}", rel_err_pct(*m, *p));
            }
            let _ = writeln!(out);
            if savings_row.iter().any(Option::is_some) {
                let _ = write!(out, "{:<26}", "          saving in %");
                for s in &savings_row {
                    match s {
                        Some(v) => {
                            let _ = write!(out, "{:>16.2}", v);
                        }
                        None => {
                            let _ = write!(out, "{:>16}", "-");
                        }
                    }
                }
                let _ = writeln!(out);
            }
        }
        out
    }
}

/// Relative error in percent.
pub fn rel_err_pct(measured: f64, predicted: f64) -> f64 {
    100.0 * (measured - predicted).abs() / predicted.abs().max(1e-12)
}

/// Measure the nine bars of a Figure 4/5-style chart (3 strategies × 3
/// actions) by running real SQL over the simulated link, and render them in
/// the same ASCII style as the analytic figures.
pub fn simulate_figure(
    title: &str,
    depth: u32,
    branching: u32,
    gamma: f64,
    node_size: usize,
    link: LinkProfile,
) -> String {
    use std::fmt::Write;
    let mut session = make_session(depth, branching, gamma, node_size, Strategy::LateEval, link);
    let mut bars: Vec<(Strategy, SimAction, f64)> = Vec::new();
    for strategy in Strategy::ALL {
        session.set_strategy(strategy);
        for action in SimAction::ALL {
            let t = run_action(&mut session, action).response_time();
            bars.push((strategy, action, t));
        }
    }
    let max = bars.iter().map(|b| b.2).fold(f64::NEG_INFINITY, f64::max);
    let mut out = String::new();
    let _ = writeln!(out, "{title} (measured end-to-end)");
    for strategy in Strategy::ALL {
        let _ = writeln!(out, "  [{}]", strategy.label());
        for (s, a, t) in &bars {
            if *s == strategy {
                let width = ((t / max) * 50.0).round() as usize;
                let _ = writeln!(
                    out,
                    "    {:<6} {:>9.2}s |{}",
                    a.label(),
                    t,
                    "#".repeat(width.max(1))
                );
            }
        }
    }
    out
}

/// Build the realized [`TreeProfile`](pdm_model::response::TreeProfile) of a
/// generated product structure — the integer counts the simulation will
/// actually transfer.
pub fn realized_profile(data: &pdm_workload::ProductData) -> pdm_model::response::TreeProfile {
    pdm_model::response::TreeProfile {
        root_children: data.root_children as f64,
        total_nodes: data.total_nodes() as f64,
        visible_nodes: data.visible_nodes() as f64,
        expanded_children: data.expanded_children as f64,
        visible_level1: data.visible_per_level.first().copied().unwrap_or(0) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_smoke() {
        let mut s = make_session(2, 3, 1.0, 256, Strategy::Recursive, LinkProfile::wan_512());
        let stats = run_action(&mut s, SimAction::MultiLevelExpand);
        assert_eq!(stats.queries, 1);
        let stats = run_action(&mut s, SimAction::Expand);
        assert_eq!(stats.queries, 1);
        let stats = run_action(&mut s, SimAction::Query);
        assert_eq!(stats.queries, 1);
    }

    #[test]
    fn strategy_mapping_total() {
        for s in Strategy::ALL {
            let _ = to_model_strategy(s);
        }
        for a in SimAction::ALL {
            let _ = a.to_model();
            assert!(!a.label().is_empty());
        }
    }
}
