#![allow(clippy::unwrap_used)]

//! Regenerate Figure 5: response-time bars for δ=7, β=5, γ=0.6 at
//! T_Lat=150ms, dtr=256 kbit/s, across the three system variants.

fn main() {
    let args: Vec<String> = std::env::args().collect();
    println!("{}", pdm_model::figure5());
    if args.iter().any(|a| a == "--simulate") {
        println!();
        println!(
            "{}",
            pdm_bench::simulate_figure(
                "Figure 5 simulated: δ=7, β=5, γ=0.6, T_Lat=150ms, dtr=256kBit/s",
                7,
                5,
                0.6,
                512,
                pdm_net::LinkProfile::wan_256(),
            )
        );
    }
}
