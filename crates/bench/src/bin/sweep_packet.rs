#![allow(clippy::unwrap_used)]

//! Sweep the packet size and the generated-query size: §5.4's caveat that
//! "the recursive query may become quite large ... potentially needs more
//! than one packet to be transmitted to the server" (q_r > 1 in eq. (5)).
//!
//! The sweep shows that even pathological rule tables (tens of kilobytes of
//! predicates) cost only a few extra request packets — negligible against
//! the thousands of round trips they replace.

use pdm_model::response::response;
use pdm_model::{Action, KaryTree, Strategy};
use pdm_net::LinkProfile;

fn main() {
    let tree = KaryTree::new(7, 5, 0.6);

    println!("query-size sweep (packet 4kB, δ=7, β=5, γ=0.6, 256 kbit/s):");
    println!(
        "{:>14}{:>8}{:>14}{:>18}",
        "query bytes", "q_r", "MLE rec T", "vs 1-packet Δ%"
    );
    let link = LinkProfile::wan_256();
    let base = response(
        &tree,
        Action::MultiLevelExpand,
        Strategy::Recursive,
        &link,
        512,
        0,
    );
    for query_bytes in [512usize, 2_048, 4_096, 8_192, 16_384, 65_536] {
        let r = response(
            &tree,
            Action::MultiLevelExpand,
            Strategy::Recursive,
            &link,
            512,
            query_bytes,
        );
        println!(
            "{:>14}{:>8.0}{:>14.2}{:>17.2}%",
            query_bytes,
            r.queries,
            r.total(),
            100.0 * (r.total() - base.total()) / base.total()
        );
    }

    println!();
    println!("packet-size sweep (recursive query of 6 kB):");
    println!(
        "{:>14}{:>8}{:>14}{:>14}",
        "packet bytes", "q_r", "MLE rec T", "MLE late T"
    );
    for packet in [512usize, 1_024, 2_048, 4_096, 8_192] {
        let link = LinkProfile::new(256.0, 0.15, packet);
        let rec = response(
            &tree,
            Action::MultiLevelExpand,
            Strategy::Recursive,
            &link,
            512,
            6_000,
        );
        let late = response(
            &tree,
            Action::MultiLevelExpand,
            Strategy::LateEval,
            &link,
            512,
            0,
        );
        println!(
            "{:>14}{:>8.0}{:>14.2}{:>14.2}",
            packet,
            rec.queries,
            rec.total(),
            late.total()
        );
    }
}
