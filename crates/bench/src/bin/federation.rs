#![allow(clippy::unwrap_used)]

//! Multi-server sweep (§7 outlook): how the recursive strategy degrades as
//! the product structure is distributed over more sites — one round trip
//! per visited partition instead of one total — and how far that still is
//! from navigational access.

use pdm_bench::visibility_rules;
use pdm_core::{Federation, MountPoint, Strategy};
use pdm_net::LinkProfile;
use pdm_workload::{generate, partition, TreeSpec};

fn build(spec: &TreeSpec, n_sites: usize, strategy: Strategy) -> Federation {
    let data = generate(spec);
    let (dbs, info) = partition(&data, n_sites).expect("partition");
    let mounts = info
        .mounts
        .iter()
        .map(|m| MountPoint {
            parent: m.parent,
            child: m.child,
            child_site: m.child_site,
            visible: m.visible,
        })
        .collect();
    let links = vec![LinkProfile::wan_256(); n_sites];
    let names = (0..n_sites).map(|i| format!("site{i}")).collect();
    Federation::new(
        dbs,
        links,
        names,
        info.site_of.clone(),
        mounts,
        "scott",
        strategy,
        visibility_rules(),
    )
}

fn main() {
    // δ=5, β=6, γ=0.8: ~9,330 objects, 6 level-1 subtrees to distribute.
    let spec = TreeSpec::new(5, 6, 0.8).with_node_size(512);
    println!(
        "federated MLE sweep: δ=5, β=6, γ=0.8 ({} objects), all sites 256 kbit/s / 150 ms",
        spec.assembly_count() + spec.component_count()
    );
    println!(
        "{:>7}{:>10}{:>14}{:>14}{:>16}{:>16}",
        "sites", "visited", "rec queries", "rec T", "navigational T", "rec saving%"
    );
    for n_sites in [1usize, 2, 3, 4, 6] {
        let mut rec = build(&spec, n_sites, Strategy::Recursive);
        let out = rec.multi_level_expand(1).expect("expand");
        let t_rec = out.response_time();

        let mut nav = build(&spec, n_sites, Strategy::LateEval);
        let t_nav = nav.multi_level_expand(1).expect("expand").response_time();

        println!(
            "{:>7}{:>10}{:>14}{:>14.2}{:>16.2}{:>15.2}%",
            n_sites,
            out.sites_visited,
            out.total_queries(),
            t_rec,
            t_nav,
            100.0 * (t_nav - t_rec) / t_nav
        );
    }
    println!();
    println!(
        "Distribution costs the recursive client one extra round trip (plus\n\
         the remote partition's payload) per crossed mount — the saving slips\n\
         by fractions of a percent, not orders of magnitude. The paper's\n\
         outlook concern is real but mild for subtree-grain placement."
    );
}
