#![allow(clippy::unwrap_used)]

//! Chaos bench: seeded crash/recovery cycles plus a recovery-time profile.
//!
//! Two parts:
//!
//! 1. **Crash cycles** — `cycles` rounds of: run a seeded mixed workload
//!    (DML, server-side check-outs, check-ins) against a durable server
//!    whose simulated log device is scheduled to die at a PRNG-chosen
//!    write boundary under a PRNG-chosen tail fault; recover from the
//!    surviving bytes; verify the recovery invariants (state matches the
//!    crashed server's published snapshot plus the stale-grant sweep, no
//!    surviving lock grants or `checkedout` flags, completed idempotency
//!    tokens replay without re-executing). Any violation writes
//!    `CHAOS_journal.txt` with the failing seed and dies non-zero — the CI
//!    chaos job uploads that file as an artifact.
//!
//! 2. **Recovery profile** — recovery wall time and replay volume as a
//!    function of log length and checkpoint interval, written to
//!    `BENCH_recovery.json`.
//!
//! Usage: `chaos [seed] [cycles]` (also honors `CHAOS_SEED`; CI runs three
//! distinct seeds in release mode).

use std::sync::Arc;
use std::time::{Duration, Instant};

use pdm_core::query::recursive;
use pdm_core::{recover_server, DurabilityConfig, PdmServer, SharedServer};
use pdm_prng::Prng;
use pdm_sql::persist::{database_fingerprint, state_fingerprint};
use pdm_sql::shared::Snapshot;
use pdm_sql::{Database, Value};
use pdm_wal::{CrashPlan, TailFault};
use pdm_workload::{build_database, TreeSpec};

const NO_CHECKPOINTS: u64 = 1 << 40;

fn initial_database() -> Database {
    build_database(&TreeSpec::new(3, 3, 1.0).with_node_size(64))
        .unwrap()
        .0
}

fn durable_server(plan: CrashPlan, interval: u64) -> PdmServer {
    let cfg = DurabilityConfig::default()
        .with_interval(interval)
        .with_crash_plan(plan);
    PdmServer::from_shared(Arc::new(
        SharedServer::with_durability(initial_database(), &cfg).unwrap(),
    ))
}

fn int_column(rows: &pdm_sql::ResultSet) -> Vec<i64> {
    rows.rows
        .iter()
        .filter_map(|r| match r.get(0) {
            Value::Int(i) => Some(*i),
            _ => None,
        })
        .collect()
}

fn flagged_ids(server: &PdmServer, table: &str) -> Vec<i64> {
    int_column(
        &server
            .query(&format!(
                "SELECT obid FROM {table} WHERE checkedout = TRUE ORDER BY obid"
            ))
            .unwrap(),
    )
}

/// Seed-deterministic op mix; results are ignored so the script keeps
/// running after the device dies (post-crash writes fail fast).
fn scripted_workload(server: &PdmServer, seed: u64, steps: usize) -> Vec<u64> {
    let mut rng = Prng::seed_from_u64(seed);
    let roots = int_column(&server.query("SELECT obid FROM assy ORDER BY obid").unwrap());
    let mut spec_obid = 900_000i64;
    let mut tokens = Vec::new();
    for _ in 0..steps {
        match rng.index(6) {
            0 => {
                let id = roots[rng.index(roots.len())];
                let payload = rng.ident(4, 12);
                let _ = server.execute(&format!(
                    "UPDATE assy SET payload = '{payload}' WHERE obid = {id}"
                ));
            }
            1 => {
                let name = rng.ident(3, 10);
                let lo = rng.i64_inclusive(1, 40);
                let _ = server.execute(&format!(
                    "UPDATE comp SET name = '{name}' WHERE obid >= {lo} AND obid <= {}",
                    lo + 2
                ));
            }
            2 => {
                spec_obid += 1;
                let name = rng.ident(3, 10);
                let _ = server.execute(&format!(
                    "INSERT INTO spec VALUES ('spec', {spec_obid}, '{name}')"
                ));
            }
            3 => {
                let victim = 900_000 + rng.i64_inclusive(1, (spec_obid - 900_000).max(1));
                let _ = server.execute(&format!("DELETE FROM spec WHERE obid = {victim}"));
            }
            4 => {
                let root = roots[rng.index(roots.len())];
                let sql = recursive::mle_query(root).to_string();
                let token = server.shared().next_token();
                tokens.push(token);
                let _ = server.checkout_procedure_with_deadline(
                    root,
                    &sql,
                    token,
                    Some(Duration::from_secs(5)),
                );
            }
            _ => {
                let assy = flagged_ids(server, "assy");
                let comp = flagged_ids(server, "comp");
                if !assy.is_empty() || !comp.is_empty() {
                    let _ = server.checkin_procedure(&assy, &comp);
                }
            }
        }
    }
    tokens
}

/// Expected recovered state: the crashed server's published snapshot (the
/// commit gate syncs before publishing, so published == durable) with all
/// outstanding grants swept back to `FALSE`.
fn published_plus_sweep(server: &PdmServer) -> Vec<u8> {
    let snapshot = server.database().snapshot();
    let mut db = Database {
        catalog: snapshot.catalog.clone(),
        config: snapshot.config.clone(),
    };
    let grants = server.shared().durability().unwrap().outstanding_grants();
    let mut sweep_assy: Vec<i64> = grants.values().flat_map(|g| g.assy.clone()).collect();
    let mut sweep_comp: Vec<i64> = grants.values().flat_map(|g| g.comp.clone()).collect();
    sweep_assy.sort_unstable();
    sweep_assy.dedup();
    sweep_comp.sort_unstable();
    sweep_comp.dedup();
    for (table, ids) in [("assy", &sweep_assy), ("comp", &sweep_comp)] {
        if !ids.is_empty() {
            let list = ids
                .iter()
                .map(|id| id.to_string())
                .collect::<Vec<_>>()
                .join(", ");
            db.execute(&format!(
                "UPDATE {table} SET checkedout = FALSE WHERE obid IN ({list})"
            ))
            .unwrap();
        }
    }
    state_fingerprint(&Snapshot {
        catalog: db.catalog,
        config: db.config,
        version: 0,
    })
}

struct CycleFailure {
    cycle: u64,
    crash_op: u64,
    fault: TailFault,
    detail: String,
    /// Server metrics snapshot at failure time — the post-mortem context
    /// the journal carries alongside the reproducing seed.
    metrics: String,
}

fn run_cycle(seed: u64, cycle: u64) -> Result<(u64, u64, String), CycleFailure> {
    let mut rng = Prng::seed_from_u64(seed ^ cycle.wrapping_mul(0x9E37_79B9));
    let crash_op = rng.u64_inclusive(0, 90);
    let fault = match rng.index(3) {
        0 => TailFault::LoseTail,
        1 => TailFault::TornWrite,
        _ => TailFault::PartialSector,
    };

    let plan = CrashPlan::at_op(crash_op)
        .with_fault(fault)
        .with_seed(rng.next_u64());
    let victim = durable_server(plan, NO_CHECKPOINTS);
    let fail = |detail: String| CycleFailure {
        cycle,
        crash_op,
        fault,
        detail,
        metrics: victim.metrics().snapshot().to_json(0),
    };
    let tokens = scripted_workload(&victim, rng.next_u64(), 30);
    let durability = victim.shared().durability().unwrap();
    if !durability.is_crashed() {
        durability.crash_now();
    }

    let cfg = DurabilityConfig::default().with_interval(NO_CHECKPOINTS);
    let (recovered, report) = recover_server(durability.image(), &cfg)
        .map_err(|e| fail(format!("recovery failed: {e}")))?;
    let recovered = PdmServer::from_shared(Arc::new(recovered));

    if database_fingerprint(recovered.database()) != published_plus_sweep(&victim) {
        return Err(fail(
            "recovered state differs from durable prefix + sweep".into(),
        ));
    }
    if !recovered.shared().lock_table().is_empty() {
        return Err(fail("stale lock grants survived recovery".into()));
    }
    for table in ["assy", "comp"] {
        if !flagged_ids(&recovered, table).is_empty() {
            return Err(fail(format!("stale checkedout flags in {table}")));
        }
    }
    for token in tokens {
        if !recovered.checkout_recorded(token) {
            // The token never completed before the crash; its grant (if
            // any) was swept. Nothing to replay.
            continue;
        }
        let before = recovered.shared().version();
        recovered
            .checkout_procedure_with_deadline(1, "unused", token, Some(Duration::from_secs(1)))
            .map_err(|e| fail(format!("token {token} replay failed: {e}")))?;
        if recovered.shared().version() != before {
            return Err(fail(format!("token {token} replay re-executed")));
        }
    }
    Ok((
        report.replayed_commits,
        report.swept_tokens.len() as u64,
        victim.metrics().snapshot().to_json(2),
    ))
}

/// One recovery-time sample: `commits` UPDATE commits at checkpoint
/// `interval`, crash at the end, time `recover_server`.
fn profile_point(commits: u64, interval: u64) -> (usize, u64, f64) {
    let server = durable_server(CrashPlan::none(), interval);
    let mut rng = Prng::seed_from_u64(0x5EED ^ commits ^ interval);
    let roots = int_column(&server.query("SELECT obid FROM assy ORDER BY obid").unwrap());
    for _ in 0..commits {
        let id = roots[rng.index(roots.len())];
        let payload = rng.ident(4, 12);
        server
            .execute(&format!(
                "UPDATE assy SET payload = '{payload}' WHERE obid = {id}"
            ))
            .unwrap();
    }
    let durability = server.shared().durability().unwrap();
    durability.crash_now();
    let image = durability.image();
    let log_len = image.log.len();
    let cfg = DurabilityConfig::default().with_interval(interval);
    let start = Instant::now();
    let (_server, report) = recover_server(image, &cfg).unwrap();
    let elapsed = start.elapsed().as_secs_f64() * 1e3;
    (log_len, report.replayed_commits, elapsed)
}

fn main() {
    let mut args = std::env::args().skip(1);
    let seed: u64 = args
        .next()
        .or_else(|| std::env::var("CHAOS_SEED").ok())
        .and_then(|a| a.parse().ok())
        .unwrap_or(0xC4A05);
    let cycles: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(40);

    println!("chaos: {cycles} crash/recovery cycles, seed {seed:#x}");
    let mut replayed_total = 0u64;
    let mut swept_total = 0u64;
    // Metrics of the LAST completed cycle's victim server: one
    // representative per-cycle workload snapshot for the bench report.
    let mut cycle_metrics = String::from("{}");
    let start = Instant::now();
    for cycle in 0..cycles {
        match run_cycle(seed, cycle) {
            Ok((replayed, swept, metrics)) => {
                replayed_total += replayed;
                swept_total += swept;
                cycle_metrics = metrics;
            }
            Err(f) => {
                let journal = format!(
                    "chaos failure\nseed: {seed:#x}\ncycle: {}\ncrash_op: {}\nfault: {:?}\ndetail: {}\nrerun: cargo run --release --bin chaos -- {seed} {cycles}\nserver metrics at failure:\n{}\n",
                    f.cycle, f.crash_op, f.fault, f.detail, f.metrics
                );
                std::fs::write("CHAOS_journal.txt", &journal).unwrap();
                eprintln!("{journal}");
                std::process::exit(1);
            }
        }
    }
    let wall = start.elapsed().as_secs_f64();
    println!(
        "  {cycles} cycles ok in {wall:.2}s: {replayed_total} commits replayed, {swept_total} grants swept"
    );

    println!("recovery profile (interval, commits, log bytes, replayed, ms):");
    let mut rows = Vec::new();
    for &interval in &[8u64, 32, 128, NO_CHECKPOINTS] {
        for &commits in &[100u64, 350, 1100] {
            let (log_len, replayed, ms) = profile_point(commits, interval);
            let label = if interval == NO_CHECKPOINTS {
                "none".to_string()
            } else {
                interval.to_string()
            };
            println!("  {label:>6} {commits:>6} {log_len:>9} {replayed:>6} {ms:>8.2}");
            rows.push(format!(
                concat!(
                    "    {{ \"checkpoint_interval\": \"{}\", \"commits\": {}, ",
                    "\"log_bytes\": {}, \"replayed_commits\": {}, \"recovery_ms\": {:.3} }}"
                ),
                label, commits, log_len, replayed, ms
            ));
        }
    }

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"recovery\",\n",
            "  \"seed\": {},\n",
            "  \"crash_cycles\": {},\n",
            "  \"cycle_wall_seconds\": {:.3},\n",
            "  \"replayed_commits\": {},\n",
            "  \"swept_grants\": {},\n",
            "  \"profile\": [\n{}\n  ],\n",
            "  \"metrics\": {}\n",
            "}}\n"
        ),
        seed,
        cycles,
        wall,
        replayed_total,
        swept_total,
        rows.join(",\n"),
        cycle_metrics.trim_end()
    );
    std::fs::write("BENCH_recovery.json", json).unwrap();
    println!("wrote BENCH_recovery.json");
}
