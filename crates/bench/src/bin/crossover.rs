#![allow(clippy::unwrap_used)]

//! Bandwidth/latency crossover study: where does the navigational approach
//! become tolerable again? §1 observes that in LANs "acceptable response
//! times can be achieved" even navigationally; §6 adds that in
//! higher-bandwidth environments local query cost (ignored by the model)
//! starts to matter. This sweep maps the WAN→LAN transition.

use pdm_model::response::response;
use pdm_model::{Action, KaryTree, Strategy};
use pdm_net::LinkProfile;

fn main() {
    let tree = KaryTree::new(9, 3, 0.6);
    println!("bandwidth sweep, δ=9, β=3, γ=0.6, node=512B (analytic)");

    println!("-- WAN latency (150 ms): round trips dominate at every bandwidth --");
    header();
    for dtr in [64.0, 256.0, 1024.0, 10_240.0, 102_400.0] {
        row(&tree, LinkProfile::new(dtr, 0.15, 4096));
    }

    println!();
    println!("-- LAN latency (0.5 ms): navigational access becomes acceptable --");
    header();
    for dtr in [10_240.0, 102_400.0, 1_024_000.0] {
        row(&tree, LinkProfile::new(dtr, 0.0005, 4096));
    }

    println!();
    println!(
        "The recursive win is a *latency* win: at 150 ms it never fades with\n\
         bandwidth (the MLE late bar stays ≥ 133.5 s of pure latency), while\n\
         at LAN latency the whole problem disappears — exactly the paper's\n\
         framing of why the DaimlerChrysler setup only hurt intercontinentally."
    );
}

fn header() {
    println!(
        "{:>12}{:>12}{:>12}{:>12}{:>14}",
        "dtr kbit/s", "MLE late", "MLE early", "MLE rec", "rec saving%"
    );
}

fn row(tree: &KaryTree, link: LinkProfile) {
    let late = response(
        tree,
        Action::MultiLevelExpand,
        Strategy::LateEval,
        &link,
        512,
        0,
    );
    let early = response(
        tree,
        Action::MultiLevelExpand,
        Strategy::EarlyEval,
        &link,
        512,
        0,
    );
    let rec = response(
        tree,
        Action::MultiLevelExpand,
        Strategy::Recursive,
        &link,
        512,
        0,
    );
    println!(
        "{:>12.0}{:>12.2}{:>12.2}{:>12.3}{:>13.2}%",
        link.dtr_kbit,
        late.total(),
        early.total(),
        rec.total(),
        100.0 * (late.total() - rec.total()) / late.total()
    );
}
