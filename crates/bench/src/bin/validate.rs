#![allow(clippy::unwrap_used)]

//! Full-scale validation: run every paper cell end-to-end (real SQL through
//! the engine, metered WAN) and report measured vs predicted response
//! times. This is the repository's evidence that the simulation and the
//! closed-form model agree.
//!
//! `--paper` runs the full grid including the 97,655-node tree (use a
//! release build); default is the scaled grid.

use pdm_bench::{PaperSim, SimAction};
use pdm_core::Strategy;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let grid = if args.iter().any(|a| a == "--paper") {
        PaperSim::paper()
    } else {
        PaperSim::small()
    };

    println!("== late evaluation (Table 2 regime) ==");
    println!(
        "{}",
        grid.render(Strategy::LateEval, &SimAction::ALL, false)
    );
    println!("== early rule evaluation (Table 3 regime) ==");
    println!(
        "{}",
        grid.render(Strategy::EarlyEval, &SimAction::ALL, true)
    );
    println!("== recursive queries (Table 4 regime) ==");
    println!(
        "{}",
        grid.render(Strategy::Recursive, &[SimAction::MultiLevelExpand], true)
    );
}
