#![allow(clippy::unwrap_used)]

//! Ablation: the §6 check-out problem. Check-out cannot be one query — the
//! retrieval is recursive, but the flag UPDATE is a separate WAN
//! communication. The paper's sketched remedy is function shipping (install
//! the action at the server). This binary compares the two, per tree size
//! and link.

use pdm_bench::{make_session, visibility_rules};
use pdm_core::{Session, SessionConfig, Strategy};
use pdm_net::LinkProfile;
use pdm_workload::{build_database, TreeSpec};

fn fresh_session(depth: u32, branching: u32, link: LinkProfile) -> Session {
    let spec = TreeSpec::new(depth, branching, 1.0).with_node_size(512);
    let (db, _) = build_database(&spec).unwrap();
    Session::new(
        db,
        SessionConfig::new("scott", Strategy::Recursive, link),
        visibility_rules(),
    )
}

fn main() {
    let _ = make_session; // shared harness also used by other bins
    println!("check-out: classic (retrieval + separate UPDATEs) vs function shipping");
    println!(
        "{:<10}{:>8}{:>14}{:>12}{:>14}{:>12}{:>10}",
        "tree", "nodes", "classic c", "classic T", "shipped c", "shipped T", "saving"
    );
    for (depth, branching) in [(2u32, 3u32), (3, 3), (4, 3), (3, 5)] {
        let link = LinkProfile::wan_256();

        let mut classic = fresh_session(depth, branching, link);
        let out = classic.check_out(1).unwrap();
        let classic_stats = out.stats.clone();
        let nodes = out.tree.as_ref().map(|t| t.len()).unwrap_or(0);

        let mut shipped = fresh_session(depth, branching, link);
        let out2 = shipped.check_out_function_shipping(1).unwrap();
        let shipped_stats = out2.stats.clone();
        assert_eq!(out2.tree.map(|t| t.len()), Some(nodes));

        let saving = 100.0 * (classic_stats.response_time() - shipped_stats.response_time())
            / classic_stats.response_time();
        println!(
            "{:<10}{:>8}{:>14}{:>12.2}{:>14}{:>12.2}{:>9.1}%",
            format!("δ{depth}β{branching}"),
            nodes,
            classic_stats.communications,
            classic_stats.response_time(),
            shipped_stats.communications,
            shipped_stats.response_time(),
            saving
        );
    }
    println!();
    println!(
        "Function shipping folds retrieval, ∀rows verification, and the flag\n\
         updates into one round trip; classic check-out pays at least two\n\
         extra UPDATE communications plus the retrieval."
    );
}
