#![allow(clippy::unwrap_used)]

//! Regenerate Figure 4: response-time bars for δ=9, β=3, γ=0.6 at
//! T_Lat=150ms, dtr=512 kbit/s, across the three system variants.

fn main() {
    let args: Vec<String> = std::env::args().collect();
    println!("{}", pdm_model::figure4());
    if args.iter().any(|a| a == "--simulate") {
        println!();
        println!(
            "{}",
            pdm_bench::simulate_figure(
                "Figure 4 simulated: δ=9, β=3, γ=0.6, T_Lat=150ms, dtr=512kBit/s",
                9,
                3,
                0.6,
                512,
                pdm_net::LinkProfile::wan_512(),
            )
        );
    }
}
