#![allow(clippy::unwrap_used)]

//! Multi-client throughput bench over ONE shared server.
//!
//! N client threads each run a mixed PDM workload — multi-level expands,
//! Query actions, function-shipping check-outs with check-in, and the
//! occasional write (an epoch bump) — against a single `Arc<SharedServer>`.
//! Reported: sustained QPS, cross-session result-cache hit rate, and
//! p50/p99 per-operation latency (server-side wall clock, microseconds).
//!
//! The schedule is seeded per thread; the interleaving is whatever the
//! machine produces, so latency numbers are hardware-dependent — the
//! structural numbers (ops, grants+refusals, hit rate > 0) are not.
//!
//! Output: a summary table on stdout plus `BENCH_concurrent.json`.

use std::sync::{Arc, Barrier};
use std::time::Instant;

use pdm_bench::visibility_rules;
use pdm_core::{
    chrome_trace_json, AttributionTable, PdmServer, Session, SessionConfig, Strategy, TailSampler,
    TraceTree,
};
use pdm_net::LinkProfile;
use pdm_prng::Prng;
use pdm_workload::{build_database, TreeSpec};

const SEED: u64 = 0xBE7C4;

#[derive(Default)]
struct WorkerOut {
    latencies_us: Vec<u64>,
    expands: usize,
    queries: usize,
    grants: usize,
    refusals: usize,
    writes: usize,
}

/// `PDM_PROFILE=1` turns per-session span recording on (the CI obs job
/// runs the bench both ways; results must not change).
fn profiling() -> bool {
    std::env::var("PDM_PROFILE")
        .map(|v| v == "1")
        .unwrap_or(false)
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

/// Traced side-pass (DESIGN.md §15): a single seeded session replays each
/// action class with cross-site tracing ON, feeding the per-class
/// attribution table and the tail-exemplar sampler. It runs AFTER the
/// measured phase on separate sessions — tracing changes the modeled
/// request volume, so the headline numbers above must never see it.
fn traced_side_pass(
    server: &PdmServer,
    roots: &[i64],
) -> (AttributionTable, TailSampler, Option<TraceTree>) {
    let mut session = Session::attach(
        server.clone(),
        SessionConfig::new("tracer", Strategy::Recursive, LinkProfile::wan_256()),
        visibility_rules(),
    );
    session.enable_tracing(SEED);
    let mut attr = AttributionTable::new();
    let mut trees: Vec<(&'static str, TraceTree)> = Vec::new();
    let grab = |class: &'static str, s: &Session, trees: &mut Vec<(&'static str, TraceTree)>| {
        let tree = s.last_trace().expect("traced action left no tree").clone();
        tree.validate().expect("bench trace failed validation");
        trees.push((class, tree));
    };
    for (i, root) in roots.iter().cycle().take(12).enumerate() {
        session.multi_level_expand(*root).unwrap();
        grab("expand", &session, &mut trees);
        session.query_all(roots[0]).unwrap();
        grab("query", &session, &mut trees);
        if i % 3 == 0 {
            let co = session.check_out_function_shipping(*root).unwrap();
            grab("checkout", &session, &mut trees);
            if let Some(tree) = co.tree {
                session.check_in(&tree).unwrap();
                grab("checkin", &session, &mut trees);
            }
        }
    }
    // Tail threshold: the p90 of the traced pass's own virtual latencies,
    // so only genuinely slow actions are retained in full.
    let mut totals: Vec<f64> = trees.iter().map(|(_, t)| t.total_v).collect();
    totals.sort_by(|a, b| a.total_cmp(b));
    let threshold = totals[(totals.len() - 1) * 9 / 10];
    let mut sampler = TailSampler::new(threshold, 4);
    for (class, tree) in &trees {
        attr.add(class, tree);
        sampler.offer(tree.clone());
    }
    let slowest = sampler.slowest().cloned();
    (attr, sampler, slowest)
}

fn main() {
    let mut args = std::env::args().skip(1);
    let threads: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(8);
    let ops_per_thread: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(300);

    let spec = TreeSpec::new(3, 4, 0.8).with_node_size(256);
    let (db, _) = build_database(&spec).unwrap();
    let server = PdmServer::new(db);
    let roots: Vec<i64> = {
        let rs = server.query("SELECT obid FROM assy ORDER BY obid").unwrap();
        rs.rows
            .iter()
            .filter_map(|r| match r.get(0) {
                pdm_sql::Value::Int(i) => Some(*i),
                _ => None,
            })
            .collect()
    };

    let barrier = Arc::new(Barrier::new(threads + 1));
    let mut handles = Vec::new();
    for worker in 0..threads {
        let server = server.clone();
        let roots = roots.clone();
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            let mut prng = Prng::seed_from_u64(SEED ^ (worker as u64).wrapping_mul(0x9E37));
            // Most clients run the tuned recursive strategy; every fourth
            // runs the late-eval baseline so the γ split (rows kept vs
            // filtered after transfer) shows up in the metrics snapshot.
            let strategy = if worker % 4 == 3 {
                Strategy::LateEval
            } else {
                Strategy::Recursive
            };
            let mut session = Session::attach(
                server.clone(),
                SessionConfig::new(format!("user{worker}"), strategy, LinkProfile::wan_256()),
                visibility_rules(),
            );
            if profiling() {
                session.enable_profiling();
            }
            let mut out = WorkerOut::default();
            barrier.wait();
            for _ in 0..ops_per_thread {
                let root = roots[(prng.next_u64() % roots.len() as u64) as usize];
                let kind = prng.next_u64() % 100;
                let started = Instant::now();
                match kind {
                    // Expands dominate, as in the paper's workload — and
                    // repeated expands are what the result cache serves.
                    0..=49 => {
                        session.multi_level_expand(root).unwrap();
                        out.expands += 1;
                    }
                    50..=74 => {
                        session.query_all(roots[0]).unwrap();
                        out.queries += 1;
                    }
                    75..=94 => {
                        let co = session.check_out_function_shipping(root).unwrap();
                        match co.tree {
                            Some(tree) => {
                                out.grants += 1;
                                session.check_in(&tree).unwrap();
                            }
                            None => out.refusals += 1,
                        }
                    }
                    // Occasional write: bumps the storage version, forcing
                    // the cache through a fresh epoch.
                    _ => {
                        server
                            .execute(&format!(
                                "UPDATE comp SET checkedout = FALSE WHERE obid = {root}"
                            ))
                            .unwrap();
                        out.writes += 1;
                    }
                }
                out.latencies_us.push(started.elapsed().as_micros() as u64);
            }
            out
        }));
    }

    barrier.wait();
    let wall_start = Instant::now();
    let outs: Vec<WorkerOut> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let wall = wall_start.elapsed().as_secs_f64();

    let mut latencies: Vec<u64> = outs.iter().flat_map(|o| o.latencies_us.clone()).collect();
    latencies.sort_unstable();
    let total_ops = latencies.len();
    let qps = total_ops as f64 / wall;
    let p50 = percentile(&latencies, 0.50);
    let p99 = percentile(&latencies, 0.99);
    // Cache accounting now lives in the shared metrics registry (one
    // source of truth); the hit rate is computed from its counters.
    let metrics = server.metrics().snapshot();
    let cache_hits = metrics.counter("cache.hits");
    let cache_misses = metrics.counter("cache.misses");
    let hit_rate = if cache_hits + cache_misses == 0 {
        0.0
    } else {
        cache_hits as f64 / (cache_hits + cache_misses) as f64
    };
    let grants: usize = outs.iter().map(|o| o.grants).sum();
    let refusals: usize = outs.iter().map(|o| o.refusals).sum();
    let expands: usize = outs.iter().map(|o| o.expands).sum();
    let queries: usize = outs.iter().map(|o| o.queries).sum();
    let writes: usize = outs.iter().map(|o| o.writes).sum();

    println!(
        "multi-client bench: {threads} threads x {ops_per_thread} ops, δ=3 β=4 γ=0.8, node 256B"
    );
    println!();
    println!("{:<26}{:>12}", "total ops", total_ops);
    println!("{:<26}{:>12.0}", "throughput (ops/s)", qps);
    println!("{:<26}{:>12}", "p50 latency (us)", p50);
    println!("{:<26}{:>12}", "p99 latency (us)", p99);
    println!("{:<26}{:>12.3}", "cache hit rate", hit_rate);
    println!(
        "{:<26}{:>12}",
        "cache hits/misses",
        format!("{cache_hits}/{cache_misses}")
    );
    println!(
        "{:<26}{:>12}",
        "cache invalidations",
        metrics.counter("cache.invalidations")
    );
    println!(
        "{:<26}{:>12}",
        "profiling",
        if profiling() { "on" } else { "off" }
    );
    println!("{:<26}{:>12}", "checkouts granted", grants);
    println!("{:<26}{:>12}", "checkouts refused", refusals);
    println!("{:<26}{:>12}", "epoch bumps (writes)", writes);
    println!(
        "{:<26}{:>12}",
        "final storage version",
        server.shared().version()
    );

    let (attr, sampler, exemplar) = traced_side_pass(&server, &roots);
    let exemplar = exemplar.expect("traced side-pass retained no exemplar");
    std::fs::write(
        "BENCH_trace_exemplar.json",
        chrome_trace_json(std::slice::from_ref(&exemplar)),
    )
    .unwrap();
    println!(
        "tail exemplar: trace_id={} action={} total_v={:.6}s spans={} sites={:?}",
        exemplar.trace_id,
        exemplar.action,
        exemplar.total_v,
        exemplar.spans.len(),
        exemplar.sites()
    );

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"concurrent\",\n",
            "  \"threads\": {},\n",
            "  \"ops_per_thread\": {},\n",
            "  \"profiling\": {},\n",
            "  \"total_ops\": {},\n",
            "  \"wall_seconds\": {:.4},\n",
            "  \"qps\": {:.1},\n",
            "  \"latency_us\": {{ \"p50\": {}, \"p99\": {} }},\n",
            "  \"cache\": {{ \"hits\": {}, \"misses\": {}, \"hit_rate\": {:.4} }},\n",
            "  \"ops\": {{ \"expand\": {}, \"query\": {}, \"checkout_granted\": {}, ",
            "\"checkout_refused\": {}, \"writes\": {} }},\n",
            "  \"final_version\": {},\n",
            "  \"attribution\": {},\n",
            "  \"tail_exemplar\": {{ \"file\": \"BENCH_trace_exemplar.json\", ",
            "\"trace_id\": {}, \"action\": \"{}\", \"outcome\": \"{}\", \"total_v_s\": {:.9}, ",
            "\"spans\": {}, \"offered\": {}, \"retained\": {} }},\n",
            "  \"metrics\": {}\n",
            "}}\n"
        ),
        threads,
        ops_per_thread,
        profiling(),
        total_ops,
        wall,
        qps,
        p50,
        p99,
        cache_hits,
        cache_misses,
        hit_rate,
        expands,
        queries,
        grants,
        refusals,
        writes,
        server.shared().version(),
        attr.to_json(2),
        exemplar.trace_id,
        exemplar.action,
        exemplar.outcome,
        exemplar.total_v,
        exemplar.spans.len(),
        sampler.offered,
        sampler.retained,
        metrics.to_json(2).trim_end(),
    );
    std::fs::write("BENCH_concurrent.json", json).unwrap();
    println!();
    println!("wrote BENCH_concurrent.json and BENCH_trace_exemplar.json");

    assert!(
        cache_hits > 0,
        "acceptance: the cross-session cache must serve hits under this workload"
    );
}
