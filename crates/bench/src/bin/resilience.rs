#![allow(clippy::unwrap_used)]

//! Resilience sweep: packet-loss rate × client strategy → response time,
//! retries, degradation, success rate.
//!
//! The paper tunes strategies for a *reliable* WAN; this binary asks how
//! each strategy holds up when the link is lossy. The interesting tension:
//! the recursive strategy concentrates the whole action in ONE exchange —
//! cheapest when it works, but a single timeout loses everything — while
//! navigational access spreads the action over many small exchanges that
//! ride out loss with cheap per-query retries. The degradation controller
//! (recursive → level-batched) is the middle path, and this sweep shows
//! when it engages.
//!
//! All numbers are deterministic: same seed, same faults, same output.

use pdm_bench::visibility_rules;
use pdm_core::{Session, SessionConfig, Strategy};
use pdm_net::{FaultPlan, LinkProfile};
use pdm_workload::{build_database, TreeSpec};

const TRIALS: usize = 20;

fn fresh_session(strategy: Strategy) -> Session {
    let spec = TreeSpec::new(3, 5, 0.6).with_node_size(512);
    let (db, _) = build_database(&spec).unwrap();
    Session::new(
        db,
        SessionConfig::new("scott", strategy, LinkProfile::wan_256()),
        visibility_rules(),
    )
}

struct Row {
    ok: usize,
    degraded: usize,
    retransmits: usize,
    failed_attempts: usize,
    total_time: f64,
}

fn run(strategy: Strategy, loss: f64, seed: u64) -> Row {
    let mut s = fresh_session(strategy);
    if loss > 0.0 {
        s.set_fault_plan(FaultPlan::lossy(seed, loss).with_server_error_rate(loss / 10.0));
    }
    let mut row = Row {
        ok: 0,
        degraded: 0,
        retransmits: 0,
        failed_attempts: 0,
        total_time: 0.0,
    };
    for _ in 0..TRIALS {
        match s.multi_level_expand(1) {
            Ok(out) => {
                row.ok += 1;
                if out.degraded {
                    row.degraded += 1;
                }
                row.retransmits += out.stats.retransmits;
                row.failed_attempts += out.stats.failed_attempts;
                row.total_time += out.stats.response_time();
            }
            Err(_) => {
                // the failed action's waiting is still real time the user lost
                row.failed_attempts += s.stats().failed_attempts;
                row.total_time += s.stats().response_time();
            }
        }
    }
    row
}

fn main() {
    println!("resilience sweep: multi-level expand, δ=3 β=5 γ=0.6, wan_256, {TRIALS} trials/cell");
    println!("(fault plan: symmetric packet loss + loss/10 transient server errors; seed fixed)");
    println!();
    println!(
        "{:<12}{:>8}{:>10}{:>10}{:>10}{:>12}{:>12}",
        "strategy", "loss", "success", "degraded", "retrans", "failed att", "mean T [s]"
    );
    for strategy in [Strategy::LateEval, Strategy::EarlyEval, Strategy::Recursive] {
        for (i, loss) in [0.0, 0.05, 0.1, 0.2, 0.3, 0.4].into_iter().enumerate() {
            let row = run(strategy, loss, 0xC0FFEE + i as u64);
            let mean_t = row.total_time / TRIALS as f64;
            println!(
                "{:<12}{:>8.2}{:>9}%{:>10}{:>10}{:>12}{:>12.2}",
                format!("{strategy:?}"),
                loss,
                100 * row.ok / TRIALS,
                row.degraded,
                row.retransmits,
                row.failed_attempts,
                mean_t
            );
        }
        println!();
    }
    println!(
        "Reading the table: navigational strategies absorb loss as retransmits\n\
         (many small exchanges, each cheap to retry) at their usual latency-\n\
         dominated cost. The recursive strategy's single exchange survives\n\
         pure packet loss through retransmits and stays an order of magnitude\n\
         cheaper — per-packet loss is the failure mode retransmits fix."
    );
    println!();

    // -------------------------------------------------------------------
    // Harsh link: stall-dominated faults (whole attempts time out instead
    // of single packets dropping). This is where attempt-level retries and
    // the degradation controller earn their keep.
    // -------------------------------------------------------------------
    let stall = 0.35;
    println!("harsh link: stall rate {stall}, timeout 10 s, 2 attempts per exchange");
    println!(
        "{:<12}{:>10}{:>10}{:>12}{:>12}",
        "strategy", "success", "degraded", "failed att", "mean T [s]"
    );
    for strategy in [Strategy::LateEval, Strategy::EarlyEval, Strategy::Recursive] {
        let mut s = fresh_session(strategy);
        s.set_fault_plan(
            FaultPlan::none()
                .with_seed(0xBADCAB)
                .with_stall_rate(stall)
                .with_timeout(10.0),
        );
        s.set_retry_policy(pdm_core::RetryPolicy::default_wan().with_max_attempts(2));
        let mut row = Row {
            ok: 0,
            degraded: 0,
            retransmits: 0,
            failed_attempts: 0,
            total_time: 0.0,
        };
        for _ in 0..TRIALS {
            match s.multi_level_expand(1) {
                Ok(out) => {
                    row.ok += 1;
                    if out.degraded {
                        row.degraded += 1;
                    }
                    row.failed_attempts += out.stats.failed_attempts;
                    row.total_time += out.stats.response_time();
                }
                Err(_) => {
                    row.failed_attempts += s.stats().failed_attempts;
                    row.total_time += s.stats().response_time();
                }
            }
        }
        println!(
            "{:<12}{:>9}%{:>10}{:>12}{:>12.2}",
            format!("{strategy:?}"),
            100 * row.ok / TRIALS,
            row.degraded,
            row.failed_attempts,
            row.total_time / TRIALS as f64
        );
    }
    println!();
    println!(
        "When whole attempts stall, an action spanning many exchanges has to\n\
         win every one of them — navigational success collapses. The recursive\n\
         strategy risks only one exchange, and when that fails the controller\n\
         degrades to level-batched expansion (a handful of exchanges), keeping\n\
         availability high; after repeated failures the breaker skips the\n\
         doomed recursive probe entirely."
    );
}
