#![allow(clippy::unwrap_used)]

//! Replication bench: the paper's Table-2 topology question, re-asked for
//! a worldwide deployment — **remote everything** (every action crosses
//! the WAN to the one central server, the paper's Fig. 1) versus **local
//! replica** (reads served by a WAL-shipped replica on the client's LAN,
//! writes forwarded to the primary).
//!
//! Both topologies replay the SAME seeded multi-site op plan, so the
//! per-action p50/p99 virtual seconds are directly comparable, and the
//! fault-free cluster run must leave the primary **byte-identical** to the
//! single-site engine run (replication may not change SQL semantics).
//! Also measured: the replica-lag distribution under continuous shipping
//! and the failover-time distribution over seeded promotion points, each
//! verified against the serial-replay oracle.
//!
//! Any acceptance violation writes `REPLICATION_journal.txt` with the
//! reproducing seed and dies non-zero — the CI replication job uploads
//! that file as an artifact.
//!
//! Usage: `replication [seed] [steps]` (also honors `REPL_SEED`).

use std::collections::BTreeMap;

use pdm_core::{
    chrome_trace_json, replay_prefix, AttributionTable, Cluster, ClusterConfig, PdmServer,
    ProductTree, RoutedSession, RuleTable, Session, SessionConfig, Strategy, TailSampler,
    TraceTree,
};
use pdm_net::{FaultPlan, LinkProfile};
use pdm_prng::splitmix64;
use pdm_sql::persist::database_fingerprint;
use pdm_sql::{Database, Value};
use pdm_workload::{build_database, multisite_plan, SiteOp, SiteStep, TreeSpec};

const SITES: usize = 3;

fn initial_database() -> Database {
    build_database(&TreeSpec::new(3, 3, 1.0).with_node_size(64))
        .unwrap()
        .0
}

fn roots_of(server: &PdmServer) -> Vec<i64> {
    server
        .query("SELECT obid FROM assy ORDER BY obid")
        .unwrap()
        .rows
        .iter()
        .filter_map(|r| match r.get(0) {
            Value::Int(i) => Some(*i),
            _ => None,
        })
        .collect()
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

#[derive(Default)]
struct Latencies(BTreeMap<&'static str, Vec<f64>>);

impl Latencies {
    fn push(&mut self, action: &'static str, seconds: f64) {
        self.0.entry(action).or_default().push(seconds);
    }

    fn summary(&self, action: &str) -> (f64, f64, usize) {
        match self.0.get(action) {
            Some(v) => {
                let mut s = v.clone();
                s.sort_by(|a, b| a.partial_cmp(b).unwrap());
                (percentile(&s, 0.50), percentile(&s, 0.99), s.len())
            }
            None => (0.0, 0.0, 0),
        }
    }

    fn json(&self) -> String {
        let mut parts = Vec::new();
        for action in ["expand", "query", "update", "checkout", "checkin"] {
            let (p50, p99, n) = self.summary(action);
            parts.push(format!(
                "\"{action}\": {{ \"p50_s\": {p50:.6}, \"p99_s\": {p99:.6}, \"n\": {n} }}"
            ));
        }
        format!("{{ {} }}", parts.join(", "))
    }

    fn read_p50(&self) -> f64 {
        let (e50, _, _) = self.summary("expand");
        let (q50, _, _) = self.summary("query");
        if e50 > 0.0 {
            e50
        } else {
            q50
        }
    }
}

fn action_name(op: &SiteOp) -> &'static str {
    match op {
        SiteOp::Expand { .. } => "expand",
        SiteOp::QueryAll { .. } => "query",
        SiteOp::Update { .. } => "update",
        SiteOp::CheckOut { .. } => "checkout",
        SiteOp::CheckIn => "checkin",
    }
}

/// Topology A: every session talks to the one central server over the WAN.
fn run_remote_everything(plan: &[SiteStep]) -> (Latencies, Vec<u8>) {
    let server = PdmServer::new(initial_database());
    let mut sessions: Vec<Session> = (0..SITES)
        .map(|_| {
            Session::attach(
                server.clone(),
                SessionConfig::new("scott", Strategy::Recursive, LinkProfile::wan_512()),
                RuleTable::new(),
            )
        })
        .collect();
    let mut held: Vec<Option<ProductTree>> = vec![None; SITES];
    let mut lat = Latencies::default();
    for step in plan {
        let s = &mut sessions[step.site];
        let ran = match &step.op {
            SiteOp::Expand { root } => {
                s.multi_level_expand(*root).unwrap();
                true
            }
            SiteOp::QueryAll { root } => {
                s.query_all(*root).unwrap();
                true
            }
            SiteOp::Update { root, payload } => {
                s.execute_update(&format!(
                    "UPDATE assy SET payload = '{payload}' WHERE obid = {root}"
                ))
                .unwrap();
                true
            }
            SiteOp::CheckOut { root } => {
                let out = s.check_out_function_shipping(*root).unwrap();
                if let Some(tree) = out.tree {
                    held[step.site] = Some(tree);
                }
                true
            }
            SiteOp::CheckIn => match held[step.site].take() {
                Some(tree) => {
                    s.check_in(&tree).unwrap();
                    true
                }
                None => false,
            },
        };
        if ran {
            lat.push(action_name(&step.op), sessions[step.site].elapsed());
        }
    }
    (lat, database_fingerprint(server.database()))
}

/// Topology B: reads at the site's replica, writes forwarded to the
/// primary. Returns latencies, per-step lag samples, the converged
/// primary fingerprint, and the cluster metrics JSON.
fn run_local_replica(
    plan: &[SiteStep],
    faults: FaultPlan,
) -> (Latencies, Vec<u64>, Vec<u8>, String) {
    let cfg = ClusterConfig::default()
        .with_replicas(SITES)
        .with_ship_faults(faults)
        .with_max_pump_rounds(512);
    let mut cluster = Cluster::new(initial_database(), cfg).unwrap();
    let sites = cluster.replica_sites();
    let mut sessions: Vec<RoutedSession> = sites
        .iter()
        .map(|s| {
            RoutedSession::connect(
                &cluster,
                *s,
                SessionConfig::new("scott", Strategy::Recursive, LinkProfile::wan_512()),
                RuleTable::new(),
            )
        })
        .collect();
    let mut held: Vec<Option<ProductTree>> = vec![None; sessions.len()];
    let mut lat = Latencies::default();
    let mut lag_samples = Vec::new();
    for step in plan {
        let i = step.site;
        let ran = match &step.op {
            SiteOp::Expand { root } => {
                sessions[i].multi_level_expand(&mut cluster, *root).unwrap();
                true
            }
            SiteOp::QueryAll { root } => {
                sessions[i].query_all(&mut cluster, *root).unwrap();
                true
            }
            SiteOp::Update { root, payload } => {
                sessions[i]
                    .execute_dml(
                        &mut cluster,
                        &format!("UPDATE assy SET payload = '{payload}' WHERE obid = {root}"),
                    )
                    .unwrap();
                true
            }
            SiteOp::CheckOut { root } => {
                let (out, _) = sessions[i].check_out(&mut cluster, *root).unwrap();
                if let Some(tree) = out.tree {
                    held[i] = Some(tree);
                }
                true
            }
            SiteOp::CheckIn => match held[i].take() {
                Some(tree) => {
                    sessions[i].check_in(&mut cluster, &tree).unwrap();
                    true
                }
                None => false,
            },
        };
        if ran {
            let elapsed = if step.op.is_write() {
                sessions[i].write_session().elapsed()
            } else {
                sessions[i].read_session().elapsed()
            };
            lat.push(action_name(&step.op), elapsed);
        }
        for site in &sites {
            lag_samples.push(cluster.lag(*site));
        }
    }
    // Converge every replica so the fingerprints can be compared.
    for _ in 0..4096 {
        if cluster.replica_sites().iter().all(|s| cluster.lag(*s) == 0) {
            break;
        }
        cluster.pump().unwrap();
    }
    for s in cluster.replica_sites() {
        assert_eq!(cluster.lag(s), 0, "site {s} never converged");
    }
    let metrics = cluster.metrics().snapshot().to_json(2);
    (lat, lag_samples, cluster.primary_fingerprint(), metrics)
}

/// Traced side-pass (DESIGN.md §15): replay a short prefix of the SAME
/// plan through both topologies with cross-site tracing ON, so the
/// attribution tables answer the paper's question per action class —
/// remote everything vs local replica, where did the time go. Tail
/// exemplars are sampled from the 4-site (primary + 3 replicas) cluster
/// pass, whose trees span client, primary, and replica sites.
fn traced_side_pass(
    plan: &[SiteStep],
    seed: u64,
) -> (AttributionTable, AttributionTable, TailSampler, TraceTree) {
    let prefix: Vec<&SiteStep> = plan.iter().take(40).collect();

    // Topology A, traced: one WAN session against the central server.
    let server = PdmServer::new(initial_database());
    let mut session = Session::attach(
        server.clone(),
        SessionConfig::new("scott", Strategy::Recursive, LinkProfile::wan_512()),
        RuleTable::new(),
    );
    session.enable_tracing(seed);
    let mut remote_attr = AttributionTable::new();
    let mut held: Option<ProductTree> = None;
    for step in &prefix {
        let ran = match &step.op {
            SiteOp::Expand { root } => session.multi_level_expand(*root).map(|_| true),
            SiteOp::QueryAll { root } => session.query_all(*root).map(|_| true),
            SiteOp::Update { root, payload } => session
                .execute_update(&format!(
                    "UPDATE assy SET payload = '{payload}' WHERE obid = {root}"
                ))
                .map(|_| true),
            SiteOp::CheckOut { root } => session.check_out_function_shipping(*root).map(|out| {
                if let Some(tree) = out.tree {
                    held = Some(tree);
                }
                true
            }),
            SiteOp::CheckIn => match held.take() {
                Some(tree) => session.check_in(&tree).map(|_| true),
                None => Ok(false),
            },
        };
        if ran.unwrap() {
            let tree = session.last_trace().expect("untraced remote action");
            tree.validate().expect("remote trace failed validation");
            remote_attr.add(action_name(&step.op), tree);
        }
    }

    // Topology B, traced: one routed session per replica site of a 4-site
    // cluster (primary + SITES replicas), reads local, writes forwarded.
    let cfg = ClusterConfig::default()
        .with_replicas(SITES)
        .with_max_pump_rounds(512);
    let mut cluster = Cluster::new(initial_database(), cfg).unwrap();
    let sites = cluster.replica_sites();
    let mut sessions: Vec<RoutedSession> = sites
        .iter()
        .map(|s| {
            RoutedSession::connect(
                &cluster,
                *s,
                SessionConfig::new("scott", Strategy::Recursive, LinkProfile::wan_512()),
                RuleTable::new(),
            )
        })
        .collect();
    for s in &mut sessions {
        s.enable_tracing(seed);
    }
    let mut local_attr = AttributionTable::new();
    let mut trees: Vec<TraceTree> = Vec::new();
    let mut held: Vec<Option<ProductTree>> = vec![None; sessions.len()];
    for step in &prefix {
        let i = step.site;
        let ran = match &step.op {
            SiteOp::Expand { root } => sessions[i]
                .multi_level_expand(&mut cluster, *root)
                .map(|_| true),
            SiteOp::QueryAll { root } => sessions[i].query_all(&mut cluster, *root).map(|_| true),
            SiteOp::Update { root, payload } => sessions[i]
                .execute_dml(
                    &mut cluster,
                    &format!("UPDATE assy SET payload = '{payload}' WHERE obid = {root}"),
                )
                .map(|_| true),
            SiteOp::CheckOut { root } => {
                sessions[i].check_out(&mut cluster, *root).map(|(out, _)| {
                    if let Some(tree) = out.tree {
                        held[i] = Some(tree);
                    }
                    true
                })
            }
            SiteOp::CheckIn => match held[i].take() {
                Some(tree) => sessions[i].check_in(&mut cluster, &tree).map(|_| true),
                None => Ok(false),
            },
        };
        if ran.unwrap() {
            let tree = sessions[i].last_trace().expect("untraced routed action");
            tree.validate().expect("routed trace failed validation");
            local_attr.add(action_name(&step.op), tree);
            trees.push(tree.clone());
        }
    }

    // Tail threshold at the traced pass's own p90; failure outcomes (none
    // expected fault-free) would be retained regardless.
    let mut totals: Vec<f64> = trees.iter().map(|t| t.total_v).collect();
    totals.sort_by(|a, b| a.total_cmp(b));
    let threshold = totals[(totals.len() - 1) * 9 / 10];
    let mut sampler = TailSampler::new(threshold, 4);
    for t in &trees {
        sampler.offer(t.clone());
    }
    // Prefer an exemplar that covers all three tiers from one trace_id.
    let exemplar = sampler
        .exemplars()
        .iter()
        .find(|t| {
            let s = t.sites();
            s.iter().any(|x| x.starts_with("client"))
                && s.contains(&"primary")
                && s.iter().any(|x| x.starts_with("replica"))
        })
        .or_else(|| sampler.slowest())
        .expect("traced side-pass retained no exemplar")
        .clone();
    (remote_attr, local_attr, sampler, exemplar)
}

/// Seeded failover points: run a short write workload under lossy ship
/// links, force promotion, verify the serial-replay oracle, and return the
/// promotion durations.
fn failover_distribution(seed: u64, points: usize) -> Result<Vec<f64>, String> {
    let mut durations = Vec::new();
    for k in 0..points {
        let faults = FaultPlan::lossy(splitmix64(seed ^ k as u64), 0.15).with_stall_rate(0.05);
        let cfg = ClusterConfig::default()
            .with_replicas(SITES)
            .with_ship_faults(faults)
            .with_max_pump_rounds(512);
        let mut cluster = Cluster::new(initial_database(), cfg).unwrap();
        let roots = roots_of(cluster.primary());
        let sites = cluster.replica_sites();
        let mut sessions: Vec<RoutedSession> = sites
            .iter()
            .map(|s| {
                RoutedSession::connect(
                    &cluster,
                    *s,
                    SessionConfig::new("scott", Strategy::Recursive, LinkProfile::wan_512()),
                    RuleTable::new(),
                )
            })
            .collect();
        let mut held: Vec<Option<ProductTree>> = vec![None; sessions.len()];
        let plan = multisite_plan(splitmix64(seed).wrapping_add(k as u64), SITES, 10, &roots);
        for step in &plan {
            match &step.op {
                SiteOp::Update { root, payload } => {
                    sessions[step.site]
                        .execute_dml(
                            &mut cluster,
                            &format!("UPDATE assy SET payload = '{payload}' WHERE obid = {root}"),
                        )
                        .unwrap();
                }
                SiteOp::CheckOut { root } => {
                    let (out, _) = sessions[step.site].check_out(&mut cluster, *root).unwrap();
                    if let Some(tree) = out.tree {
                        held[step.site] = Some(tree);
                    }
                }
                SiteOp::CheckIn => {
                    if let Some(tree) = held[step.site].take() {
                        sessions[step.site].check_in(&mut cluster, &tree).unwrap();
                    }
                }
                _ => {}
            }
        }
        cluster.promote().map_err(|e| format!("point {k}: {e}"))?;
        let report = &cluster.failovers()[0];
        let oracle = replay_prefix(&report.epoch_base, &report.prefix)
            .map_err(|e| format!("point {k}: oracle replay failed: {e}"))?;
        if oracle != report.promoted_fingerprint {
            return Err(format!(
                "point {k}: promoted site {} at seq {} diverged from serial replay",
                report.promoted_site, report.promoted_seq
            ));
        }
        durations.push(report.duration);
    }
    Ok(durations)
}

fn die(journal: String) -> ! {
    std::fs::write("REPLICATION_journal.txt", &journal).unwrap();
    eprintln!("{journal}");
    std::process::exit(1);
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seed: u64 = args
        .get(1)
        .cloned()
        .or_else(|| std::env::var("REPL_SEED").ok())
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xC0FFEE);
    let steps: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(240);

    let probe = PdmServer::new(initial_database());
    let roots = roots_of(&probe);
    drop(probe);
    let plan = multisite_plan(seed, SITES, steps, &roots);

    let (remote, remote_fp) = run_remote_everything(&plan);
    let (local, _, local_fp, metrics_json) = run_local_replica(&plan, FaultPlan::none());

    // Acceptance: a fault-free replicated run is semantically invisible —
    // the primary ends byte-identical to the single-site engine.
    if remote_fp != local_fp {
        die(format!(
            "REPLICATION FAILURE seed={seed} steps={steps}\n\
             fault-free cluster primary diverged from single-site engine\n"
        ));
    }

    // A lossy-link pass for the lag distribution (fault-free shipping
    // catches every replica up at ack time, so its lag is trivially 0).
    // Convergence still lands on the same bytes: lost acks leave effects
    // applied and re-delivery is idempotent.
    let lossy = FaultPlan::lossy(splitmix64(seed ^ 0x1A6), 0.3).with_stall_rate(0.1);
    let (_, mut lag_samples, lossy_fp, _) = run_local_replica(&plan, lossy);
    if lossy_fp != remote_fp {
        die(format!(
            "REPLICATION FAILURE seed={seed} steps={steps}\n\
             lossy-link cluster converged to different bytes than single-site engine\n"
        ));
    }

    let failover_s = match failover_distribution(seed, 16) {
        Ok(d) => d,
        Err(detail) => die(format!(
            "REPLICATION FAILURE seed={seed} steps={steps}\nfailover sweep: {detail}\n"
        )),
    };

    // Acceptance: local-replica reads must beat remote-everything reads —
    // the whole point of shipping the WAL across the world.
    if local.read_p50() >= remote.read_p50() {
        die(format!(
            "REPLICATION FAILURE seed={seed} steps={steps}\n\
             local-replica read p50 {:.6}s not below remote-everything {:.6}s\n",
            local.read_p50(),
            remote.read_p50()
        ));
    }

    lag_samples.sort_unstable();
    let lag_f: Vec<f64> = lag_samples.iter().map(|l| *l as f64).collect();
    let mut fo = failover_s.clone();
    fo.sort_by(|a, b| a.partial_cmp(b).unwrap());

    println!("replication bench: seed={seed}, {steps} ops over {SITES} sites, δ=3 β=3");
    println!();
    println!(
        "{:<12}{:>18}{:>18}",
        "action", "remote p50 (s)", "replica p50 (s)"
    );
    for action in ["expand", "query", "update", "checkout", "checkin"] {
        let (r50, _, rn) = remote.summary(action);
        let (l50, _, _) = local.summary(action);
        if rn > 0 {
            println!("{action:<12}{r50:>18.4}{l50:>18.4}");
        }
    }
    println!();
    println!(
        "replica lag   p50 {} seqs, p99 {} seqs, max {} seqs",
        percentile(&lag_f, 0.5) as u64,
        percentile(&lag_f, 0.99) as u64,
        lag_samples.last().copied().unwrap_or(0)
    );
    println!(
        "failover      p50 {:.4}s, p99 {:.4}s over {} points (oracle-verified)",
        percentile(&fo, 0.5),
        percentile(&fo, 0.99),
        fo.len()
    );
    println!("fault-free byte-identity: ok");

    let (remote_attr, local_attr, sampler, exemplar) = traced_side_pass(&plan, seed);
    std::fs::write(
        "BENCH_replication_exemplar.json",
        chrome_trace_json(std::slice::from_ref(&exemplar)),
    )
    .unwrap();
    println!(
        "tail exemplar: trace_id={} action={} total_v={:.6}s spans={} sites={:?}",
        exemplar.trace_id,
        exemplar.action,
        exemplar.total_v,
        exemplar.spans.len(),
        exemplar.sites()
    );

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"replication\",\n",
            "  \"seed\": {},\n",
            "  \"steps\": {},\n",
            "  \"sites\": {},\n",
            "  \"replicas\": {},\n",
            "  \"remote_everything\": {},\n",
            "  \"local_replica\": {},\n",
            "  \"replica_lag_seqs\": {{ \"p50\": {}, \"p99\": {}, \"max\": {}, \"n\": {} }},\n",
            "  \"failover_s\": {{ \"p50\": {:.6}, \"p99\": {:.6}, \"n\": {} }},\n",
            "  \"fault_free_byte_identical\": true,\n",
            "  \"attribution\": {{\n",
            "    \"remote_everything\": {},\n",
            "    \"local_replica\": {}\n",
            "  }},\n",
            "  \"tail_exemplar\": {{ \"file\": \"BENCH_replication_exemplar.json\", ",
            "\"trace_id\": {}, \"action\": \"{}\", \"outcome\": \"{}\", \"total_v_s\": {:.9}, ",
            "\"spans\": {}, \"sites\": [{}], \"offered\": {}, \"retained\": {} }},\n",
            "  \"metrics\": {}\n",
            "}}\n"
        ),
        seed,
        steps,
        SITES,
        SITES,
        remote.json(),
        local.json(),
        percentile(&lag_f, 0.5) as u64,
        percentile(&lag_f, 0.99) as u64,
        lag_samples.last().copied().unwrap_or(0),
        lag_samples.len(),
        percentile(&fo, 0.5),
        percentile(&fo, 0.99),
        fo.len(),
        remote_attr.to_json(4),
        local_attr.to_json(4),
        exemplar.trace_id,
        exemplar.action,
        exemplar.outcome,
        exemplar.total_v,
        exemplar.spans.len(),
        exemplar
            .sites()
            .iter()
            .map(|s| format!("\"{s}\""))
            .collect::<Vec<_>>()
            .join(", "),
        sampler.offered,
        sampler.retained,
        metrics_json.trim_end(),
    );
    std::fs::write("BENCH_replication.json", json).unwrap();
    println!();
    println!("wrote BENCH_replication.json and BENCH_replication_exemplar.json");
}
