#![allow(clippy::unwrap_used)]

//! Ablation: the §5.3.1 optimizer assumption. The ∀rows translation places
//! an uncorrelated `NOT EXISTS (SELECT * FROM rtbl ...)` in the outer WHERE
//! clause; the paper notes that "an intelligent query optimizer will
//! recognize that the inner clause needs to be evaluated only once". This
//! binary measures what happens at the server when it doesn't.

use std::time::Instant;

use pdm_workload::{build_database, TreeSpec};

fn forall_sql() -> String {
    "WITH RECURSIVE rtbl (type, obid, name, dec) AS \
     (SELECT type, obid, name, dec FROM assy WHERE assy.obid = 1 \
      UNION SELECT assy.type, assy.obid, assy.name, assy.dec \
      FROM rtbl JOIN link ON rtbl.obid = link.left JOIN assy ON link.right = assy.obid \
      UNION SELECT comp.type, comp.obid, comp.name, '' \
      FROM rtbl JOIN link ON rtbl.obid = link.left JOIN comp ON link.right = comp.obid) \
     SELECT type, obid FROM rtbl \
     WHERE NOT EXISTS (SELECT * FROM rtbl WHERE type = 'assy' AND NOT dec = '+')"
        .to_string()
}

fn main() {
    println!("∀rows uncorrelated-subquery ablation (server-side execution)");
    println!(
        "{:<12}{:>10}{:>14}{:>14}{:>12}{:>12}",
        "tree", "rows", "evals(on)", "evals(off)", "t_on(ms)", "t_off(ms)"
    );
    for (depth, branching) in [(3u32, 3u32), (4, 3), (5, 3), (4, 5)] {
        let spec = TreeSpec::new(depth, branching, 1.0).with_node_size(128);
        let sql = forall_sql();

        let (db_on, _) = build_database(&spec).unwrap();
        let start = Instant::now();
        let (rs_on, stats_on) = db_on.query_with_stats(&sql).unwrap();
        let t_on = start.elapsed().as_secs_f64() * 1e3;

        let (mut db_off, _) = build_database(&spec).unwrap();
        db_off.config.subquery_cache = false;
        let start = Instant::now();
        let (rs_off, stats_off) = db_off.query_with_stats(&sql).unwrap();
        let t_off = start.elapsed().as_secs_f64() * 1e3;

        assert_eq!(rs_on.len(), rs_off.len(), "results must agree");
        println!(
            "{:<12}{:>10}{:>14}{:>14}{:>12.2}{:>12.2}",
            format!("δ{depth}β{branching}"),
            rs_on.len(),
            stats_on.subquery_evals,
            stats_off.subquery_evals,
            t_on,
            t_off
        );
    }
    println!();
    println!(
        "With the cache the NOT EXISTS body runs once per query; without it,\n\
         once per candidate row — the blow-up the paper's remark wards off."
    );
}
