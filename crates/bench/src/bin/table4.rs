#![allow(clippy::unwrap_used)]

//! Regenerate Table 4: multi-level expands with recursive queries
//! (Approach 2), including savings against late evaluation.

use pdm_bench::{PaperSim, SimAction};
use pdm_core::Strategy;

fn main() {
    println!("{}", pdm_model::table4());
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--simulate") {
        let grid = if args.iter().any(|a| a == "--paper") {
            PaperSim::paper()
        } else {
            PaperSim::small()
        };
        println!();
        println!(
            "{}",
            grid.render(Strategy::Recursive, &[SimAction::MultiLevelExpand], true)
        );
    }
}
