#![allow(clippy::unwrap_used)]

//! Regenerate Table 3: response times with early rule evaluation
//! (Approach 1), including savings against late evaluation.

use pdm_bench::{PaperSim, SimAction};
use pdm_core::Strategy;

fn main() {
    println!("{}", pdm_model::table3());
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--simulate") {
        let grid = if args.iter().any(|a| a == "--paper") {
            PaperSim::paper()
        } else {
            PaperSim::small()
        };
        println!();
        println!(
            "{}",
            grid.render(Strategy::EarlyEval, &SimAction::ALL, true)
        );
    }
}
