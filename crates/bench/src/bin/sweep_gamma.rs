#![allow(clippy::unwrap_used)]

//! Sweep the visibility probability γ: how rule selectivity shifts the
//! balance between the three strategies (analytic, δ=7, β=5, 256 kbit/s).
//!
//! Low γ (restrictive rules) makes early evaluation shine on Query actions
//! and shrinks the recursive result; γ→1 (everything visible) leaves only
//! the round-trip reduction as a win.

use pdm_model::response::response;
use pdm_model::{Action, KaryTree, Strategy};
use pdm_net::LinkProfile;

fn main() {
    let link = LinkProfile::wan_256();
    println!("γ sweep, δ=7, β=5, node=512B, dtr=256 kbit/s, T_Lat=150ms (analytic)");
    println!(
        "{:>6}{:>14}{:>14}{:>14}{:>16}{:>16}",
        "γ", "MLE late", "MLE early", "MLE rec", "early saving%", "rec saving%"
    );
    for g10 in 1..=10 {
        let gamma = g10 as f64 / 10.0;
        let tree = KaryTree::new(7, 5, gamma);
        let late = response(
            &tree,
            Action::MultiLevelExpand,
            Strategy::LateEval,
            &link,
            512,
            0,
        );
        let early = response(
            &tree,
            Action::MultiLevelExpand,
            Strategy::EarlyEval,
            &link,
            512,
            0,
        );
        let rec = response(
            &tree,
            Action::MultiLevelExpand,
            Strategy::Recursive,
            &link,
            512,
            0,
        );
        println!(
            "{:>6.1}{:>14.2}{:>14.2}{:>14.2}{:>15.2}%{:>15.2}%",
            gamma,
            late.total(),
            early.total(),
            rec.total(),
            100.0 * (late.total() - early.total()) / late.total(),
            100.0 * (late.total() - rec.total()) / late.total(),
        );
    }
    println!();
    println!("Query action (where early evaluation is the headline win):");
    println!(
        "{:>6}{:>14}{:>14}{:>16}",
        "γ", "Query late", "Query early", "early saving%"
    );
    for g10 in 1..=10 {
        let gamma = g10 as f64 / 10.0;
        let tree = KaryTree::new(7, 5, gamma);
        let late = response(&tree, Action::Query, Strategy::LateEval, &link, 512, 0);
        let early = response(&tree, Action::Query, Strategy::EarlyEval, &link, 512, 0);
        println!(
            "{:>6.1}{:>14.2}{:>14.2}{:>15.2}%",
            gamma,
            late.total(),
            early.total(),
            100.0 * (late.total() - early.total()) / late.total(),
        );
    }
}
