#![allow(clippy::unwrap_used)]

//! Overload robustness bench: admission control under an open-loop load
//! sweep, plus the seeded retry-storm (metastability) scenario.
//!
//! A worldwide client population does not slow down because the central
//! PDM server is busy — arrivals are open-loop (Poisson, `pdm_workload::
//! OpenLoop`), so offered load λ can exceed capacity. The server installs
//! an `OverloadGate` (token bucket at `CAPACITY` ops/s with priority
//! headroom); every admitted action executes for real against the shared
//! server, while its *latency* is modeled in virtual time against a
//! deterministic single-server queue (service time `1/SERVICE_RATE`).
//! The whole simulation is single-threaded and seed-deterministic.
//!
//! Two experiments:
//!
//! 1. **Sweep** λ ∈ {0.5, 1, 2, 4}×capacity for `HORIZON` virtual
//!    seconds: goodput (completions within the SLO), shed rate, and
//!    admitted-latency percentiles per point. Under saturation the gate
//!    paces admissions at the refill rate, so admitted work stays fast —
//!    goodput flattens at capacity instead of collapsing.
//! 2. **Retry storm**: base load 0.8×capacity with a 3×capacity spike
//!    during t ∈ [10, 20). With client retry budgets (leaky bucket,
//!    retries ≤ ~10% of requests) the system converges right after the
//!    spike; with budgets off, every shed client retries until admitted
//!    and the retry backlog keeps the gate saturated long after the spike
//!    — the metastable failure mode the admission layer exists to bound.
//!
//! Output: a summary on stdout plus `BENCH_overload.json`; on acceptance
//! failure, `OVERLOAD_journal.txt` holds the per-run evidence.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use pdm_bench::visibility_rules;
use pdm_core::{
    OverloadConfig, PdmServer, Priority, RetryBudget, Session, SessionConfig, SessionError,
    Strategy,
};
use pdm_net::LinkProfile;
use pdm_prng::Prng;
use pdm_workload::{build_database, Arrival, ArrivalClass, ClassMix, OpenLoop, TreeSpec};

/// Admission-gate capacity (token refill rate, ops/s of virtual time).
const CAPACITY: f64 = 20.0;
/// Modeled server drain rate; capacity is set below it so admitted work
/// never queues unboundedly (the gate, not the queue, is the limiter).
const SERVICE_RATE: f64 = 25.0;
/// Virtual seconds of arrivals per sweep point.
const HORIZON: f64 = 30.0;
/// An op counts toward goodput when its end-to-end latency (arrival to
/// completion, retries included) stays within this SLO.
const SLO: f64 = 1.0;
/// Clients never retry faster than this, even on a tiny `retry_after`.
const MIN_RETRY: f64 = 0.1;
/// Admitted-latency percentiles are steady-state figures: the first few
/// seconds are excluded because the token bucket starts full, so an
/// over-capacity run begins with a one-time burst-sized queue transient.
const WARMUP: f64 = 5.0;

/// One simulated user action.
struct Op {
    arrival: Arrival,
    attempts: u32,
    done: bool,
    gave_up: bool,
    completed_at: f64,
}

/// Heap entry: next attempt of op `op` at virtual time `t`. Ordered by
/// time, ties broken by insertion sequence for determinism.
struct Ev {
    t: f64,
    seq: u64,
    op: usize,
}

impl PartialEq for Ev {
    fn eq(&self, other: &Self) -> bool {
        self.t.total_cmp(&other.t).is_eq() && self.seq == other.seq
    }
}
impl Eq for Ev {}
impl PartialOrd for Ev {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Ev {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.t.total_cmp(&other.t).then(self.seq.cmp(&other.seq))
    }
}

struct SimOut {
    ops: Vec<Op>,
    sheds: usize,
    retries: usize,
    budget_denials: u64,
    admitted_latencies: Vec<f64>,
    server: PdmServer,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

/// Goodput over an arrival window: ops arriving in `[lo, hi)` that
/// completed within the SLO, per second of window.
fn window_goodput(ops: &[Op], lo: f64, hi: f64) -> f64 {
    let good = ops
        .iter()
        .filter(|o| o.arrival.at >= lo && o.arrival.at < hi)
        .filter(|o| o.done && o.completed_at - o.arrival.at <= SLO)
        .count();
    good as f64 / (hi - lo)
}

fn fresh_server() -> PdmServer {
    let spec = TreeSpec::new(2, 3, 1.0).with_node_size(128);
    let (db, _) = build_database(&spec).unwrap();
    PdmServer::new(db)
}

/// Run one open-loop simulation: real execution through the admission
/// gate, virtual-time latency, client-side retry loop.
fn simulate(arrivals: Vec<Arrival>, budgets_on: bool, seed: u64, cutoff: f64) -> SimOut {
    let server = fresh_server();
    server
        .shared()
        .install_overload_gate(OverloadConfig::per_second(CAPACITY));

    let mk = |user: &str| {
        Session::attach(
            server.clone(),
            SessionConfig::new(user, Strategy::Recursive, LinkProfile::wan_256()),
            visibility_rules(),
        )
    };
    let mut s_inter = mk("interactive");
    let mut s_co = mk("designer");
    let mut s_batch = mk("rollup");
    s_batch.set_priority_class(Priority::Batch);
    if budgets_on {
        for s in [&mut s_inter, &mut s_co, &mut s_batch] {
            s.enable_retry_budget(RetryBudget::default_ratio());
        }
    }

    let roots: Vec<i64> = {
        let rs = server.query("SELECT obid FROM assy ORDER BY obid").unwrap();
        rs.rows
            .iter()
            .filter_map(|r| match r.get(0) {
                pdm_sql::Value::Int(i) => Some(*i),
                _ => None,
            })
            .collect()
    };

    let mut jitter = Prng::seed_from_u64(seed ^ 0x0FF_10AD);
    let mut ops: Vec<Op> = arrivals
        .into_iter()
        .map(|arrival| Op {
            arrival,
            attempts: 0,
            done: false,
            gave_up: false,
            completed_at: 0.0,
        })
        .collect();

    let mut heap: BinaryHeap<Reverse<Ev>> = BinaryHeap::with_capacity(ops.len());
    let mut seq = 0u64;
    for (i, op) in ops.iter().enumerate() {
        heap.push(Reverse(Ev {
            t: op.arrival.at,
            seq,
            op: i,
        }));
        seq += 1;
    }

    let gate = server.shared().overload_gate().unwrap();
    let mut busy_until = 0.0f64;
    let mut sheds = 0usize;
    let mut retries = 0usize;
    let mut admitted_latencies = Vec::new();

    while let Some(Reverse(ev)) = heap.pop() {
        // Hard cutoff: a backlog that has not drained by now never counts
        // as goodput — this bounds the budgets-off storm run instead of
        // simulating its (much longer) tail.
        if ev.t >= cutoff {
            continue;
        }
        gate.advance_to(ev.t);
        let op = &mut ops[ev.op];
        op.attempts += 1;
        let root = roots[op.arrival.root_index % roots.len()];
        let result: Result<(), SessionError> = match op.arrival.class {
            ArrivalClass::Interactive => s_inter.multi_level_expand(root).map(|_| ()),
            ArrivalClass::Batch => s_batch.multi_level_expand(root).map(|_| ()),
            ArrivalClass::Checkout => s_co.check_out_function_shipping(root).map(|out| {
                // Check the subtree straight back in (out-of-band
                // bookkeeping) so the lock table stays empty and every
                // simulated check-out exercises the grant path.
                if let Some(tree) = out.tree {
                    let mut assy = Vec::new();
                    let mut comp = Vec::new();
                    for node in tree.nodes() {
                        match node.type_name.as_str() {
                            "assy" => assy.push(node.obid),
                            "comp" => comp.push(node.obid),
                            _ => {}
                        }
                    }
                    server.checkin_procedure(&assy, &comp).unwrap();
                }
            }),
        };
        match result {
            Ok(()) => {
                let start = busy_until.max(ev.t);
                busy_until = start + 1.0 / SERVICE_RATE;
                op.done = true;
                op.completed_at = busy_until;
                if ev.t >= WARMUP {
                    admitted_latencies.push(busy_until - ev.t);
                }
            }
            Err(SessionError::Overloaded { retry_after }) => {
                sheds += 1;
                let session = match op.arrival.class {
                    ArrivalClass::Interactive => &mut s_inter,
                    ArrivalClass::Checkout => &mut s_co,
                    ArrivalClass::Batch => &mut s_batch,
                };
                let allowed = match session.retry_budget_mut() {
                    Some(budget) => budget.try_spend(),
                    None => true, // budgets off: retry until admitted
                };
                if allowed {
                    retries += 1;
                    let wait = retry_after.max(MIN_RETRY) + jitter.f64() * 0.05;
                    heap.push(Reverse(Ev {
                        t: ev.t + wait,
                        seq,
                        op: ev.op,
                    }));
                    seq += 1;
                } else {
                    op.gave_up = true;
                }
            }
            Err(e) => panic!("unexpected session error under overload bench: {e}"),
        }
    }

    let budget_denials = [&mut s_inter, &mut s_co, &mut s_batch]
        .into_iter()
        .filter_map(|s| s.retry_budget_mut().map(|b| b.denied()))
        .sum();
    // `overload.retry_budget_denials` is a client-population quantity; the
    // bench folds it into the server registry so one snapshot carries the
    // whole experiment.
    server
        .metrics()
        .counter("overload.retry_budget_denials")
        .add(budget_denials);

    SimOut {
        ops,
        sheds,
        retries,
        budget_denials,
        admitted_latencies,
        server,
    }
}

struct SweepPoint {
    multiplier: f64,
    offered: usize,
    completed: usize,
    sheds: usize,
    retries: usize,
    gave_up: usize,
    shed_rate: f64,
    goodput: f64,
    admitted_p50: f64,
    admitted_p99: f64,
}

fn sweep_point(seed: u64, multiplier: f64) -> (SweepPoint, SimOut) {
    let lambda = multiplier * CAPACITY;
    let arrivals = OpenLoop::new(seed ^ multiplier.to_bits(), ClassMix::pdm_default(), 8)
        .arrivals_until(lambda, HORIZON);
    let offered = arrivals.len();
    let out = simulate(arrivals, true, seed, HORIZON + 30.0);
    let mut lat = out.admitted_latencies.clone();
    lat.sort_by(f64::total_cmp);
    let completed = out.ops.iter().filter(|o| o.done).count();
    let gave_up = out.ops.iter().filter(|o| o.gave_up).count();
    let point = SweepPoint {
        multiplier,
        offered,
        completed,
        sheds: out.sheds,
        retries: out.retries,
        gave_up,
        shed_rate: out.sheds as f64 / (out.sheds + completed).max(1) as f64,
        goodput: window_goodput(&out.ops, 0.0, HORIZON),
        admitted_p50: percentile(&lat, 0.50),
        admitted_p99: percentile(&lat, 0.99),
    };
    (point, out)
}

struct StormOut {
    pre_goodput: f64,
    post_goodput: f64,
    sheds: usize,
    retries: usize,
    gave_up: usize,
    budget_denials: u64,
    unresolved: usize,
}

/// Retry-storm scenario. `with_spike = false` is the control: because the
/// spike is produced by *thinning* a peak-rate Poisson stream, control and
/// storm runs draw the identical candidate sequence and accept the
/// identical arrivals outside the spike window — so comparing post-window
/// goodput between them isolates the spike's residue from sampling noise.
fn storm(seed: u64, budgets_on: bool, with_spike: bool) -> StormOut {
    let base = 0.8 * CAPACITY;
    let spike = 3.0 * CAPACITY;
    let horizon = 70.0;
    let arrivals = OpenLoop::new(seed ^ 0x5708, ClassMix::pdm_default(), 8).arrivals_with_spike(
        spike,
        horizon,
        |t| {
            if with_spike && (20.0..30.0).contains(&t) {
                spike
            } else {
                base
            }
        },
    );
    let out = simulate(arrivals, budgets_on, seed, horizon + 20.0);
    StormOut {
        pre_goodput: window_goodput(&out.ops, 2.0, 20.0),
        post_goodput: window_goodput(&out.ops, 35.0, 70.0),
        sheds: out.sheds,
        retries: out.retries,
        gave_up: out.ops.iter().filter(|o| o.gave_up).count(),
        budget_denials: out.budget_denials,
        unresolved: out.ops.iter().filter(|o| !o.done && !o.gave_up).count(),
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(193);

    println!("overload bench: capacity {CAPACITY} ops/s, service {SERVICE_RATE} ops/s, SLO {SLO}s, seed {seed}");
    println!();

    // -- experiment 1: open-loop load sweep -------------------------------
    let mut journal = String::new();
    journal.push_str(&format!("overload bench journal (seed {seed})\n"));
    let mut points = Vec::new();
    let mut sweep_metrics_json = String::new();
    for multiplier in [0.5, 1.0, 2.0, 4.0] {
        let (p, out) = sweep_point(seed, multiplier);
        journal.push_str(&format!(
            "sweep x{}: offered {} completed {} sheds {} retries {} gave_up {} goodput {:.2} p99 {:.3}s\n",
            p.multiplier, p.offered, p.completed, p.sheds, p.retries, p.gave_up, p.goodput, p.admitted_p99,
        ));
        println!(
            "load {:>4}x  offered {:>5}  goodput {:>6.2}/s  shed rate {:>5.3}  admitted p50/p99 {:>6.3}/{:.3}s",
            p.multiplier, p.offered, p.goodput, p.shed_rate, p.admitted_p50, p.admitted_p99
        );
        if multiplier == 2.0 {
            sweep_metrics_json = out.server.metrics().snapshot().to_json(2);
        }
        points.push(p);
    }

    // -- experiment 2: retry storm, budgets on vs off ----------------------
    let on = storm(seed, true, true);
    let off = storm(seed, false, true);
    let control_on = storm(seed, true, false);
    let control_off = storm(seed, false, false);
    for (name, s) in [
        ("budgets_on", &on),
        ("budgets_off", &off),
        ("control_on", &control_on),
        ("control_off", &control_off),
    ] {
        journal.push_str(&format!(
            "storm {name}: pre {:.2}/s post {:.2}/s sheds {} retries {} gave_up {} denials {} unresolved {}\n",
            s.pre_goodput, s.post_goodput, s.sheds, s.retries, s.gave_up, s.budget_denials, s.unresolved,
        ));
        println!(
            "storm {name:<12} pre-spike {:>6.2}/s  post-spike {:>6.2}/s  sheds {:>6}  retries {:>6}  unresolved {}",
            s.pre_goodput, s.post_goodput, s.sheds, s.retries, s.unresolved
        );
    }
    println!();

    // -- acceptance --------------------------------------------------------
    let check = |cond: bool, msg: &str, journal: &str| {
        if !cond {
            std::fs::write("OVERLOAD_journal.txt", journal).unwrap();
            panic!("acceptance failed: {msg} (journal in OVERLOAD_journal.txt)");
        }
    };
    let p1 = &points[1]; // 1x
    let p2 = &points[2]; // 2x
    let p05 = &points[0]; // 0.5x (uncontended)
    check(
        p2.goodput >= 0.8 * p1.goodput,
        &format!(
            "2x goodput {:.2} must stay >= 80% of 1x goodput {:.2}",
            p2.goodput, p1.goodput
        ),
        &journal,
    );
    check(
        p2.admitted_p99 <= 5.0 * p05.admitted_p99.max(1.0 / SERVICE_RATE),
        &format!(
            "2x admitted p99 {:.3}s must stay within 5x uncontended p99 {:.3}s",
            p2.admitted_p99, p05.admitted_p99
        ),
        &journal,
    );
    check(
        p2.sheds > 0,
        "2x load must shed (the gate must actually engage)",
        &journal,
    );
    check(
        on.post_goodput >= 0.9 * control_on.post_goodput,
        &format!(
            "with retry budgets the storm must converge: post {:.2} vs no-spike control {:.2}",
            on.post_goodput, control_on.post_goodput
        ),
        &journal,
    );
    check(
        off.post_goodput < 0.9 * control_off.post_goodput,
        &format!(
            "without budgets the storm must measurably degrade: off post {:.2} vs control {:.2}",
            off.post_goodput, control_off.post_goodput
        ),
        &journal,
    );

    // -- JSON --------------------------------------------------------------
    let sweep_json: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                concat!(
                    "    {{ \"multiplier\": {}, \"offered\": {}, \"completed\": {}, ",
                    "\"sheds\": {}, \"retries\": {}, \"gave_up\": {}, \"shed_rate\": {:.4}, ",
                    "\"goodput\": {:.3}, \"admitted_p50_s\": {:.4}, \"admitted_p99_s\": {:.4} }}"
                ),
                p.multiplier,
                p.offered,
                p.completed,
                p.sheds,
                p.retries,
                p.gave_up,
                p.shed_rate,
                p.goodput,
                p.admitted_p50,
                p.admitted_p99,
            )
        })
        .collect();
    let storm_json = |s: &StormOut| {
        format!(
            concat!(
                "{{ \"pre_goodput\": {:.3}, \"post_goodput\": {:.3}, \"sheds\": {}, ",
                "\"retries\": {}, \"gave_up\": {}, \"budget_denials\": {}, \"unresolved\": {} }}"
            ),
            s.pre_goodput,
            s.post_goodput,
            s.sheds,
            s.retries,
            s.gave_up,
            s.budget_denials,
            s.unresolved,
        )
    };
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"overload\",\n",
            "  \"seed\": {},\n",
            "  \"capacity_ops_per_s\": {},\n",
            "  \"service_rate_ops_per_s\": {},\n",
            "  \"horizon_s\": {},\n",
            "  \"slo_s\": {},\n",
            "  \"sweep\": [\n{}\n  ],\n",
            "  \"storm\": {{\n",
            "    \"budgets_on\": {},\n",
            "    \"budgets_off\": {},\n",
            "    \"control_on\": {},\n",
            "    \"control_off\": {}\n",
            "  }},\n",
            "  \"metrics\": {}\n",
            "}}\n"
        ),
        seed,
        CAPACITY,
        SERVICE_RATE,
        HORIZON,
        SLO,
        sweep_json.join(",\n"),
        storm_json(&on),
        storm_json(&off),
        storm_json(&control_on),
        storm_json(&control_off),
        sweep_metrics_json.trim_end(),
    );
    std::fs::write("BENCH_overload.json", json).unwrap();
    println!("acceptance: all overload criteria hold");
    println!("wrote BENCH_overload.json");
}
