#![allow(clippy::unwrap_used)]

//! Four access paths for a multi-level expand, measured end-to-end:
//! per-node navigation (late/early), level-batched IN-list navigation, and
//! the paper's recursive query. Batching removes most round trips without
//! SQL:1999 — but still pays one per level, which recursion collapses too.

use pdm_bench::{make_session, visibility_rules};
use pdm_core::{Session, SessionConfig, Strategy};
use pdm_net::LinkProfile;
use pdm_workload::{build_database, TreeSpec};

fn main() {
    println!("multi-level expand access paths, γ=0.6, node=512B, 256 kbit/s / 150 ms");
    println!(
        "{:<12}{:>10}{:>14}{:>12}{:>14}{:>12}",
        "tree", "visible", "path", "queries", "volume MB", "T (s)"
    );
    for (depth, branching) in [(4u32, 5u32), (5, 5), (6, 5)] {
        let spec = TreeSpec::new(depth, branching, 0.6).with_node_size(512);
        let visible = 3u64.pow(depth + 1) / 2; // γβ = 3

        let mut s = make_session(
            depth,
            branching,
            0.6,
            512,
            Strategy::LateEval,
            LinkProfile::wan_256(),
        );
        let nav = s.multi_level_expand(1).expect("expand").stats;

        let (db, _) = build_database(&spec).expect("build");
        let mut s = Session::new(
            db,
            SessionConfig::new("scott", Strategy::EarlyEval, LinkProfile::wan_256()),
            visibility_rules(),
        );
        let batched = s.multi_level_expand_batched(1).expect("expand").stats;

        let mut s = make_session(
            depth,
            branching,
            0.6,
            512,
            Strategy::Recursive,
            LinkProfile::wan_256(),
        );
        let rec = s.multi_level_expand(1).expect("expand").stats;

        for (name, st) in [
            ("per-node", &nav),
            ("batched", &batched),
            ("recursive", &rec),
        ] {
            println!(
                "{:<12}{:>10}{:>14}{:>12}{:>14.2}{:>12.2}",
                format!("δ{depth}β{branching}"),
                visible,
                name,
                st.queries,
                st.volume_bytes / (1024.0 * 1024.0),
                st.response_time()
            );
        }
        println!();
    }
    println!(
        "Batching (available in SQL-92 via IN-lists) already removes the bulk\n\
         of the latency; recursion removes the remaining per-level trips and\n\
         the client-side join bookkeeping. The paper's choice of recursion\n\
         also keeps the request size constant — batched requests grow with\n\
         the frontier and spill into multiple packets."
    );
}
