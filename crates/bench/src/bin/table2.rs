#![allow(clippy::unwrap_used)]

//! Regenerate Table 2: response times under late rule evaluation.
//!
//! Default: the paper's analytic table. `--simulate` additionally measures
//! real SQL traffic over the simulated WAN (scaled grid; add `--paper` for
//! the full 97k-node grid, release build recommended).

use pdm_bench::{PaperSim, SimAction};
use pdm_core::Strategy;

fn main() {
    println!("{}", pdm_model::table2());
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--simulate") {
        let grid = if args.iter().any(|a| a == "--paper") {
            PaperSim::paper()
        } else {
            PaperSim::small()
        };
        println!();
        println!(
            "{}",
            grid.render(Strategy::LateEval, &SimAction::ALL, false)
        );
    }
}
