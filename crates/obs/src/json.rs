//! Minimal JSON emission helpers (the workspace has no serde).

/// Escape `s` for inclusion inside a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Render an `f64` as JSON: finite values verbatim, non-finite as null
/// (JSON has no Inf/NaN literals).
pub fn number(v: f64) -> String {
    if v.is_finite() {
        // Shortest round-trippable form Rust gives us.
        let s = format!("{v}");
        // `{}` prints integral floats without a dot; keep them valid JSON
        // numbers anyway (they already are) — nothing to fix.
        s
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn numbers() {
        assert_eq!(number(1.5), "1.5");
        assert_eq!(number(3.0), "3");
        assert_eq!(number(f64::NAN), "null");
    }
}
