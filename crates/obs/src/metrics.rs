//! Metrics registry: named counters, gauges, and log-linear histograms.
//!
//! All handles are cheap-clone `Arc`s over atomics, so hot paths update
//! them lock-free and snapshots can be taken concurrently. Histograms use
//! a log-linear bucket layout (16 sub-buckets per power of two, exact below
//! 16), giving ≤ 1/16 relative quantile error and **exact** merges —
//! merging two histograms is bucket-count addition, so merge(a, b) is
//! indistinguishable from having recorded the combined stream.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use crate::json;

// ---------------------------------------------------------------------------
// Counter
// ---------------------------------------------------------------------------

/// Monotonic u64 counter.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    pub fn new() -> Self {
        Counter::default()
    }

    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------------
// Gauge
// ---------------------------------------------------------------------------

/// An f64 gauge (stored as bits in an `AtomicU64`). `add` accumulates via
/// compare-exchange, which keeps concurrent accumulation lossless.
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Default for Gauge {
    fn default() -> Self {
        Gauge(Arc::new(AtomicU64::new(0f64.to_bits())))
    }
}

impl Gauge {
    pub fn new() -> Self {
        Gauge::default()
    }

    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    pub fn add(&self, delta: f64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + delta).to_bits();
            match self
                .0
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

// ---------------------------------------------------------------------------
// Log-linear histogram
// ---------------------------------------------------------------------------

/// Values below this are bucketed exactly (bucket index == value).
const LINEAR_CUTOFF: u64 = 16;
/// Sub-buckets per power-of-two row above the linear region.
const SUBS: usize = 16;
/// Rows cover msb 4..=63.
const ROWS: usize = 60;
/// Total bucket count: 16 linear + 60 rows × 16 sub-buckets.
const NUM_BUCKETS: usize = LINEAR_CUTOFF as usize + ROWS * SUBS;

fn bucket_index(v: u64) -> usize {
    if v < LINEAR_CUTOFF {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros() as usize; // >= 4
        let sub = ((v >> (msb - 4)) & 0xF) as usize;
        LINEAR_CUTOFF as usize + (msb - 4) * SUBS + sub
    }
}

/// Inclusive lower bound of bucket `idx` — the reported quantile
/// representative. For `idx >= 16` the bucket width is `lower / 16`
/// rounded down, so `lower <= v <= lower + lower/16 - 1` for every value
/// `v` in the bucket.
fn bucket_lower(idx: usize) -> u64 {
    if idx < LINEAR_CUTOFF as usize {
        idx as u64
    } else {
        let row = (idx - LINEAR_CUTOFF as usize) / SUBS;
        let sub = ((idx - LINEAR_CUTOFF as usize) % SUBS) as u64;
        let msb = row + 4;
        (1u64 << msb) + (sub << (msb - 4))
    }
}

#[derive(Debug)]
struct HistInner {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

/// Mergeable log-linear histogram of u64 samples.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistInner>);

impl Default for Histogram {
    fn default() -> Self {
        Histogram(Arc::new(HistInner {
            buckets: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }))
    }
}

impl Histogram {
    pub fn new() -> Self {
        Histogram::default()
    }

    pub fn record(&self, v: u64) {
        let inner = &self.0;
        // lint:allow(unchecked-index): bucket_index returns < BUCKETS by
        // construction (tested in bucket_layout_is_monotone_and_tight).
        inner.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        inner.count.fetch_add(1, Ordering::Relaxed);
        inner.sum.fetch_add(v, Ordering::Relaxed);
        inner.min.fetch_min(v, Ordering::Relaxed);
        inner.max.fetch_max(v, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Fold `other`'s samples into `self`. Exact: bucket counts add, so the
    /// merged histogram equals one built from the combined stream.
    pub fn merge(&self, other: &Histogram) {
        for (dst, src) in self.0.buckets.iter().zip(other.0.buckets.iter()) {
            let n = src.load(Ordering::Relaxed);
            if n > 0 {
                dst.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.0
            .count
            .fetch_add(other.0.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.0
            .sum
            .fetch_add(other.0.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.0
            .min
            .fetch_min(other.0.min.load(Ordering::Relaxed), Ordering::Relaxed);
        self.0
            .max
            .fetch_max(other.0.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Nearest-rank quantile, reported as the containing bucket's lower
    /// bound: `estimate <= true value <= estimate + estimate/16` (exact
    /// below 16). `q` in [0, 1]; returns 0 on an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (idx, b) in self.0.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return bucket_lower(idx);
            }
        }
        self.0.max.load(Ordering::Relaxed)
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count();
        HistogramSnapshot {
            count,
            sum: self.0.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                self.0.min.load(Ordering::Relaxed)
            },
            max: self.0.max.load(Ordering::Relaxed),
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
        }
    }
}

/// Point-in-time summary of a histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
    pub p50: u64,
    pub p95: u64,
    pub p99: u64,
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// Named metric registry. `counter`/`gauge`/`histogram` get-or-create, so
/// every subsystem can hold hot handles while late readers look up by name.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl MetricsRegistry {
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    pub fn counter(&self, name: &str) -> Counter {
        lock(&self.counters)
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    pub fn gauge(&self, name: &str) -> Gauge {
        lock(&self.gauges)
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    pub fn histogram(&self, name: &str) -> Histogram {
        lock(&self.histograms)
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: lock(&self.counters)
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: lock(&self.gauges)
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: lock(&self.histograms)
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

/// Point-in-time copy of every registered metric, JSON-exportable.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, f64>,
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    pub fn gauge(&self, name: &str) -> f64 {
        self.gauges.get(name).copied().unwrap_or(0.0)
    }

    /// JSON object, sorted keys (BTreeMap order), indented by `indent`
    /// spaces at the top level for embedding in bench reports.
    pub fn to_json(&self, indent: usize) -> String {
        let pad = " ".repeat(indent);
        let inner = " ".repeat(indent + 2);
        let item = " ".repeat(indent + 4);
        let mut out = String::from("{\n");

        out.push_str(&format!("{inner}\"counters\": {{\n"));
        let counters: Vec<String> = self
            .counters
            .iter()
            .map(|(k, v)| format!("{item}\"{}\": {v}", json::escape(k)))
            .collect();
        out.push_str(&counters.join(",\n"));
        out.push_str(&format!("\n{inner}}},\n"));

        out.push_str(&format!("{inner}\"gauges\": {{\n"));
        let gauges: Vec<String> = self
            .gauges
            .iter()
            .map(|(k, v)| format!("{item}\"{}\": {}", json::escape(k), json::number(*v)))
            .collect();
        out.push_str(&gauges.join(",\n"));
        out.push_str(&format!("\n{inner}}},\n"));

        out.push_str(&format!("{inner}\"histograms\": {{\n"));
        let hists: Vec<String> = self
            .histograms
            .iter()
            .map(|(k, h)| {
                format!(
                    concat!(
                        "{item}\"{name}\": {{ \"count\": {count}, \"sum\": {sum}, ",
                        "\"min\": {min}, \"max\": {max}, ",
                        "\"p50\": {p50}, \"p95\": {p95}, \"p99\": {p99} }}"
                    ),
                    item = item,
                    name = json::escape(k),
                    count = h.count,
                    sum = h.sum,
                    min = h.min,
                    max = h.max,
                    p50 = h.p50,
                    p95 = h.p95,
                    p99 = h.p99,
                )
            })
            .collect();
        out.push_str(&hists.join(",\n"));
        out.push_str(&format!("\n{inner}}}\n"));

        out.push_str(&format!("{pad}}}"));
        out
    }
}

// ---------------------------------------------------------------------------
// Closed metric-family registry
// ---------------------------------------------------------------------------

/// The closed registry of metric families. Every `counter`/`gauge`/
/// `histogram` name constructed anywhere in the stack must be a member —
/// `pdm-lint`'s `metric-family-unknown` check parses this list straight out
/// of the source and flags any registration site that names a family not
/// declared here, so a typo'd metric name can never silently fork a family.
/// The CI schema check on the bench reports asserts the converse subset
/// (mandatory families actually present in snapshots).
pub mod families {
    /// Every declared metric family, grouped by subsystem prefix.
    pub const ALL: &[&str] = &[
        // server totals
        "server.queries",
        "server.dml_commits",
        // cross-session query-result cache
        "cache.hits",
        "cache.misses",
        "cache.invalidations",
        // check-out lock table
        "locks.grants",
        "locks.refusals",
        "locks.wait_ns",
        // write-ahead log
        "wal.appends",
        "wal.fsync_ns",
        // engine operator counters
        "engine.rows_scanned",
        "engine.subquery_evals",
        "engine.subquery_cache_hits",
        "engine.recursion_iterations",
        "engine.index_probes",
        // session-side late filtering
        "session.rows_kept",
        "session.rows_filtered_late",
        // simulated WAN
        "net.queries",
        "net.communications",
        "net.request_packets",
        "net.response_payload_bytes",
        "net.volume_bytes",
        "net.latency_s",
        "net.transfer_s",
        "net.fault_wait_s",
        "net.response_time_s",
        "net.retransmits",
        "net.failed_attempts",
        "net.timeouts",
        "net.server_errors",
        "net.outage_hits",
        // multi-site replication
        "repl.ship_batches",
        "repl.records_shipped",
        "repl.ship_failures",
        "repl.acked_writes",
        "repl.watermark_waits",
        "repl.watermark_timeouts",
        "repl.stale_reads",
        "repl.failovers",
        "repl.lag_seqs",
        "repl.ship_us",
        "repl.failover_us",
        "repl.watermark_wait_us",
        // admission control (token-bucket gate, see pdm-core overload)
        "admission.admitted",
        "admission.rejected",
        "admission.inflight",
        // overload protection: sheds by class, deadline abandons,
        // retry-budget denials, bounded-queue rejections
        "overload.shed_interactive",
        "overload.shed_checkout",
        "overload.shed_batch",
        "overload.deadline_abandons",
        "overload.retry_budget_denials",
        "overload.lock_queue_rejections",
        // cross-session cache single-flight (dogpile protection)
        "cache.singleflight_leaders",
        "cache.singleflight_hits",
        // client retry budget accounting folded with the WAN metering
        "net.budget_denied_retries",
    ];

    /// Whether `name` is a declared family.
    pub fn is_known(name: &str) -> bool {
        ALL.contains(&name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_registry_is_closed_and_well_formed() {
        let mut seen = std::collections::BTreeSet::new();
        for name in families::ALL {
            assert!(seen.insert(*name), "duplicate family {name}");
            let (prefix, rest) = name.split_once('.').expect("families are prefix.name");
            assert!(
                prefix == "server"
                    || crate::span::Subsystem::ALL
                        .iter()
                        .any(|s| s.prefix() == prefix),
                "family {name} uses undeclared subsystem prefix {prefix}"
            );
            assert!(
                !rest.is_empty()
                    && rest
                        .chars()
                        .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'),
                "family {name} is not snake_case"
            );
            assert!(families::is_known(name));
        }
        assert!(!families::is_known("server.typo"));
    }

    #[test]
    fn counter_and_gauge_roundtrip() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("cache.hits");
        c.add(3);
        reg.counter("cache.hits").inc();
        assert_eq!(reg.counter("cache.hits").get(), 4);

        let g = reg.gauge("net.latency_s");
        g.add(0.5);
        g.add(0.25);
        assert!((reg.gauge("net.latency_s").get() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn bucket_layout_is_monotone_and_tight() {
        let mut prev = 0usize;
        for v in [0u64, 1, 15, 16, 17, 31, 32, 100, 1023, 1024, u64::MAX] {
            let idx = bucket_index(v);
            assert!(idx >= prev, "index regressed at {v}");
            prev = idx;
            let lower = bucket_lower(idx);
            assert!(lower <= v, "lower {lower} > value {v}");
            if v >= LINEAR_CUTOFF {
                assert!(v - lower <= lower / 16, "bucket too wide at {v}");
            } else {
                assert_eq!(lower, v);
            }
        }
        assert!(bucket_index(u64::MAX) < NUM_BUCKETS);
    }

    #[test]
    fn quantiles_exact_in_linear_region() {
        let h = Histogram::new();
        for v in 0..10u64 {
            h.record(v);
        }
        assert_eq!(h.quantile(0.5), 4);
        assert_eq!(h.quantile(1.0), 9);
        assert_eq!(h.snapshot().min, 0);
        assert_eq!(h.snapshot().max, 9);
        assert_eq!(h.snapshot().sum, 45);
    }

    #[test]
    fn merge_equals_combined() {
        let a = Histogram::new();
        let b = Histogram::new();
        let all = Histogram::new();
        for v in [1u64, 5, 100, 1000, 12345] {
            a.record(v);
            all.record(v);
        }
        for v in [2u64, 7, 99, 54321] {
            b.record(v);
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a.snapshot(), all.snapshot());
    }

    #[test]
    fn snapshot_json_is_parseable_shape() {
        let reg = MetricsRegistry::new();
        reg.counter("a").inc();
        reg.gauge("b").set(1.5);
        reg.histogram("c").record(42);
        let json = reg.snapshot().to_json(0);
        assert!(json.contains("\"counters\""));
        assert!(json.contains("\"a\": 1"));
        assert!(json.contains("\"p99\""));
    }
}
