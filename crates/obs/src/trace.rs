//! Cross-site causal tracing (DESIGN.md §15).
//!
//! A [`TraceContext`] rides inside every metered exchange and replication
//! frame while tracing is on (and costs exactly [`TraceContext::WIRE_BYTES`]
//! request bytes per exchange; zero when off), so the spans recorded at the
//! client, the primary, and every replica can be reassembled into ONE causal
//! tree per action — the [`TraceTree`].
//!
//! **Bit-exactness contract.** Virtual time advances only in
//! `MeteredChannel` (`now += d`); every virtually-wide span records the
//! exact advance amount `d` as its `v_s` attribute. The assembler lays
//! segments on the tree timeline with a single running-sum cursor over those
//! exact `d` values in record order, so the tree total, the attribution
//! total, and the channel's own `elapsed()` are the *same additions in the
//! same order* — equal to the last bit, never "close enough". Interval
//! subtraction (`v_end - v_start`) is NOT the reconciliation basis: IEEE
//! addition does not telescope.
//!
//! Structural spans (action roots, engine operators, lock waits, WAL
//! appends) have `v_excl == 0.0`: adding them to the running sum is exact
//! (`x + 0.0 == x`), and they surface in the attribution table with counts
//! and advisory wall time so "where did the time go" has an honest answer —
//! in this simulator all *virtual* time is network/replication time.

use std::collections::BTreeMap;

use crate::json;
use crate::span::{kinds, SpanKind, SpanRecord, Subsystem};

/// The context piggybacked on every exchange while tracing is on: which
/// action (trace) this exchange belongs to and which span caused it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    pub trace_id: u64,
    pub parent_span: u64,
}

impl TraceContext {
    /// Wire cost of a propagated context: two fixed u64s. Added to the
    /// request byte count of every exchange when tracing is on; when
    /// tracing is off nothing is added and the volume model is untouched.
    pub const WIRE_BYTES: usize = 16;

    pub fn new(trace_id: u64, parent_span: u64) -> Self {
        TraceContext {
            trace_id,
            parent_span,
        }
    }
}

/// Ids are masked to 48 bits so they survive a round-trip through the
/// `f64` span-attribute channel losslessly (52-bit mantissa).
pub const TRACE_ID_BITS: u32 = 48;
const TRACE_ID_MASK: u64 = (1 << TRACE_ID_BITS) - 1;

/// Deterministic trace-id source: a splitmix64 counter stream seeded from
/// the workload seed, masked to [`TRACE_ID_BITS`]. Two sessions seeded
/// differently produce disjoint id streams with overwhelming probability;
/// the same seed replays the same ids.
#[derive(Debug, Clone)]
pub struct TraceIdGen {
    state: u64,
}

impl TraceIdGen {
    pub fn new(seed: u64) -> Self {
        TraceIdGen { state: seed }
    }

    /// Next non-zero 48-bit trace id.
    pub fn next_id(&mut self) -> u64 {
        loop {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let id = pdm_prng::splitmix64(self.state) & TRACE_ID_MASK;
            if id != 0 {
                return id;
            }
        }
    }
}

/// One node of an assembled cross-site trace tree.
///
/// `v_excl` is the span's *exclusive* virtual duration — the exact amount
/// it advanced the virtual clock (0.0 for structural spans). `v_start` /
/// `v_end` are tree-timeline positions: exact running-sum cursor values
/// for wide spans, advisory rebased values for structural spans.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSpan {
    /// Tree-unique span id (site block base + local index).
    pub gid: u64,
    /// Parent gid; `None` only for the root.
    pub parent: Option<u64>,
    /// Which process recorded it: `client`, `primary`, `replica2`, …
    pub site: String,
    pub kind: SpanKind,
    pub label: String,
    pub v_start: f64,
    pub v_end: f64,
    /// Exact exclusive virtual seconds (the clock-advance amount).
    pub v_excl: f64,
    /// Advisory wall nanoseconds (never reconciled).
    pub wall_ns: u64,
    pub attrs: Vec<(&'static str, f64)>,
    pub detail: String,
}

/// One causal tree for one action, spanning every site it touched.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceTree {
    pub trace_id: u64,
    /// Action label (root span label), e.g. `multi_level_expand`.
    pub action: String,
    /// `"ok"` or the failure variant name (`Timeout`, `Overloaded`, …).
    pub outcome: String,
    /// Record order == timeline order for wide spans.
    pub spans: Vec<TraceSpan>,
    /// Running sum of `v_excl` in record order — the action's
    /// virtual-clock duration.
    pub total_v: f64,
}

impl TraceTree {
    pub fn root(&self) -> Option<&TraceSpan> {
        self.spans.iter().find(|s| s.parent.is_none())
    }

    /// Wide (virtual-clock-advancing) spans in record order: the exclusive
    /// segments the critical path is made of.
    pub fn segments(&self) -> impl Iterator<Item = &TraceSpan> {
        self.spans.iter().filter(|s| s.v_excl != 0.0)
    }

    /// Sites represented in the tree, first-seen order.
    pub fn sites(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for s in &self.spans {
            if !out.contains(&s.site.as_str()) {
                out.push(&s.site);
            }
        }
        out
    }

    fn span_by_gid(&self, gid: u64) -> Option<&TraceSpan> {
        self.spans.iter().find(|s| s.gid == gid)
    }

    /// Structural validation: exactly one root, every parent recorded
    /// before its child (which rules out cycles and orphans), and the
    /// exclusive segments tile `[0, total_v]` with *bit-exact* cursor
    /// equality — segment k+1 starts at the bits where segment k ended.
    pub fn validate(&self) -> Result<(), String> {
        if self.spans.is_empty() {
            return Err("empty tree".into());
        }
        let mut roots = 0usize;
        let mut seen: Vec<u64> = Vec::with_capacity(self.spans.len());
        for (i, s) in self.spans.iter().enumerate() {
            if seen.contains(&s.gid) {
                return Err(format!("duplicate gid {} at span {i}", s.gid));
            }
            match s.parent {
                None => roots += 1,
                Some(p) => {
                    if !seen.contains(&p) {
                        return Err(format!(
                            "span {i} ({}) parent {p} not recorded before it",
                            s.kind.full_name()
                        ));
                    }
                }
            }
            seen.push(s.gid);
        }
        if roots != 1 {
            return Err(format!("{roots} roots, want exactly 1"));
        }
        // Exclusive segments tile the timeline: consecutive cursor values
        // agree to the bit, and their running sum IS total_v.
        let mut cursor = 0.0f64;
        for s in self.segments() {
            if s.v_start.to_bits() != cursor.to_bits() {
                return Err(format!(
                    "segment {} ({}) starts at {} but cursor is {cursor}",
                    s.gid,
                    s.kind.full_name(),
                    s.v_start
                ));
            }
            cursor += s.v_excl;
            if s.v_end.to_bits() != cursor.to_bits() {
                return Err(format!("segment {} end drifted off the cursor", s.gid));
            }
        }
        if cursor.to_bits() != self.total_v.to_bits() {
            return Err(format!(
                "segment sum {cursor} != recorded total {}",
                self.total_v
            ));
        }
        Ok(())
    }
}

/// Site-block gid bases: client spans keep their recorder ids under
/// `CLIENT_BASE`; cluster-side segments are numbered from `CLUSTER_BASE`.
///
/// `ROOT_GID` is public: it is the `parent_span` a fresh [`TraceContext`]
/// points at (everything a traced action causes hangs off the root).
pub const ROOT_GID: u64 = 1;
const CLIENT_BASE: u64 = 1_000_000;
const CLUSTER_BASE: u64 = 2_000_000;

/// Assembles per-site span contributions into one [`TraceTree`], keeping
/// the single running-sum cursor that makes the reconciliation bit-exact.
#[derive(Debug)]
pub struct TraceAssembler {
    tree: TraceTree,
    cursor: f64,
    next_gid: u64,
    /// Innermost open grouping span (e.g. a watermark wait) — pushed
    /// segments become its children.
    group: Option<u64>,
}

impl TraceAssembler {
    /// Start a tree with a synthetic zero-width root owned by `site`.
    pub fn new(trace_id: u64, action: impl Into<String>, site: impl Into<String>) -> Self {
        let action = action.into();
        let root = TraceSpan {
            gid: ROOT_GID,
            parent: None,
            site: site.into(),
            kind: kinds::ACTION,
            label: action.clone(),
            v_start: 0.0,
            v_end: 0.0,
            v_excl: 0.0,
            wall_ns: 0,
            attrs: vec![("trace_id", trace_id as f64)],
            detail: String::new(),
        };
        TraceAssembler {
            tree: TraceTree {
                trace_id,
                action,
                outcome: "ok".into(),
                spans: vec![root],
                total_v: 0.0,
            },
            cursor: 0.0,
            next_gid: CLUSTER_BASE,
            group: None,
        }
    }

    /// Append one exclusive segment at the cursor. `v_excl` must be the
    /// exact clock-advance amount of the segment.
    pub fn push_segment(
        &mut self,
        site: impl Into<String>,
        kind: SpanKind,
        label: impl Into<String>,
        v_excl: f64,
        attrs: &[(&'static str, f64)],
        detail: impl Into<String>,
    ) -> u64 {
        let gid = self.next_gid;
        self.next_gid += 1;
        let v_start = self.cursor;
        self.cursor += v_excl;
        self.tree.spans.push(TraceSpan {
            gid,
            parent: Some(self.group.unwrap_or(ROOT_GID)),
            site: site.into(),
            kind,
            label: label.into(),
            v_start,
            v_end: self.cursor,
            v_excl,
            wall_ns: 0,
            attrs: attrs.to_vec(),
            detail: detail.into(),
        });
        gid
    }

    /// Append a zero-width span (e.g. a replica-side apply) under `parent`.
    pub fn push_mark(
        &mut self,
        parent: u64,
        site: impl Into<String>,
        kind: SpanKind,
        label: impl Into<String>,
        attrs: &[(&'static str, f64)],
    ) -> u64 {
        let gid = self.next_gid;
        self.next_gid += 1;
        self.tree.spans.push(TraceSpan {
            gid,
            parent: Some(parent),
            site: site.into(),
            kind,
            label: label.into(),
            v_start: self.cursor,
            v_end: self.cursor,
            v_excl: 0.0,
            wall_ns: 0,
            attrs: attrs.to_vec(),
            detail: String::new(),
        });
        gid
    }

    /// Open a zero-excl grouping span (e.g. `repl.wait_watermark`); the
    /// segments pushed until [`Self::close_group`] become its children and
    /// their virtual time is attributed to the group's class.
    pub fn open_group(
        &mut self,
        site: impl Into<String>,
        kind: SpanKind,
        label: impl Into<String>,
    ) -> u64 {
        let gid = self.next_gid;
        self.next_gid += 1;
        self.tree.spans.push(TraceSpan {
            gid,
            parent: Some(ROOT_GID),
            site: site.into(),
            kind,
            label: label.into(),
            v_start: self.cursor,
            v_end: self.cursor,
            v_excl: 0.0,
            wall_ns: 0,
            attrs: Vec::new(),
            detail: String::new(),
        });
        self.group = Some(gid);
        gid
    }

    pub fn close_group(&mut self) {
        if let Some(gid) = self.group.take() {
            let cursor = self.cursor;
            if let Some(g) = self.tree.spans.iter_mut().find(|s| s.gid == gid) {
                g.v_end = cursor;
            }
        }
    }

    /// Splice a whole session-recorder snapshot in as one site block.
    ///
    /// Wide spans (those carrying the exact `v_s` attribute) are laid on
    /// the running cursor — their positions and the tree total stay
    /// bit-exact against the channel's own accumulation. Structural spans
    /// keep their recorder intervals rebased by the block offset (advisory
    /// positions for the viewer; exactness lives in the segments).
    pub fn add_recorder_block(&mut self, site: &str, spans: &[SpanRecord]) {
        let offset = self.cursor;
        for r in spans {
            let gid = CLIENT_BASE + self.site_block_salt(site) + r.id as u64;
            let parent = match r.parent {
                Some(p) => Some(CLIENT_BASE + self.site_block_salt(site) + p as u64),
                None => Some(ROOT_GID),
            };
            let v_excl = r.attr("v_s").unwrap_or(0.0);
            let (v_start, v_end) = if v_excl != 0.0 {
                let s = self.cursor;
                self.cursor += v_excl;
                (s, self.cursor)
            } else {
                (offset + r.v_start, offset + r.v_end)
            };
            self.tree.spans.push(TraceSpan {
                gid,
                parent,
                site: site.to_string(),
                kind: r.kind,
                label: r.label.clone(),
                v_start,
                v_end,
                v_excl,
                wall_ns: r.wall_ns(),
                attrs: r.attrs.clone(),
                detail: r.detail.clone(),
            });
        }
    }

    /// Distinct gid ranges for distinct site blocks (a routed action has
    /// at most a handful of blocks; 100k ids per block is plenty).
    fn site_block_salt(&mut self, site: &str) -> u64 {
        // Deterministic: hash-free, order-of-first-use numbering.
        let known: Vec<&str> = {
            let mut v = Vec::new();
            for s in &self.tree.spans {
                if s.gid >= CLIENT_BASE && s.gid < CLUSTER_BASE && !v.contains(&s.site.as_str()) {
                    v.push(s.site.as_str());
                }
            }
            v
        };
        match known.iter().position(|s| *s == site) {
            Some(i) => i as u64 * 100_000,
            None => known.len() as u64 * 100_000,
        }
    }

    /// Current cursor position (== exact virtual seconds assembled so far).
    pub fn elapsed(&self) -> f64 {
        self.cursor
    }

    pub fn set_outcome(&mut self, outcome: impl Into<String>) {
        self.tree.outcome = outcome.into();
    }

    /// Close the root over the full timeline and return the tree.
    pub fn finish(mut self) -> TraceTree {
        self.close_group();
        self.tree.total_v = self.cursor;
        let cursor = self.cursor;
        if let Some(root) = self.tree.spans.first_mut() {
            root.v_end = cursor;
        }
        self.tree
    }
}

/// One row of the per-action attribution table.
#[derive(Debug, Clone, PartialEq)]
pub struct AttribClass {
    /// `net.exchange`, `repl.wait_watermark`, `locks.wait`, …
    pub class: String,
    /// Exact virtual seconds attributed (0.0 for zero-width classes).
    pub v_s: f64,
    pub count: u64,
    /// Advisory wall nanoseconds.
    pub wall_ns: u64,
}

/// The critical-path attribution of one tree: every span except the root
/// is binned into a class; `total_v` is the one-pass in-order running sum
/// of exclusive segment durations and reconciles bit-exactly with
/// [`TraceTree::total_v`] (and, for a single-session action, with the
/// channel's `elapsed()`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Attribution {
    pub total_v: f64,
    pub classes: Vec<AttribClass>,
}

impl Attribution {
    pub fn class(&self, name: &str) -> Option<&AttribClass> {
        self.classes.iter().find(|c| c.class == name)
    }
}

/// Segment class: virtual time spent shipping under an open watermark
/// wait is attributed to the wait, not to generic shipping — that is the
/// "replica lag" bucket the paper's eq. (2)–(5) decomposition lacks.
fn class_of(tree: &TraceTree, span: &TraceSpan) -> String {
    let mut cur = span.parent;
    let mut hops = 0;
    while let Some(pgid) = cur {
        if hops > tree.spans.len() {
            break; // defensive: validate() catches cycles separately
        }
        hops += 1;
        match tree.span_by_gid(pgid) {
            Some(p) if p.kind == kinds::REPL_WAIT_WATERMARK => {
                return kinds::REPL_WAIT_WATERMARK.full_name()
            }
            Some(p) => cur = p.parent,
            None => break,
        }
    }
    span.kind.full_name()
}

/// Extract the attribution table from an assembled tree.
pub fn attribution(tree: &TraceTree) -> Attribution {
    let mut total = 0.0f64;
    let mut bins: BTreeMap<String, (f64, u64, u64)> = BTreeMap::new();
    for span in &tree.spans {
        // Single in-order pass: structural spans add exactly 0.0.
        total += span.v_excl;
        if span.parent.is_none() {
            continue; // the root is the thing being attributed
        }
        let class = class_of(tree, span);
        let e = bins.entry(class).or_insert((0.0, 0, 0));
        e.0 += span.v_excl;
        e.1 += 1;
        e.2 += span.wall_ns;
    }
    Attribution {
        total_v: total,
        classes: bins
            .into_iter()
            .map(|(class, (v_s, count, wall_ns))| AttribClass {
                class,
                v_s,
                count,
                wall_ns,
            })
            .collect(),
    }
}

/// Retains full trace trees only for tail actions: total virtual latency
/// at or above `threshold`, or any non-`"ok"` outcome (`Timeout`,
/// `Overloaded`, `ReplicaLagTimeout`, …). Keeps at most `cap` trees,
/// evicting the fastest kept one when full.
#[derive(Debug, Clone, Default)]
pub struct TailSampler {
    threshold: f64,
    cap: usize,
    kept: Vec<TraceTree>,
    pub offered: u64,
    pub retained: u64,
}

impl TailSampler {
    pub fn new(threshold: f64, cap: usize) -> Self {
        TailSampler {
            threshold,
            cap: cap.max(1),
            kept: Vec::new(),
            offered: 0,
            retained: 0,
        }
    }

    /// Offer a finished tree; returns whether it was retained.
    pub fn offer(&mut self, tree: TraceTree) -> bool {
        self.offered += 1;
        let tail = tree.outcome != "ok" || tree.total_v >= self.threshold;
        if !tail {
            return false;
        }
        self.retained += 1;
        if self.kept.len() < self.cap {
            self.kept.push(tree);
            return true;
        }
        // Evict the fastest kept ok-tree; failure trees are never evicted
        // in favour of a merely-slow one.
        let victim = self
            .kept
            .iter_mut()
            .filter(|t| t.outcome == "ok")
            .min_by(|a, b| a.total_v.total_cmp(&b.total_v));
        match victim {
            Some(slot) if tree.outcome != "ok" || tree.total_v > slot.total_v => {
                *slot = tree;
                true
            }
            _ => false,
        }
    }

    pub fn exemplars(&self) -> &[TraceTree] {
        &self.kept
    }

    /// The slowest retained tree — the exemplar benches export.
    pub fn slowest(&self) -> Option<&TraceTree> {
        self.kept
            .iter()
            .max_by(|a, b| a.total_v.total_cmp(&b.total_v))
    }
}

/// Export trees in Chrome Trace Event Format (the JSON object form), one
/// process per site — loadable in `chrome://tracing` / Perfetto.
/// Timestamps are virtual microseconds.
pub fn chrome_trace_json(trees: &[TraceTree]) -> String {
    let mut sites: Vec<&str> = Vec::new();
    for t in trees {
        for s in t.sites() {
            if !sites.contains(&s) {
                sites.push(s);
            }
        }
    }
    let mut events: Vec<String> = Vec::new();
    for (i, site) in sites.iter().enumerate() {
        events.push(format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{},\"tid\":0,\"args\":{{\"name\":\"{}\"}}}}",
            i + 1,
            json::escape(site)
        ));
    }
    for t in trees {
        for s in &t.spans {
            let pid = sites.iter().position(|x| *x == s.site).unwrap_or(0) + 1;
            let name = if s.label.is_empty() {
                s.kind.full_name()
            } else {
                format!("{} {}", s.kind.full_name(), s.label)
            };
            let mut args = vec![
                format!("\"trace_id\":{}", t.trace_id),
                format!("\"gid\":{}", s.gid),
                format!("\"v_excl_s\":{}", json::number(s.v_excl)),
            ];
            if let Some(p) = s.parent {
                args.push(format!("\"parent\":{p}"));
            }
            for (k, v) in &s.attrs {
                args.push(format!("\"{}\":{}", json::escape(k), json::number(*v)));
            }
            if !s.detail.is_empty() {
                args.push(format!("\"detail\":\"{}\"", json::escape(&s.detail)));
            }
            events.push(format!(
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{pid},\"tid\":1,\"args\":{{{}}}}}",
                json::escape(&name),
                s.kind.subsystem.prefix(),
                json::number(s.v_start * 1e6),
                json::number((s.v_end - s.v_start) * 1e6),
                args.join(",")
            ));
        }
    }
    format!(
        "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n{}\n]}}\n",
        events.join(",\n")
    )
}

/// Per-class accumulator row: (actions, total_v, class -> (v_s, count)).
type AttribRow = (u64, f64, BTreeMap<String, (f64, u64)>);

/// Accumulates attributions per action class across a bench run and
/// renders the `attribution` section of a `BENCH_*.json` report.
#[derive(Debug, Clone, Default)]
pub struct AttributionTable {
    rows: BTreeMap<String, AttribRow>,
}

impl AttributionTable {
    pub fn new() -> Self {
        AttributionTable::default()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Fold one tree's attribution into the `action_class` row.
    pub fn add(&mut self, action_class: &str, tree: &TraceTree) {
        let a = attribution(tree);
        let row = self
            .rows
            .entry(action_class.to_string())
            .or_insert_with(|| (0, 0.0, BTreeMap::new()));
        row.0 += 1;
        row.1 += a.total_v;
        for c in &a.classes {
            let e = row.2.entry(c.class.clone()).or_insert((0.0, 0));
            e.0 += c.v_s;
            e.1 += c.count;
        }
    }

    /// JSON object: action class → {actions, total_v_s, classes{...}}.
    pub fn to_json(&self, indent: usize) -> String {
        let pad = " ".repeat(indent);
        let pad2 = " ".repeat(indent + 2);
        let pad3 = " ".repeat(indent + 4);
        let mut rows: Vec<String> = Vec::new();
        for (action, (n, total, classes)) in &self.rows {
            let mut cls: Vec<String> = Vec::new();
            for (name, (v, count)) in classes {
                cls.push(format!(
                    "{pad3}\"{}\": {{\"v_s\": {}, \"count\": {}}}",
                    json::escape(name),
                    json::number(*v),
                    count
                ));
            }
            rows.push(format!(
                "{pad2}\"{}\": {{\n{pad3}\"actions\": {n},\n{pad3}\"total_v_s\": {},\n{pad3}\"classes\": {{\n{}\n{pad3}}}\n{pad2}}}",
                json::escape(action),
                json::number(*total),
                cls.join(",\n")
            ));
        }
        format!("{{\n{}\n{pad}}}", rows.join(",\n"))
    }
}

/// Map a span subsystem to whether it can ever carry virtual width.
/// Only the network and replication layers advance the virtual clock
/// (PR-5 invariant); everything else is structurally zero-width.
pub fn subsystem_is_wide(sub: Subsystem) -> bool {
    matches!(sub, Subsystem::Network | Subsystem::Repl)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_gen_is_deterministic_masked_and_nonzero() {
        let mut a = TraceIdGen::new(42);
        let mut b = TraceIdGen::new(42);
        let mut c = TraceIdGen::new(43);
        let ids_a: Vec<u64> = (0..64).map(|_| a.next_id()).collect();
        let ids_b: Vec<u64> = (0..64).map(|_| b.next_id()).collect();
        assert_eq!(ids_a, ids_b, "same seed, same ids");
        assert_ne!(ids_a[0], c.next_id(), "different seed diverges");
        for id in &ids_a {
            assert!(*id != 0 && *id <= TRACE_ID_MASK);
            // Round-trips through the f64 attribute channel losslessly.
            assert_eq!(*id as f64 as u64, *id);
        }
    }

    #[test]
    fn assembler_tiles_segments_bit_exactly() {
        let mut asm = TraceAssembler::new(7, "expand", "client");
        // Awkward magnitudes on purpose: telescoping subtraction would
        // NOT reproduce these sums bit-exactly.
        let durations = [0.1, 1e-9, 0.3, 7e-12, 0.25];
        let mut expect = 0.0f64;
        for (i, d) in durations.iter().enumerate() {
            asm.push_segment("client", kinds::NET_EXCHANGE, format!("q{i}"), *d, &[], "");
            expect += *d;
        }
        let tree = asm.finish();
        tree.validate().unwrap();
        assert_eq!(tree.total_v.to_bits(), expect.to_bits());
        assert_eq!(tree.segments().count(), durations.len());
        let a = attribution(&tree);
        assert_eq!(a.total_v.to_bits(), tree.total_v.to_bits());
        assert_eq!(a.class("net.exchange").unwrap().count, 5);
    }

    #[test]
    fn watermark_group_reclasses_child_shipping() {
        let mut asm = TraceAssembler::new(9, "query_all", "client3");
        asm.open_group("primary", kinds::REPL_WAIT_WATERMARK, "seq4");
        asm.push_segment("primary", kinds::REPL_SHIP, "site1", 0.02, &[], "");
        asm.push_segment("primary", kinds::REPL_SHIP, "site2", 0.03, &[], "");
        asm.close_group();
        asm.push_segment("client3", kinds::NET_EXCHANGE, "q1", 0.5, &[], "");
        let tree = asm.finish();
        tree.validate().unwrap();
        let a = attribution(&tree);
        let wm = a.class("repl.wait_watermark").unwrap();
        assert_eq!(wm.count, 3, "group + two child ships");
        assert!((wm.v_s - 0.05).abs() < 1e-12);
        assert!(a.class("repl.ship").is_none(), "reclassed under the wait");
        assert_eq!(a.class("net.exchange").unwrap().v_s, 0.5);
        assert_eq!(a.total_v.to_bits(), tree.total_v.to_bits());
    }

    #[test]
    fn validate_rejects_orphans_and_sum_drift() {
        let mut asm = TraceAssembler::new(1, "x", "client");
        asm.push_segment("client", kinds::NET_EXCHANGE, "q0", 0.25, &[], "");
        let mut tree = asm.finish();
        tree.validate().unwrap();
        let good = tree.clone();
        // Orphan: parent gid that does not exist.
        tree.spans[1].parent = Some(99);
        assert!(tree.validate().is_err());
        // Sum drift: total not the running sum.
        let mut tree2 = good.clone();
        tree2.total_v += 1e-16_f64.max(f64::EPSILON);
        assert!(tree2.validate().is_err());
        // Second root.
        let mut tree3 = good;
        tree3.spans[1].parent = None;
        assert!(tree3.validate().is_err());
    }

    fn mini_tree(total: f64, outcome: &str) -> TraceTree {
        let mut asm = TraceAssembler::new(5, "a", "client");
        asm.push_segment("client", kinds::NET_EXCHANGE, "q", total, &[], "");
        asm.set_outcome(outcome);
        asm.finish()
    }

    #[test]
    fn sampler_keeps_tail_and_failures_only() {
        let mut s = TailSampler::new(1.0, 2);
        assert!(!s.offer(mini_tree(0.5, "ok")), "below threshold");
        assert!(s.offer(mini_tree(1.5, "ok")));
        assert!(s.offer(mini_tree(0.1, "Timeout")), "failures always kept");
        assert!(s.offer(mini_tree(2.0, "ok")), "evicts the fastest ok tree");
        assert_eq!(s.exemplars().len(), 2);
        assert!(
            s.exemplars().iter().any(|t| t.outcome == "Timeout"),
            "failure tree never evicted for a slow ok tree"
        );
        assert_eq!(s.slowest().unwrap().total_v, 2.0);
        assert_eq!(s.offered, 4);
        assert_eq!(s.retained, 3);
    }

    #[test]
    fn chrome_export_is_wellformed_and_site_partitioned() {
        let mut asm = TraceAssembler::new(11, "checkout", "client2");
        let ship = asm.push_segment("primary", kinds::REPL_SHIP, "site1", 0.04, &[], "");
        asm.push_mark(ship, "replica1", kinds::REPL_APPLY, "3 records", &[]);
        asm.push_segment(
            "client2",
            kinds::NET_EXCHANGE,
            "q1",
            0.2,
            &[("v_s", 0.2)],
            "",
        );
        let tree = asm.finish();
        let json = chrome_trace_json(std::slice::from_ref(&tree));
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("process_name"));
        for site in ["client2", "primary", "replica1"] {
            assert!(json.contains(site), "missing site {site}");
        }
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains(&format!("\"trace_id\":{}", tree.trace_id)));
        // Balanced braces/brackets — cheap well-formedness proxy given no
        // string in the fixture contains braces.
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn attribution_table_accumulates_per_action_class() {
        let mut t = AttributionTable::new();
        t.add("expand", &mini_tree(0.5, "ok"));
        t.add("expand", &mini_tree(0.25, "ok"));
        t.add("update", &mini_tree(0.125, "ok"));
        let json = t.to_json(2);
        assert!(json.contains("\"expand\""));
        assert!(json.contains("\"actions\": 2"));
        assert!(json.contains("\"net.exchange\""));
        assert!(json.contains("\"total_v_s\": 0.75"));
    }
}
