#![cfg_attr(test, allow(clippy::unwrap_used))]
//! `pdm-obs`: deterministic observability for the PDM reproduction (no
//! dependencies outside the workspace).
//!
//! The paper's whole argument (eqs. (1)–(6)) is a decomposition of response
//! time into round-trips, latency, and volume; this crate extends that
//! decomposition to the server side so every subsystem can answer "where
//! did the seconds go". Five pieces:
//!
//! * [`span`] — hierarchical spans over a per-session [`Recorder`]. Every
//!   span carries **two** clocks: the netsim virtual clock (primary — the
//!   deterministic timeline the paper's equations live on) and the wall
//!   clock (advisory — real CPU time, never used in assertions). Only the
//!   network advances the virtual clock, so server-side spans have zero
//!   virtual width and network spans partition the virtual timeline.
//! * [`metrics`] — named counters, gauges, and log-linear histograms
//!   (p50/p95/p99/max, exact merge across threads) in a [`MetricsRegistry`]
//!   snapshotted to JSON.
//! * [`profile`] — an `EXPLAIN ANALYZE`-style rendering of the recorded
//!   span tree, returned alongside results when profiling is on.
//! * [`flight`] — a bounded ring of recent events per session, dumped into
//!   `SessionError` context and chaos-bench journals.
//! * [`trace`] — cross-site causal tracing: a [`TraceContext`] propagated
//!   through every exchange and replication frame, assembly of per-site
//!   spans into one [`TraceTree`] per action, bit-exact critical-path
//!   attribution, tail-exemplar sampling, and Chrome-trace export.
//!
//! Determinism rules (also DESIGN.md §11): virtual-clock first, wall clock
//! advisory; a disabled recorder is a no-op handle so profiling off is
//! byte-identical; metric updates are atomics only and never branch on
//! observed values.

pub mod flight;
pub mod json;
pub mod metrics;
pub mod profile;
pub mod span;
pub mod trace;

pub use flight::{FlightDump, FlightEvent};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, MetricsSnapshot};
pub use profile::QueryProfile;
pub use span::{kinds, Recorder, SpanGuard, SpanKind, SpanRecord, Subsystem};
pub use trace::{
    attribution, chrome_trace_json, Attribution, AttributionTable, TailSampler, TraceAssembler,
    TraceContext, TraceIdGen, TraceSpan, TraceTree, ROOT_GID,
};
