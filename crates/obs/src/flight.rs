//! Flight recorder: a bounded ring of recent span/event completions per
//! session, plus the dump type carried inside `SessionError` context so a
//! seeded failure arrives with its own timeline.

use std::fmt;

use crate::span::SpanKind;
use crate::trace::TraceTree;

/// Ring capacity. Big enough to hold a whole multi-level expand's network
/// exchanges, small enough that an error value stays cheap to clone.
pub const FLIGHT_CAPACITY: usize = 64;

/// One completed span or event: where on the virtual timeline it finished,
/// what kind, which label.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightEvent {
    /// Virtual-clock position (action-relative seconds) at completion.
    pub vtime: f64,
    pub kind: SpanKind,
    pub label: String,
}

impl fmt::Display for FlightEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[v={:.6}s] {} {}",
            self.vtime,
            self.kind.full_name(),
            self.label
        )
    }
}

/// The flight-recorder dump attached to failing `SessionError`s: the span
/// kind in which the deadline expired (e.g. `"locks.wait"` vs
/// `"net.exchange"`) plus the most recent events, oldest first. Empty when
/// profiling is off except for `expired_in`, which is known statically at
/// the failure site.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FlightDump {
    /// Full span-kind name where the deadline expired, empty if unknown.
    pub expired_in: String,
    /// Recent flight events, oldest first.
    pub events: Vec<FlightEvent>,
    /// The offending action's assembled causal tree (tracing on only) —
    /// strictly more than the flat ring: it keeps parentage, sites, and
    /// the exact per-segment virtual durations up to the failure point.
    pub trace: Option<Box<TraceTree>>,
}

impl FlightDump {
    /// A dump with only the expiry site (profiling off).
    pub fn at(expired_in: impl Into<String>) -> Self {
        FlightDump {
            expired_in: expired_in.into(),
            events: Vec::new(),
            trace: None,
        }
    }

    /// Attach recent events from `rec` (no-op if the recorder is disabled).
    pub fn with_events(mut self, rec: &crate::span::Recorder) -> Self {
        self.events = rec.flight();
        self
    }

    /// Attach the action's assembled trace tree (tracing on only).
    pub fn with_trace(mut self, trace: Option<TraceTree>) -> Self {
        self.trace = trace.map(Box::new);
        self
    }

    pub fn is_empty(&self) -> bool {
        self.expired_in.is_empty() && self.events.is_empty() && self.trace.is_none()
    }

    /// Multi-line rendering for journals and error displays.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if !self.expired_in.is_empty() {
            out.push_str(&format!("deadline expired in: {}\n", self.expired_in));
        }
        if self.events.is_empty() {
            out.push_str("flight recorder: empty (profiling off)\n");
        } else {
            out.push_str(&format!(
                "flight recorder ({} events):\n",
                self.events.len()
            ));
            for ev in &self.events {
                out.push_str(&format!("  {ev}\n"));
            }
        }
        if let Some(t) = &self.trace {
            out.push_str(&format!(
                "trace tree: id={:#x} action={} spans={} sites={} total_v={:.6}s\n",
                t.trace_id,
                t.action,
                t.spans.len(),
                t.sites().len(),
                t.total_v
            ));
        }
        out
    }
}

impl fmt::Display for FlightDump {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{kinds, Recorder};

    #[test]
    fn dump_renders_expiry_and_events() {
        let rec = Recorder::new();
        rec.event(kinds::NET_BACKOFF, "retry 1");
        let dump = FlightDump::at("net.exchange").with_events(&rec);
        let text = dump.render();
        assert!(text.contains("deadline expired in: net.exchange"));
        assert!(text.contains("net.backoff retry 1"));
    }

    #[test]
    fn empty_dump() {
        let dump = FlightDump::default();
        assert!(dump.is_empty());
        assert!(dump.render().contains("profiling off"));
    }
}
