//! Query profiles: an `EXPLAIN ANALYZE`-style view over one action's span
//! tree. Built from a [`Recorder`] snapshot after the action completes;
//! purely a read-out, so building it never perturbs results.

use std::collections::BTreeSet;

use crate::span::{Recorder, SpanRecord, Subsystem};

/// The span tree of one completed session action.
#[derive(Debug, Clone, Default)]
pub struct QueryProfile {
    pub spans: Vec<SpanRecord>,
}

impl QueryProfile {
    /// Snapshot the recorder's current action. `None` when profiling is
    /// off or no action has run.
    pub fn from_recorder(rec: &Recorder) -> Option<QueryProfile> {
        if !rec.is_enabled() {
            return None;
        }
        let spans = rec.spans();
        if spans.is_empty() {
            return None;
        }
        Some(QueryProfile { spans })
    }

    /// The root (action) span, if the tree has one.
    pub fn root(&self) -> Option<&SpanRecord> {
        self.spans.iter().find(|s| s.parent.is_none())
    }

    /// Total virtual seconds of the action (root span width).
    pub fn virtual_total(&self) -> f64 {
        self.root().map(|r| r.v_duration()).unwrap_or(0.0)
    }

    /// Distinct subsystems that emitted at least one span.
    pub fn subsystems(&self) -> BTreeSet<Subsystem> {
        self.spans.iter().map(|s| s.kind.subsystem).collect()
    }

    /// Sum of attribute `key` over spans of `subsystem`, in record order —
    /// the same order the channel accumulated its `TrafficStats`, so the
    /// float additions reassociate identically and the totals match
    /// bit-for-bit.
    pub fn sum_attr(&self, subsystem: Subsystem, key: &str) -> f64 {
        let mut total = 0.0;
        for s in &self.spans {
            if s.kind.subsystem == subsystem {
                if let Some(v) = s.attr(key) {
                    total += v;
                }
            }
        }
        total
    }

    /// Sum of virtual durations over leaf spans (spans with no children).
    /// Only the network advances the virtual clock, so this reconciles
    /// with [`QueryProfile::virtual_total`].
    pub fn leaf_virtual_sum(&self) -> f64 {
        let mut has_child = vec![false; self.spans.len()];
        for s in &self.spans {
            if let Some(p) = s.parent {
                if let Some(slot) = has_child.get_mut(p) {
                    *slot = true;
                }
            }
        }
        self.spans
            .iter()
            // lint:allow(unchecked-index): span ids are dense indices into
            // self.spans, and has_child was sized to match above.
            .filter(|s| !has_child[s.id])
            .map(|s| s.v_duration())
            .sum()
    }

    /// Indented per-operator report: kind, label, rows in→out, virtual
    /// seconds, advisory wall microseconds, detail.
    pub fn render(&self) -> String {
        self.render_with(true)
    }

    /// [`QueryProfile::render`] without the wall-clock column — every
    /// remaining field is deterministic, so the report is byte-identical
    /// across runs (the repo-wide invariant for binary output).
    pub fn render_virtual(&self) -> String {
        self.render_with(false)
    }

    fn render_with(&self, wall: bool) -> String {
        let mut out = String::new();
        let roots: Vec<usize> = self
            .spans
            .iter()
            .filter(|s| s.parent.is_none())
            .map(|s| s.id)
            .collect();
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); self.spans.len()];
        for s in &self.spans {
            if let Some(p) = s.parent {
                if let Some(slot) = children.get_mut(p) {
                    slot.push(s.id);
                }
            }
        }
        for root in roots {
            self.render_span(root, &children, 0, wall, &mut out);
        }
        out
    }

    fn render_span(
        &self,
        id: usize,
        children: &[Vec<usize>],
        depth: usize,
        wall: bool,
        out: &mut String,
    ) {
        let Some(s) = self.spans.get(id) else { return };
        let indent = "  ".repeat(depth);
        out.push_str(&format!(
            "{indent}{kind} {label}",
            kind = s.kind.full_name(),
            label = s.label
        ));
        if s.rows_in != 0 || s.rows_out != 0 {
            out.push_str(&format!("  rows {}→{}", s.rows_in, s.rows_out));
        }
        out.push_str(&format!("  v={:.6}s", s.v_duration()));
        if wall {
            out.push_str(&format!(" wall={}µs", s.wall_ns() / 1_000));
        }
        if !s.detail.is_empty() {
            out.push_str(&format!("  [{}]", s.detail));
        }
        for (k, v) in &s.attrs {
            out.push_str(&format!("  {k}={v:.9}"));
        }
        out.push('\n');
        // lint:allow(unchecked-index): children is sized to spans.len()
        // and id is a dense span id.
        for &c in &children[id] {
            self.render_span(c, children, depth + 1, wall, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{kinds, Recorder};

    #[test]
    fn profile_from_disabled_is_none() {
        assert!(QueryProfile::from_recorder(&Recorder::disabled()).is_none());
    }

    #[test]
    fn tree_render_and_totals() {
        let rec = Recorder::new();
        rec.begin_action();
        let root = rec.span(kinds::ACTION, "expand");
        {
            let probe = rec.span(kinds::CACHE_PROBE, "probe");
            probe.set_detail("miss");
        }
        rec.record_closed(
            kinds::NET_EXCHANGE,
            "q1",
            0.0,
            0.5,
            &[("latency_s", 0.2), ("transfer_s", 0.3)],
            "",
        );
        drop(root);

        let p = QueryProfile::from_recorder(&rec).expect("profile");
        assert_eq!(p.spans.len(), 3);
        assert!((p.virtual_total() - 0.5).abs() < 1e-12);
        assert!((p.sum_attr(Subsystem::Network, "latency_s") - 0.2).abs() < 1e-12);
        assert!((p.leaf_virtual_sum() - 0.5).abs() < 1e-12);
        let text = p.render();
        assert!(text.contains("session.action expand"));
        assert!(text.contains("  cache.probe probe"));
        assert!(text.contains("net.exchange q1"));
        assert!(text.contains("[miss]"));
    }
}
