//! Hierarchical spans over a per-session recorder.
//!
//! A [`Recorder`] is a cheap-clone handle: `Recorder::disabled()` carries no
//! allocation and every operation on it is a no-op `Option` check, which is
//! what makes "profiling off" free. An enabled recorder collects
//! [`SpanRecord`]s for the current session action plus a persistent flight
//! ring (see [`crate::flight`]).
//!
//! **Clock model.** Each span records a virtual interval (netsim
//! [`VirtualClock`] seconds — the deterministic timeline) and a wall
//! interval (nanoseconds since the recorder's epoch — advisory). The
//! channel resets its virtual clock at every metering reset; the recorder
//! keeps the action timeline monotonic across those resets by rebasing
//! (`meter_reset` sets `vbase = vnow`), so `child ⊆ parent` holds on both
//! clocks for every span of an action.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

use crate::flight::{FlightEvent, FLIGHT_CAPACITY};

/// The instrumented layers of the stack. One span kind belongs to exactly
/// one subsystem; [`Subsystem::prefix`] is the metric/span naming prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Subsystem {
    /// Client session: actions, late (client-side) filtering.
    Session,
    /// Rule lookup, §5.5 query modification, SQL parsing.
    Compile,
    /// SQL engine operators: scans, joins, recursion, subqueries.
    Engine,
    /// Cross-session query-result cache.
    Cache,
    /// Check-out lock table.
    Locks,
    /// Write-ahead log appends and fsyncs.
    Wal,
    /// Simulated WAN exchanges, faults, and backoff waits.
    Network,
    /// Multi-site replication: WAL shipping, replica replay, watermark
    /// waits, failover promotion.
    Repl,
    /// Admission control: the per-server token-bucket gate deciding
    /// whether an arriving action may run at all.
    Admission,
    /// Overload protection: sheds, deadline abandons, retry-budget
    /// denials — everything that happens when offered load exceeds
    /// capacity.
    Overload,
}

impl Subsystem {
    pub const ALL: [Subsystem; 10] = [
        Subsystem::Session,
        Subsystem::Compile,
        Subsystem::Engine,
        Subsystem::Cache,
        Subsystem::Locks,
        Subsystem::Wal,
        Subsystem::Network,
        Subsystem::Repl,
        Subsystem::Admission,
        Subsystem::Overload,
    ];

    /// The naming prefix used in span full names (`net.exchange`) and
    /// metric names (`net.retransmits`).
    pub fn prefix(&self) -> &'static str {
        match self {
            Subsystem::Session => "session",
            Subsystem::Compile => "compile",
            Subsystem::Engine => "engine",
            Subsystem::Cache => "cache",
            Subsystem::Locks => "locks",
            Subsystem::Wal => "wal",
            Subsystem::Network => "net",
            Subsystem::Repl => "repl",
            Subsystem::Admission => "admission",
            Subsystem::Overload => "overload",
        }
    }
}

/// A span kind: subsystem plus a stable short name. All kinds used by the
/// stack are declared in [`kinds`]; the meta-test in `tests/observability.rs`
/// checks emitted spans against this registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanKind {
    pub subsystem: Subsystem,
    pub name: &'static str,
}

impl SpanKind {
    pub const fn new(subsystem: Subsystem, name: &'static str) -> Self {
        SpanKind { subsystem, name }
    }

    /// `"net.exchange"`-style dotted name.
    pub fn full_name(&self) -> String {
        format!("{}.{}", self.subsystem.prefix(), self.name)
    }
}

/// The declared span taxonomy (DESIGN.md §11). Every instrumentation site
/// in the stack uses one of these constants; the meta-test asserts the
/// converse — every emitted span kind appears here, and every subsystem
/// declares at least one kind.
pub mod kinds {
    use super::{SpanKind, Subsystem};

    pub const ACTION: SpanKind = SpanKind::new(Subsystem::Session, "action");
    pub const LATE_FILTER: SpanKind = SpanKind::new(Subsystem::Session, "late_filter");

    pub const RULE_LOOKUP: SpanKind = SpanKind::new(Subsystem::Compile, "rule_lookup");
    pub const QUERY_MODIFY: SpanKind = SpanKind::new(Subsystem::Compile, "modify");
    pub const PARSE: SpanKind = SpanKind::new(Subsystem::Compile, "parse");

    pub const ENGINE_QUERY: SpanKind = SpanKind::new(Subsystem::Engine, "query");
    pub const SCAN: SpanKind = SpanKind::new(Subsystem::Engine, "scan");
    pub const JOIN: SpanKind = SpanKind::new(Subsystem::Engine, "join");
    pub const FILTER: SpanKind = SpanKind::new(Subsystem::Engine, "filter");
    pub const RECURSION: SpanKind = SpanKind::new(Subsystem::Engine, "recursion");
    pub const RECURSION_ROUND: SpanKind = SpanKind::new(Subsystem::Engine, "recursion_round");
    pub const SUBQUERY: SpanKind = SpanKind::new(Subsystem::Engine, "subquery");

    pub const CACHE_PROBE: SpanKind = SpanKind::new(Subsystem::Cache, "probe");

    pub const LOCK_WAIT: SpanKind = SpanKind::new(Subsystem::Locks, "wait");

    pub const WAL_APPEND: SpanKind = SpanKind::new(Subsystem::Wal, "append");
    pub const WAL_FSYNC: SpanKind = SpanKind::new(Subsystem::Wal, "fsync");

    pub const NET_EXCHANGE: SpanKind = SpanKind::new(Subsystem::Network, "exchange");
    pub const NET_FAULT: SpanKind = SpanKind::new(Subsystem::Network, "fault");
    pub const NET_BACKOFF: SpanKind = SpanKind::new(Subsystem::Network, "backoff");

    pub const REPL_SHIP: SpanKind = SpanKind::new(Subsystem::Repl, "ship");
    pub const REPL_APPLY: SpanKind = SpanKind::new(Subsystem::Repl, "apply");
    pub const REPL_WAIT_WATERMARK: SpanKind = SpanKind::new(Subsystem::Repl, "wait_watermark");
    pub const REPL_PROMOTE: SpanKind = SpanKind::new(Subsystem::Repl, "promote");

    pub const ADMIT: SpanKind = SpanKind::new(Subsystem::Admission, "admit");

    pub const OVERLOAD_SHED: SpanKind = SpanKind::new(Subsystem::Overload, "shed");
    pub const OVERLOAD_ABANDON: SpanKind = SpanKind::new(Subsystem::Overload, "abandon");

    /// All declared kinds, the registry the meta-test walks.
    pub const ALL: &[SpanKind] = &[
        ACTION,
        LATE_FILTER,
        RULE_LOOKUP,
        QUERY_MODIFY,
        PARSE,
        ENGINE_QUERY,
        SCAN,
        JOIN,
        FILTER,
        RECURSION,
        RECURSION_ROUND,
        SUBQUERY,
        CACHE_PROBE,
        LOCK_WAIT,
        WAL_APPEND,
        WAL_FSYNC,
        NET_EXCHANGE,
        NET_FAULT,
        NET_BACKOFF,
        REPL_SHIP,
        REPL_APPLY,
        REPL_WAIT_WATERMARK,
        REPL_PROMOTE,
        ADMIT,
        OVERLOAD_SHED,
        OVERLOAD_ABANDON,
    ];
}

/// One recorded span. `v_*` are virtual-clock seconds on the action
/// timeline; `wall_*` are nanoseconds since the recorder's epoch
/// (advisory). `attrs` carries kind-specific numeric attributes — for
/// `net.exchange` the exact `latency_s`/`transfer_s` split so profiles
/// reconcile bit-for-bit against `TrafficStats`.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    pub id: usize,
    pub parent: Option<usize>,
    pub kind: SpanKind,
    pub label: String,
    pub v_start: f64,
    pub v_end: f64,
    pub wall_start_ns: u64,
    pub wall_end_ns: u64,
    pub rows_in: u64,
    pub rows_out: u64,
    pub detail: String,
    pub attrs: Vec<(&'static str, f64)>,
    /// Still open (guard not yet dropped) — only visible when spans are
    /// read mid-action.
    pub open: bool,
}

impl SpanRecord {
    pub fn v_duration(&self) -> f64 {
        self.v_end - self.v_start
    }

    pub fn wall_ns(&self) -> u64 {
        self.wall_end_ns.saturating_sub(self.wall_start_ns)
    }

    pub fn attr(&self, key: &str) -> Option<f64> {
        self.attrs.iter().find(|(k, _)| *k == key).map(|(_, v)| *v)
    }
}

#[derive(Debug, Default)]
struct RecState {
    spans: Vec<SpanRecord>,
    stack: Vec<usize>,
    /// Current position on the action's virtual timeline.
    vnow: f64,
    /// Rebase offset: the channel's virtual clock restarts at 0 on every
    /// metering reset; `vbase + clock_time` keeps the action timeline
    /// monotonic across resets.
    vbase: f64,
    flight: VecDeque<FlightEvent>,
}

#[derive(Debug)]
struct RecorderInner {
    epoch: Instant,
    state: Mutex<RecState>,
}

/// Per-session span collector. Cloning shares the underlying state;
/// `Recorder::disabled()` (also `Default`) is a free no-op handle.
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    inner: Option<Arc<RecorderInner>>,
}

fn lock_state(inner: &RecorderInner) -> MutexGuard<'_, RecState> {
    match inner.state.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl Recorder {
    /// An enabled recorder with an empty timeline.
    pub fn new() -> Self {
        Recorder {
            inner: Some(Arc::new(RecorderInner {
                // lint:allow(wall-clock): the wall interval of a span is
                // advisory by design (DESIGN.md §11); the virtual clock is
                // the sole measured-time authority.
                epoch: Instant::now(),
                state: Mutex::new(RecState::default()),
            })),
        }
    }

    /// The no-op handle used when profiling is off.
    pub fn disabled() -> Self {
        Recorder::default()
    }

    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    fn wall_ns(inner: &RecorderInner) -> u64 {
        inner.epoch.elapsed().as_nanos() as u64
    }

    /// Start a fresh action timeline: drop the previous action's spans and
    /// rewind the virtual timeline to 0. The flight ring persists across
    /// actions (that is its point).
    pub fn begin_action(&self) {
        if let Some(inner) = &self.inner {
            let mut st = lock_state(inner);
            st.spans.clear();
            st.stack.clear();
            st.vnow = 0.0;
            st.vbase = 0.0;
        }
    }

    /// The channel's virtual clock is about to restart at 0 (metering
    /// reset); rebase so action-relative virtual time stays monotonic.
    pub fn meter_reset(&self) {
        if let Some(inner) = &self.inner {
            let mut st = lock_state(inner);
            st.vbase = st.vnow;
        }
    }

    /// Current position on the action's virtual timeline.
    pub fn virtual_now(&self) -> f64 {
        match &self.inner {
            Some(inner) => lock_state(inner).vnow,
            None => 0.0,
        }
    }

    /// Open a span as a child of the innermost open span. Closed when the
    /// returned guard drops.
    #[must_use]
    pub fn span(&self, kind: SpanKind, label: impl Into<String>) -> SpanGuard {
        let Some(inner) = &self.inner else {
            return SpanGuard {
                rec: Recorder::disabled(),
                idx: None,
            };
        };
        let wall = Self::wall_ns(inner);
        let mut st = lock_state(inner);
        let id = st.spans.len();
        let parent = st.stack.last().copied();
        let vnow = st.vnow;
        st.spans.push(SpanRecord {
            id,
            parent,
            kind,
            label: label.into(),
            v_start: vnow,
            v_end: vnow,
            wall_start_ns: wall,
            wall_end_ns: wall,
            rows_in: 0,
            rows_out: 0,
            detail: String::new(),
            attrs: Vec::new(),
            open: true,
        });
        st.stack.push(id);
        drop(st);
        SpanGuard {
            rec: self.clone(),
            idx: Some(id),
        }
    }

    /// Record an already-delimited span on the **channel's** virtual clock
    /// (`clock_start..clock_end` are channel seconds; the recorder adds its
    /// rebase offset). Used by netsim, which knows the exact virtual extent
    /// of an exchange only after costing it. Advances `vnow` to the span
    /// end, and logs a flight event.
    #[allow(clippy::too_many_arguments)]
    pub fn record_closed(
        &self,
        kind: SpanKind,
        label: impl Into<String>,
        clock_start: f64,
        clock_end: f64,
        attrs: &[(&'static str, f64)],
        detail: impl Into<String>,
    ) {
        let Some(inner) = &self.inner else { return };
        let wall = Self::wall_ns(inner);
        let label = label.into();
        let detail = detail.into();
        let mut st = lock_state(inner);
        let v_start = st.vbase + clock_start;
        let v_end = st.vbase + clock_end;
        st.vnow = st.vnow.max(v_end);
        let id = st.spans.len();
        let parent = st.stack.last().copied();
        st.spans.push(SpanRecord {
            id,
            parent,
            kind,
            label: label.clone(),
            v_start,
            v_end,
            wall_start_ns: wall,
            wall_end_ns: wall,
            rows_in: 0,
            rows_out: 0,
            detail,
            attrs: attrs.to_vec(),
            open: false,
        });
        push_flight(
            &mut st.flight,
            FlightEvent {
                vtime: v_end,
                kind,
                label,
            },
        );
    }

    /// Log a flight-ring event without creating a span.
    pub fn event(&self, kind: SpanKind, label: impl Into<String>) {
        let Some(inner) = &self.inner else { return };
        let mut st = lock_state(inner);
        let vtime = st.vnow;
        push_flight(
            &mut st.flight,
            FlightEvent {
                vtime,
                kind,
                label: label.into(),
            },
        );
    }

    /// Snapshot of the current action's spans (closed and still-open).
    pub fn spans(&self) -> Vec<SpanRecord> {
        match &self.inner {
            Some(inner) => lock_state(inner).spans.clone(),
            None => Vec::new(),
        }
    }

    /// Snapshot of the flight ring, oldest first.
    pub fn flight(&self) -> Vec<FlightEvent> {
        match &self.inner {
            Some(inner) => lock_state(inner).flight.iter().cloned().collect(),
            None => Vec::new(),
        }
    }

    fn close_span(&self, idx: usize) {
        let Some(inner) = &self.inner else { return };
        let wall = Self::wall_ns(inner);
        let mut st = lock_state(inner);
        // Guards drop LIFO, so idx is normally the stack top; be defensive
        // anyway so a mis-nested guard cannot corrupt the stack.
        if let Some(pos) = st.stack.iter().rposition(|&i| i == idx) {
            st.stack.remove(pos);
        }
        let vnow = st.vnow;
        if let Some(span) = st.spans.get_mut(idx) {
            span.v_end = vnow;
            span.wall_end_ns = wall;
            span.open = false;
            let ev = FlightEvent {
                vtime: vnow,
                kind: span.kind,
                label: span.label.clone(),
            };
            push_flight(&mut st.flight, ev);
        }
    }

    fn with_span(&self, idx: usize, f: impl FnOnce(&mut SpanRecord)) {
        if let Some(inner) = &self.inner {
            let mut st = lock_state(inner);
            if let Some(span) = st.spans.get_mut(idx) {
                f(span);
            }
        }
    }
}

fn push_flight(ring: &mut VecDeque<FlightEvent>, ev: FlightEvent) {
    if ring.len() == FLIGHT_CAPACITY {
        ring.pop_front();
    }
    ring.push_back(ev);
}

/// RAII guard for an open span; closes it (stamping end times) on drop.
#[derive(Debug)]
pub struct SpanGuard {
    rec: Recorder,
    idx: Option<usize>,
}

impl SpanGuard {
    pub fn set_rows(&self, rows_in: u64, rows_out: u64) {
        if let Some(idx) = self.idx {
            self.rec.with_span(idx, |s| {
                s.rows_in = rows_in;
                s.rows_out = rows_out;
            });
        }
    }

    pub fn set_detail(&self, detail: impl Into<String>) {
        if let Some(idx) = self.idx {
            let detail = detail.into();
            self.rec.with_span(idx, |s| s.detail = detail);
        }
    }

    pub fn add_attr(&self, key: &'static str, value: f64) {
        if let Some(idx) = self.idx {
            self.rec.with_span(idx, |s| s.attrs.push((key, value)));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(idx) = self.idx {
            self.rec.close_span(idx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_inert() {
        let rec = Recorder::disabled();
        let g = rec.span(kinds::ACTION, "noop");
        g.set_rows(1, 2);
        drop(g);
        rec.record_closed(kinds::NET_EXCHANGE, "x", 0.0, 1.0, &[], "");
        assert!(rec.spans().is_empty());
        assert!(rec.flight().is_empty());
        assert!(!rec.is_enabled());
    }

    #[test]
    fn nesting_and_rebasing() {
        let rec = Recorder::new();
        rec.begin_action();
        let root = rec.span(kinds::ACTION, "a");
        rec.record_closed(
            kinds::NET_EXCHANGE,
            "x1",
            0.0,
            2.0,
            &[("latency_s", 0.5)],
            "",
        );
        // Metering reset: channel clock restarts, timeline must not rewind.
        rec.meter_reset();
        rec.record_closed(kinds::NET_EXCHANGE, "x2", 0.0, 3.0, &[], "");
        drop(root);

        let spans = rec.spans();
        assert_eq!(spans.len(), 3);
        let root = &spans[0];
        assert_eq!(root.parent, None);
        assert!((root.v_end - 5.0).abs() < 1e-12);
        let x2 = &spans[2];
        assert_eq!(x2.parent, Some(0));
        assert!((x2.v_start - 2.0).abs() < 1e-12);
        assert!((x2.v_end - 5.0).abs() < 1e-12);
        // child ⊆ parent on the virtual clock.
        for s in &spans[1..] {
            assert!(s.v_start >= root.v_start && s.v_end <= root.v_end);
        }
        assert_eq!(spans[1].attr("latency_s"), Some(0.5));
    }

    #[test]
    fn begin_action_clears_spans_keeps_flight() {
        let rec = Recorder::new();
        rec.begin_action();
        drop(rec.span(kinds::PARSE, "p"));
        assert_eq!(rec.spans().len(), 1);
        assert_eq!(rec.flight().len(), 1);
        rec.begin_action();
        assert!(rec.spans().is_empty());
        assert_eq!(rec.flight().len(), 1);
    }

    #[test]
    fn flight_ring_is_bounded() {
        let rec = Recorder::new();
        for i in 0..(FLIGHT_CAPACITY + 10) {
            rec.event(kinds::NET_FAULT, format!("e{i}"));
        }
        let fl = rec.flight();
        assert_eq!(fl.len(), FLIGHT_CAPACITY);
        assert_eq!(fl[0].label, "e10");
    }

    #[test]
    fn declared_kinds_cover_every_subsystem() {
        for sub in Subsystem::ALL {
            assert!(
                kinds::ALL.iter().any(|k| k.subsystem == sub),
                "subsystem {sub:?} declares no span kinds"
            );
        }
    }
}
