//! Property tests for the observability primitives: histogram quantile
//! error bounds and exact merges over random streams, and span-nesting
//! invariants over randomly generated span trees.

#![allow(clippy::unwrap_used)]

use pdm_obs::{kinds, Histogram, Recorder, SpanRecord};
use pdm_prng::Prng;

/// True nearest-rank quantile over the raw samples (the reference the
/// histogram estimate is checked against).
fn true_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

#[test]
fn quantile_error_bound_holds_on_random_streams() {
    let mut rng = Prng::seed_from_u64(0xB0B0_0B5E);
    for trial in 0..200 {
        let h = Histogram::new();
        let n = rng.usize_inclusive(1, 400);
        let mut samples = Vec::with_capacity(n);
        for _ in 0..n {
            // Mix magnitudes: exact linear region, mid-range, and huge.
            let v = match rng.index(3) {
                0 => rng.u64_inclusive(0, 15),
                1 => rng.u64_inclusive(16, 1 << 20),
                _ => rng.u64_inclusive(1 << 20, 1 << 50),
            };
            h.record(v);
            samples.push(v);
        }
        samples.sort_unstable();
        for q in [0.01, 0.25, 0.50, 0.75, 0.95, 0.99, 1.0] {
            let est = h.quantile(q);
            let truth = true_quantile(&samples, q);
            assert!(
                est <= truth,
                "trial {trial} q={q}: estimate {est} above true {truth}"
            );
            // Log-linear layout: bucket width is lower/16 above the linear
            // cutoff, zero below it.
            assert!(
                truth <= est + est / 16,
                "trial {trial} q={q}: true {truth} beyond bound of estimate {est}"
            );
            if truth < 16 {
                assert_eq!(est, truth, "linear region must be exact");
            }
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, n as u64);
        assert_eq!(snap.min, samples[0]);
        assert_eq!(snap.max, *samples.last().unwrap());
        assert_eq!(snap.sum, samples.iter().copied().sum::<u64>());
    }
}

#[test]
fn merge_is_exact_and_commutative_on_random_streams() {
    let mut rng = Prng::seed_from_u64(0x5EED_CAFE);
    for _ in 0..100 {
        let a = Histogram::new();
        let b = Histogram::new();
        let ab = Histogram::new();
        let ba = Histogram::new();
        let combined = Histogram::new();
        for _ in 0..rng.usize_inclusive(0, 200) {
            let magnitude = rng.u64_inclusive(0, 40);
            let v = rng.u64_inclusive(0, 1 << magnitude);
            a.record(v);
            combined.record(v);
        }
        for _ in 0..rng.usize_inclusive(0, 200) {
            let magnitude = rng.u64_inclusive(0, 40);
            let v = rng.u64_inclusive(0, 1 << magnitude);
            b.record(v);
            combined.record(v);
        }
        ab.merge(&a);
        ab.merge(&b);
        ba.merge(&b);
        ba.merge(&a);
        // Exact: merging equals having recorded the combined stream, in
        // either order.
        assert_eq!(ab.snapshot(), combined.snapshot());
        assert_eq!(ba.snapshot(), combined.snapshot());
    }
}

/// Build a random span tree on `rec`, interleaving zero-width server spans,
/// time-advancing network records, and nested children. Returns the number
/// of spans opened.
fn grow_random_tree(rec: &Recorder, rng: &mut Prng, depth: usize, clock: &mut f64) -> usize {
    let mut opened = 0;
    let branches = rng.usize_inclusive(1, 3);
    for _ in 0..branches {
        let guard = rec.span(kinds::ENGINE_QUERY, format!("d{depth}"));
        opened += 1;
        // Random interior activity: network exchanges advance virtual time,
        // server-side work does not.
        for _ in 0..rng.index(3) {
            let start = *clock;
            *clock += rng.f64_range(0.001, 0.5);
            rec.record_closed(
                kinds::NET_EXCHANGE,
                "x",
                start,
                *clock,
                &[("latency_s", *clock - start)],
                "",
            );
        }
        if depth < 3 && rng.bool() {
            opened += grow_random_tree(rec, rng, depth + 1, clock);
        }
        drop(guard);
    }
    opened
}

#[test]
fn span_nesting_invariants_hold_on_random_trees() {
    let mut rng = Prng::seed_from_u64(0xDECA_FBAD);
    for _ in 0..50 {
        let rec = Recorder::new();
        rec.begin_action();
        let root = rec.span(kinds::ACTION, "action");
        let mut clock = 0.0;
        let opened = grow_random_tree(&rec, &mut rng, 0, &mut clock);
        drop(root);

        let spans = rec.spans();
        assert!(spans.len() > opened);
        check_invariants(&spans);
    }
}

fn check_invariants(spans: &[SpanRecord]) {
    for (i, s) in spans.iter().enumerate() {
        assert!(!s.open, "span {i} ({}) left open", s.kind.full_name());
        assert!(s.v_start <= s.v_end, "span {i}: negative virtual duration");
        assert!(s.wall_start_ns <= s.wall_end_ns);
        match s.parent {
            None => {
                // Exactly one root: the action span, recorded first.
                assert_eq!(i, 0, "orphan span {i} ({})", s.kind.full_name());
            }
            Some(p) => {
                // Parents are recorded before their children, and a child's
                // virtual interval is contained in its parent's.
                assert!(p < i, "span {i} points forward to parent {p}");
                let parent = &spans[p];
                assert!(
                    parent.v_start <= s.v_start && s.v_end <= parent.v_end,
                    "span {i} [{}, {}] escapes parent {p} [{}, {}]",
                    s.v_start,
                    s.v_end,
                    parent.v_start,
                    parent.v_end
                );
            }
        }
    }
}

/// Flight-ring stress: writer threads hammer one shared recorder with
/// events and closed spans while another thread concurrently resets the
/// action timeline (`begin_action`) and rebases it (`meter_reset`). The
/// ring must stay bounded, never panic or deadlock, and survive with the
/// most recent events intact.
#[test]
fn flight_ring_survives_concurrent_resets() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    let rec = Recorder::new();
    let stop = Arc::new(AtomicBool::new(false));

    let writers: Vec<_> = (0..4)
        .map(|w| {
            let rec = rec.clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    rec.event(kinds::NET_FAULT, format!("w{w} e{i}"));
                    rec.record_closed(
                        kinds::NET_EXCHANGE,
                        format!("w{w} q{i}"),
                        i as f64,
                        i as f64 + 1.0,
                        &[("v_s", 1.0)],
                        "",
                    );
                    i += 1;
                }
                i
            })
        })
        .collect();

    let resetter = {
        let rec = rec.clone();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut n = 0u32;
            while !stop.load(Ordering::Relaxed) {
                rec.begin_action();
                rec.meter_reset();
                // Touch read paths under contention too.
                let _ = rec.flight().len();
                let _ = rec.virtual_now();
                n += 1;
            }
            n
        })
    };

    std::thread::sleep(std::time::Duration::from_millis(120));
    stop.store(true, Ordering::Relaxed);
    let written: u64 = writers.into_iter().map(|w| w.join().unwrap()).sum();
    let resets = resetter.join().unwrap();
    assert!(written > 0 && resets > 0, "both sides made progress");

    // Ring stayed bounded and is still functional after the storm.
    let flight = rec.flight();
    assert!(flight.len() <= pdm_obs::flight::FLIGHT_CAPACITY);
    rec.event(kinds::NET_BACKOFF, "post-storm");
    let flight = rec.flight();
    assert_eq!(flight.last().unwrap().label, "post-storm");
    assert!(flight.len() <= pdm_obs::flight::FLIGHT_CAPACITY);
}
