#![allow(clippy::unwrap_used)]

//! Overload-layer safety tests.
//!
//! 1. **Differential**: with no gate installed — or with a gate that never
//!    engages — a fault-free run is byte-identical to the pre-overload
//!    code path: same results, zero rejections, zero sheds.
//! 2. **Shed correctness** (property): whatever the gate sheds, the ops it
//!    *admits* return byte-identical results to an unloaded serial oracle
//!    replaying exactly the admitted subsequence. Admission control may
//!    reject work; it may never corrupt it.

use pdm_core::{
    OverloadConfig, PdmServer, Priority, ProductTree, Session, SessionConfig, SessionError,
    Strategy,
};
use pdm_net::LinkProfile;
use pdm_prng::Prng;
use pdm_workload::{build_database, TreeSpec};

fn rules() -> pdm_core::RuleTable {
    use pdm_core::{ActionKind, CmpOp, Condition, RowPredicate, Rule};
    let mut t = pdm_core::RuleTable::new();
    for table in ["link", "assy", "comp"] {
        t.add(Rule::for_all_users(
            ActionKind::Access,
            table,
            Condition::Row(RowPredicate::compare("strc_opt", CmpOp::Eq, "OPTA")),
        ));
    }
    t
}

fn fresh() -> (PdmServer, Vec<i64>) {
    let spec = TreeSpec::new(2, 3, 1.0).with_node_size(128);
    let (db, _) = build_database(&spec).unwrap();
    let server = PdmServer::new(db);
    let roots: Vec<i64> = {
        let rs = server.query("SELECT obid FROM assy ORDER BY obid").unwrap();
        rs.rows
            .iter()
            .filter_map(|r| match r.get(0) {
                pdm_sql::Value::Int(i) => Some(*i),
                _ => None,
            })
            .collect()
    };
    (server, roots)
}

fn session(server: &PdmServer) -> Session {
    Session::attach(
        server.clone(),
        SessionConfig::new("scott", Strategy::Recursive, LinkProfile::wan_256()),
        rules(),
    )
}

/// Fingerprint a tree: stable, byte-comparable.
fn tree_print(tree: &ProductTree) -> String {
    let mut ids: Vec<_> = tree
        .nodes()
        .map(|n| (n.obid, n.type_name.clone()))
        .collect();
    ids.sort();
    format!("{ids:?}")
}

/// One op of the seeded schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Op {
    Expand(i64),
    CheckOut(i64),
    CheckIn(i64),
}

fn schedule(rng: &mut Prng, roots: &[i64], len: usize) -> Vec<Op> {
    (0..len)
        .map(|_| {
            let root = roots[rng.index(roots.len())];
            match rng.index(10) {
                0..=5 => Op::Expand(root),
                6..=7 => Op::CheckOut(root),
                _ => Op::CheckIn(root),
            }
        })
        .collect()
}

/// Run one op; `Ok(Some(print))` = executed with this fingerprint,
/// `Ok(None)` = shed by admission. Granted check-out trees are remembered
/// per root so a later CheckIn can return them.
fn run_op(
    s: &mut Session,
    op: Op,
    held: &mut std::collections::HashMap<i64, ProductTree>,
) -> Result<Option<String>, SessionError> {
    let out = match op {
        Op::Expand(root) => match s.multi_level_expand(root) {
            Ok(o) => Ok(format!("expand {root}: {}", tree_print(&o.tree))),
            Err(e) => Err(e),
        },
        Op::CheckOut(root) => match s.check_out_function_shipping(root) {
            Ok(o) => match o.tree {
                Some(tree) => {
                    let print = format!("checkout {root}: granted {}", tree_print(&tree));
                    held.insert(root, tree);
                    Ok(print)
                }
                None => Ok(format!("checkout {root}: refused")),
            },
            Err(e) => Err(e),
        },
        Op::CheckIn(root) => match held.remove(&root) {
            None => Ok(format!("checkin {root}: nothing held")),
            Some(tree) => match s.check_in(&tree) {
                Ok(n) => Ok(format!("checkin {root}: {n}")),
                Err(e) => {
                    held.insert(root, tree); // still checked out
                    Err(e)
                }
            },
        },
    };
    match out {
        Ok(print) => Ok(Some(print)),
        Err(SessionError::Overloaded { .. }) => Ok(None),
        Err(e) => panic!("unexpected error in overload schedule: {e}"),
    }
}

/// Below capacity, a gated run is byte-identical to an ungated one, and
/// the gate never engages: zero rejections, zero sheds, zero abandons.
#[test]
fn below_capacity_runs_are_byte_identical_to_ungated() {
    let mut rng = Prng::seed_from_u64(0xD1FF);
    let (plain_server, roots) = fresh();
    let (gated_server, _) = fresh();
    // Generous capacity and a clock far ahead: the bucket is always full.
    let gate = gated_server
        .shared()
        .install_overload_gate(OverloadConfig::per_second(1_000_000.0));
    gate.advance_to(1.0);

    let ops = schedule(&mut rng, &roots, 120);
    let mut s_plain = session(&plain_server);
    let mut s_gated = session(&gated_server);
    let mut held_plain = std::collections::HashMap::new();
    let mut held_gated = std::collections::HashMap::new();
    for &op in &ops {
        let a = run_op(&mut s_plain, op, &mut held_plain).unwrap();
        let b = run_op(&mut s_gated, op, &mut held_gated).unwrap();
        assert!(a.is_some() && b.is_some(), "below capacity nothing sheds");
        assert_eq!(a, b, "gated and ungated outcomes must be byte-identical");
    }

    let m = gated_server.metrics().snapshot();
    assert_eq!(m.counter("admission.rejected"), 0);
    assert_eq!(m.counter("overload.shed_interactive"), 0);
    assert_eq!(m.counter("overload.shed_checkout"), 0);
    assert_eq!(m.counter("overload.shed_batch"), 0);
    assert_eq!(m.counter("overload.deadline_abandons"), 0);
    assert_eq!(m.counter("overload.lock_queue_rejections"), 0);
    assert!(m.counter("admission.admitted") > 0);
}

/// Property: under a tight gate, the admitted subsequence replayed on an
/// unloaded serial oracle produces byte-identical outcomes — shedding
/// never corrupts admitted work.
#[test]
fn admitted_ops_match_unloaded_serial_oracle() {
    pdm_prng::check::cases("overload_shed_correctness", 10, 0xACC3D, |rng| {
        let (gated_server, roots) = fresh();
        let gate = gated_server
            .shared()
            .install_overload_gate(OverloadConfig::per_second(20.0));

        // Long enough to drain the initial full bucket (burst 20) at an
        // average arrival rate of ~57/s against a 20/s refill.
        let ops = schedule(rng, &roots, 200);
        let mut s = session(&gated_server);
        let mut held = std::collections::HashMap::new();
        let mut clock = 0.0f64;
        let mut admitted: Vec<(Op, String)> = Vec::new();
        let mut sheds = 0usize;
        for &op in &ops {
            // Arrivals faster than the refill rate on average, so the
            // bucket drains and some ops shed.
            clock += rng.f64_range(0.005, 0.030);
            gate.advance_to(clock);
            match run_op(&mut s, op, &mut held).unwrap() {
                Some(print) => admitted.push((op, print)),
                None => sheds += 1,
            }
        }
        assert!(sheds > 0, "schedule must overdrive the 20/s gate");
        assert!(!admitted.is_empty());

        // Serial oracle: same initial state, no gate, replay ONLY the
        // admitted ops.
        let (oracle, _) = fresh();
        let mut o = session(&oracle);
        let mut o_held = std::collections::HashMap::new();
        for (op, expected) in &admitted {
            let got = run_op(&mut o, *op, &mut o_held).unwrap();
            assert_eq!(
                got.as_deref(),
                Some(expected.as_str()),
                "admitted op {op:?} must match the unloaded oracle"
            );
        }
    });
}

/// Concurrent misses on one cold key coalesce into a single computation:
/// exactly one leader evaluates the query, everyone else is served the
/// published result (single-flight).
#[test]
fn concurrent_cold_misses_coalesce_into_one_computation() {
    const THREADS: usize = 8;
    let (server, _) = fresh();
    // `fresh()` itself issues one cached query (the roots scan), so assert
    // on deltas from this baseline, not absolute counts.
    let base = server.metrics().snapshot();
    let shared = std::sync::Arc::clone(server.shared());
    let barrier = std::sync::Arc::new(std::sync::Barrier::new(THREADS));
    let sql = "SELECT obid, strc_opt FROM link ORDER BY obid";
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let shared = std::sync::Arc::clone(&shared);
            let barrier = std::sync::Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                shared.query_cached(sql).unwrap()
            })
        })
        .collect();
    let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    for r in &results {
        assert_eq!(r.rows, results[0].rows, "all callers see the same rows");
    }
    let m = server.metrics().snapshot();
    let delta = |name: &str| m.counter(name) - base.counter(name);
    assert_eq!(delta("cache.singleflight_leaders"), 1);
    assert_eq!(delta("cache.misses"), 1, "the engine ran exactly once");
    assert_eq!(delta("cache.hits"), (THREADS - 1) as u64);
}

/// The priority classes shed in documented order as the bucket drains:
/// batch first, then check-out, interactive last.
#[test]
fn batch_sheds_before_checkout_sheds_before_interactive() {
    let (server, roots) = fresh();
    let gate = server
        .shared()
        .install_overload_gate(OverloadConfig::per_second(50.0));
    gate.advance_to(1.0);

    let mut interactive = session(&server);
    let mut batch = session(&server);
    batch.set_priority_class(Priority::Batch);

    // Drain the bucket with interactive queries until batch starts
    // shedding; interactive must still be admitted at that point.
    let root = roots[0];
    let mut batch_shed = false;
    for _ in 0..60 {
        match batch.multi_level_expand(root) {
            Ok(_) => {}
            Err(SessionError::Overloaded { .. }) => {
                batch_shed = true;
                break;
            }
            Err(e) => panic!("unexpected: {e}"),
        }
    }
    assert!(batch_shed, "the bucket must drain past the batch reserve");
    interactive
        .multi_level_expand(root)
        .expect("interactive must still be admitted when batch sheds");
}
