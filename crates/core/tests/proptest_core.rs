#![allow(clippy::unwrap_used)]

//! Property-based tests on the PDM layer. The central property is the one
//! the whole paper rests on: **the three strategies are semantically
//! equivalent** — late evaluation, early evaluation, and the recursive
//! query return the same visible tree for any product structure, rule
//! selectivity, and user — they only differ in traffic.
//!
//! Uses the in-repo `pdm_prng::check` harness (explicit generator loops)
//! instead of proptest, which the offline build cannot fetch.

use pdm_prng::check::cases;
use pdm_prng::Prng;
use std::collections::HashMap;

use pdm_core::rules::condition::{CmpOp, Condition, RowPredicate};
use pdm_core::rules::{ActionKind, Rule};
use pdm_core::{RuleTable, Session, SessionConfig, Strategy as ClientStrategy};
use pdm_net::LinkProfile;
use pdm_sql::Value;
use pdm_workload::{build_database, TreeSpec, VisibilityMode};

fn visibility_rules() -> RuleTable {
    let mut t = RuleTable::new();
    for table in ["link", "assy", "comp"] {
        t.add(Rule::for_all_users(
            ActionKind::Access,
            table,
            Condition::Row(RowPredicate::compare("strc_opt", CmpOp::Eq, "OPTA")),
        ));
    }
    t
}

fn arb_spec(rng: &mut Prng) -> TreeSpec {
    let depth = rng.u32_inclusive(2, 4);
    let branching = rng.u32_inclusive(2, 4);
    let gamma = rng.f64_range(0.2, 1.0);
    let seed = rng.u64_inclusive(0, 499);
    let vis = if rng.bool() {
        VisibilityMode::Random { seed }
    } else {
        VisibilityMode::Deterministic
    };
    TreeSpec::new(depth, branching, gamma)
        .with_node_size(128)
        .with_visibility(vis)
        .with_attribute_seed(seed)
}

/// Strategy equivalence: identical trees under all three strategies,
/// with the traffic ordering the paper predicts.
#[test]
fn strategies_agree_and_traffic_orders() {
    cases("strategies_agree_and_traffic_orders", 32, 0x21, |rng| {
        let spec = arb_spec(rng);
        let mut trees = Vec::new();
        let mut stats = Vec::new();
        for strategy in ClientStrategy::ALL {
            let (db, _) = build_database(&spec).unwrap();
            let mut s = Session::new(
                db,
                SessionConfig::new("scott", strategy, LinkProfile::wan_256()),
                visibility_rules(),
            );
            let out = s.multi_level_expand(1).unwrap();
            trees.push(out.tree.node_ids().collect::<Vec<_>>());
            stats.push(out.stats);
        }
        assert_eq!(&trees[0], &trees[1], "late vs early tree mismatch");
        assert_eq!(&trees[0], &trees[2], "late vs recursive tree mismatch");

        let (late, early, rec) = (&stats[0], &stats[1], &stats[2]);
        // early never ships more payload, never uses more queries
        assert!(early.response_payload_bytes <= late.response_payload_bytes);
        assert_eq!(early.queries, late.queries);
        // recursive is always exactly one query / two communications
        assert_eq!(rec.queries, 1);
        assert_eq!(rec.communications, 2);
        // and never slower than navigational late evaluation
        assert!(rec.response_time() <= late.response_time() + 1e-9);
    });
}

/// Client-side (late) and server-side (SQL) evaluation of a random row
/// predicate agree on every row — the property that makes late and
/// early evaluation interchangeable.
#[test]
fn predicate_eval_agrees_client_and_server() {
    cases("predicate_eval_agrees_client_and_server", 32, 0x22, |rng| {
        let n = rng.usize_inclusive(1, 19);
        let rows: Vec<(i64, i64, bool)> = (0..n)
            .map(|_| {
                (
                    rng.i64_inclusive(0, 19),
                    rng.i64_inclusive(0, 19),
                    rng.bool(),
                )
            })
            .collect();
        let bound_a = rng.i64_inclusive(0, 19);
        let bound_b = rng.i64_inclusive(0, 19);
        let flip = rng.bool();

        // Table with three attributes.
        let mut db = pdm_sql::Database::new();
        db.execute("CREATE TABLE t (a INTEGER, b INTEGER, c BOOLEAN)")
            .unwrap();
        for (a, b, c) in &rows {
            db.execute(&format!("INSERT INTO t VALUES ({a}, {b}, {c})"))
                .unwrap();
        }

        // Random predicate: (a < A AND c = flip) OR b >= B
        let pred = RowPredicate::compare("a", CmpOp::Lt, bound_a)
            .and(RowPredicate::compare("c", CmpOp::Eq, flip))
            .or(RowPredicate::compare("b", CmpOp::GtEq, bound_b));

        // Server-side: translate to SQL.
        let sql_pred = pdm_core::rules::translate::row_predicate_expr(&pred, "t");
        let rs = db
            .query(&format!("SELECT a, b, c FROM t WHERE {sql_pred}"))
            .unwrap();
        let server_count = rs.len();

        // Client-side: evaluate on attribute maps.
        let funcs = pdm_core::functions::client_registry();
        let client_count = rows
            .iter()
            .filter(|(a, b, c)| {
                let attrs: HashMap<String, Value> = [
                    ("a".to_string(), Value::Int(*a)),
                    ("b".to_string(), Value::Int(*b)),
                    ("c".to_string(), Value::Bool(*c)),
                ]
                .into_iter()
                .collect();
                pred.eval(&attrs, &funcs)
            })
            .count();

        assert_eq!(server_count, client_count);
    });
}

/// The recursive query produced by the modificator re-parses and returns
/// the same rows when executed twice (engine determinism through the
/// full rule pipeline).
#[test]
fn modified_query_is_deterministic() {
    cases("modified_query_is_deterministic", 32, 0x23, |rng| {
        use pdm_core::query::{modificator::Modificator, recursive};
        let spec = arb_spec(rng);
        let (db, _) = build_database(&spec).unwrap();
        let server = pdm_core::PdmServer::new(db);
        let rules = visibility_rules();
        let views = std::collections::HashSet::new();
        let m = Modificator::new(&rules, "scott", ActionKind::MultiLevelExpand, &views);
        let mut q = recursive::mle_query(1);
        m.modify_recursive(&mut q).unwrap();
        let sql = q.to_string();
        let a = server.query(&sql).unwrap();
        let b = server.query(&sql).unwrap();
        assert_eq!(a.len(), b.len());
        // reparse gives the same AST
        let reparsed = pdm_sql::parser::parse_query(&sql).unwrap();
        assert_eq!(q, reparsed);
    });
}

/// Traffic accounting is self-consistent: elapsed time equals the stats'
/// response time, and volume ≥ payload.
#[test]
fn traffic_accounting_consistent() {
    cases("traffic_accounting_consistent", 32, 0x24, |rng| {
        let spec = arb_spec(rng);
        let (db, _) = build_database(&spec).unwrap();
        let mut s = Session::new(
            db,
            SessionConfig::new("scott", ClientStrategy::EarlyEval, LinkProfile::wan_512()),
            visibility_rules(),
        );
        let out = s.multi_level_expand(1).unwrap();
        assert!((s.elapsed() - out.stats.response_time()).abs() < 1e-9);
        assert!(out.stats.volume_bytes >= out.stats.response_payload_bytes as f64);
        assert_eq!(out.stats.communications, 2 * out.stats.queries);
    });
}
