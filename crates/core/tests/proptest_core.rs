//! Property-based tests on the PDM layer. The central property is the one
//! the whole paper rests on: **the three strategies are semantically
//! equivalent** — late evaluation, early evaluation, and the recursive
//! query return the same visible tree for any product structure, rule
//! selectivity, and user — they only differ in traffic.

use proptest::prelude::*;
use std::collections::HashMap;

use pdm_core::rules::condition::{CmpOp, Condition, RowPredicate};
use pdm_core::rules::{ActionKind, Rule};
use pdm_core::{RuleTable, Session, SessionConfig, Strategy as ClientStrategy};
use pdm_net::LinkProfile;
use pdm_sql::Value;
use pdm_workload::{build_database, TreeSpec, VisibilityMode};

fn visibility_rules() -> RuleTable {
    let mut t = RuleTable::new();
    for table in ["link", "assy", "comp"] {
        t.add(Rule::for_all_users(
            ActionKind::Access,
            table,
            Condition::Row(RowPredicate::compare("strc_opt", CmpOp::Eq, "OPTA")),
        ));
    }
    t
}

fn arb_spec() -> impl Strategy<Value = TreeSpec> {
    (2u32..5, 2u32..5, 0.2f64..=1.0, 0u64..500, any::<bool>()).prop_map(
        |(depth, branching, gamma, seed, random_vis)| {
            let vis = if random_vis {
                VisibilityMode::Random { seed }
            } else {
                VisibilityMode::Deterministic
            };
            TreeSpec::new(depth, branching, gamma)
                .with_node_size(128)
                .with_visibility(vis)
                .with_attribute_seed(seed)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Strategy equivalence: identical trees under all three strategies,
    /// with the traffic ordering the paper predicts.
    #[test]
    fn strategies_agree_and_traffic_orders(spec in arb_spec()) {
        let mut trees = Vec::new();
        let mut stats = Vec::new();
        for strategy in ClientStrategy::ALL {
            let (db, _) = build_database(&spec).unwrap();
            let mut s = Session::new(
                db,
                SessionConfig::new("scott", strategy, LinkProfile::wan_256()),
                visibility_rules(),
            );
            let out = s.multi_level_expand(1).unwrap();
            trees.push(out.tree.node_ids().collect::<Vec<_>>());
            stats.push(out.stats);
        }
        prop_assert_eq!(&trees[0], &trees[1], "late vs early tree mismatch");
        prop_assert_eq!(&trees[0], &trees[2], "late vs recursive tree mismatch");

        let (late, early, rec) = (&stats[0], &stats[1], &stats[2]);
        // early never ships more payload, never uses more queries
        prop_assert!(early.response_payload_bytes <= late.response_payload_bytes);
        prop_assert_eq!(early.queries, late.queries);
        // recursive is always exactly one query / two communications
        prop_assert_eq!(rec.queries, 1);
        prop_assert_eq!(rec.communications, 2);
        // and never slower than navigational late evaluation
        prop_assert!(rec.response_time() <= late.response_time() + 1e-9);
    }

    /// Client-side (late) and server-side (SQL) evaluation of a random row
    /// predicate agree on every row — the property that makes late and
    /// early evaluation interchangeable.
    #[test]
    fn predicate_eval_agrees_client_and_server(
        rows in proptest::collection::vec((0i64..20, 0i64..20, any::<bool>()), 1..20),
        bound_a in 0i64..20,
        bound_b in 0i64..20,
        flip in any::<bool>(),
    ) {
        // Table with three attributes.
        let mut db = pdm_sql::Database::new();
        db.execute("CREATE TABLE t (a INTEGER, b INTEGER, c BOOLEAN)").unwrap();
        for (a, b, c) in &rows {
            db.execute(&format!("INSERT INTO t VALUES ({a}, {b}, {c})")).unwrap();
        }

        // Random predicate: (a < A AND c = flip) OR b >= B
        let pred = RowPredicate::compare("a", CmpOp::Lt, bound_a)
            .and(RowPredicate::compare("c", CmpOp::Eq, flip))
            .or(RowPredicate::compare("b", CmpOp::GtEq, bound_b));

        // Server-side: translate to SQL.
        let sql_pred = pdm_core::rules::translate::row_predicate_expr(&pred, "t");
        let rs = db
            .query(&format!("SELECT a, b, c FROM t WHERE {sql_pred}"))
            .unwrap();
        let server_count = rs.len();

        // Client-side: evaluate on attribute maps.
        let funcs = pdm_core::functions::client_registry();
        let client_count = rows
            .iter()
            .filter(|(a, b, c)| {
                let attrs: HashMap<String, Value> = [
                    ("a".to_string(), Value::Int(*a)),
                    ("b".to_string(), Value::Int(*b)),
                    ("c".to_string(), Value::Bool(*c)),
                ]
                .into_iter()
                .collect();
                pred.eval(&attrs, &funcs)
            })
            .count();

        prop_assert_eq!(server_count, client_count);
    }

    /// The recursive query produced by the modificator re-parses and returns
    /// the same rows when executed twice (engine determinism through the
    /// full rule pipeline).
    #[test]
    fn modified_query_is_deterministic(spec in arb_spec()) {
        use pdm_core::query::{modificator::Modificator, recursive};
        let (db, _) = build_database(&spec).unwrap();
        let server = pdm_core::PdmServer::new(db);
        let rules = visibility_rules();
        let views = std::collections::HashSet::new();
        let m = Modificator::new(&rules, "scott", ActionKind::MultiLevelExpand, &views);
        let mut q = recursive::mle_query(1);
        m.modify_recursive(&mut q).unwrap();
        let sql = q.to_string();
        let a = server.query(&sql).unwrap();
        let b = server.query(&sql).unwrap();
        prop_assert_eq!(a.len(), b.len());
        // reparse gives the same AST
        let reparsed = pdm_sql::parser::parse_query(&sql).unwrap();
        prop_assert_eq!(q, reparsed);
    }

    /// Traffic accounting is self-consistent: elapsed time equals the stats'
    /// response time, and volume ≥ payload.
    #[test]
    fn traffic_accounting_consistent(spec in arb_spec()) {
        let (db, _) = build_database(&spec).unwrap();
        let mut s = Session::new(
            db,
            SessionConfig::new("scott", ClientStrategy::EarlyEval, LinkProfile::wan_512()),
            visibility_rules(),
        );
        let out = s.multi_level_expand(1).unwrap();
        prop_assert!((s.elapsed() - out.stats.response_time()).abs() < 1e-9);
        prop_assert!(out.stats.volume_bytes >= out.stats.response_payload_bytes as f64);
        prop_assert_eq!(out.stats.communications, 2 * out.stats.queries);
    }
}
