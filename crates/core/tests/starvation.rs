#![allow(clippy::unwrap_used)]

//! Lock-queue fairness regression tests: the ticketed FIFO queue must
//! grant same-object contenders in strict arrival order (no starvation by
//! lucky condvar wakeup), and the bounded queue must reject — not enqueue —
//! waiters past the configured depth.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use pdm_core::{Acquire, LockTable, SharedServerError};

/// Eight threads contend for the same object while a holder pins it
/// in-flight. Arrival order is made deterministic by spawning each waiter
/// only after the previous one is observably queued (`queue_depth`), then
/// the holder releases and each grantee immediately releases in turn.
/// The grant order must equal the arrival order, byte for byte.
#[test]
fn same_object_waiters_are_granted_in_strict_arrival_order() {
    const WAITERS: usize = 8;
    let table = Arc::new(LockTable::default());
    let ids = vec![1i64];

    // Holder takes the object in-flight; everyone else must queue.
    assert_eq!(
        table.acquire_in_flight(&ids, 0, None).unwrap(),
        Acquire::Granted
    );

    let order = Arc::new(Mutex::new(Vec::new()));
    let mut handles = Vec::new();
    for waiter in 1..=WAITERS {
        let t = Arc::clone(&table);
        let ids = ids.clone();
        let order = Arc::clone(&order);
        handles.push(std::thread::spawn(move || {
            match t
                .acquire_in_flight(&ids, waiter as u64, Some(Duration::from_secs(30)))
                .unwrap()
            {
                Acquire::Granted => {
                    order.lock().unwrap().push(waiter);
                    t.abort(&ids, waiter as u64);
                }
                Acquire::Busy => panic!("waiter {waiter} saw Busy; nothing is held"),
            }
        }));
        // Don't start the next arrival until this one is queued — this
        // pins the arrival order the FIFO must honor.
        while table.queue_depth() < waiter {
            std::thread::yield_now();
        }
    }

    table.abort(&ids, 0);
    for h in handles {
        h.join().unwrap();
    }
    let got = order.lock().unwrap().clone();
    assert_eq!(
        got,
        (1..=WAITERS).collect::<Vec<_>>(),
        "grants must follow arrival order"
    );
    assert!(table.is_empty());
    assert_eq!(table.queue_depth(), 0);
}

/// Disjoint id sets must NOT head-of-line block behind a queued conflicting
/// ticket: a waiter on {2} queued behind a waiter on {1} is granted
/// immediately once object 2 itself is free.
#[test]
fn disjoint_tickets_do_not_head_of_line_block() {
    let table = Arc::new(LockTable::default());
    // Hold object 1 in flight; a waiter on {1} queues.
    assert_eq!(
        table.acquire_in_flight(&[1], 10, None).unwrap(),
        Acquire::Granted
    );
    let t1 = {
        let table = Arc::clone(&table);
        std::thread::spawn(move || {
            table
                .acquire_in_flight(&[1], 11, Some(Duration::from_secs(30)))
                .unwrap()
        })
    };
    while table.queue_depth() < 1 {
        std::thread::yield_now();
    }
    // Object 2 is free and no queued ticket mentions it: granted at once,
    // despite a non-empty queue.
    assert_eq!(
        table.acquire_in_flight(&[2], 12, None).unwrap(),
        Acquire::Granted
    );
    table.abort(&[1], 10);
    assert_eq!(t1.join().unwrap(), Acquire::Granted);
    table.abort(&[1], 11);
    table.abort(&[2], 12);
    assert!(table.is_empty());
}

/// A bounded queue rejects the (bound+1)-th waiter with `QueueFull` instead
/// of queuing unboundedly — the lock table's contribution to overload
/// fail-fast.
#[test]
fn bounded_queue_rejects_past_depth() {
    let table = Arc::new(LockTable::default());
    table.set_queue_bound(2);
    assert_eq!(
        table.acquire_in_flight(&[1], 0, None).unwrap(),
        Acquire::Granted
    );

    let queued = Arc::new(AtomicUsize::new(0));
    let mut handles = Vec::new();
    for waiter in 1..=2u64 {
        let t = Arc::clone(&table);
        let queued = Arc::clone(&queued);
        handles.push(std::thread::spawn(move || {
            queued.fetch_add(1, Ordering::SeqCst);
            let got = t
                .acquire_in_flight(&[1], waiter, Some(Duration::from_secs(30)))
                .unwrap();
            assert_eq!(got, Acquire::Granted);
            t.abort(&[1], waiter);
        }));
        while table.queue_depth() < waiter as usize {
            std::thread::yield_now();
        }
    }

    // Queue is at its bound: the next waiter is rejected, fast.
    match table.acquire_in_flight(&[1], 99, Some(Duration::from_secs(30))) {
        Err(SharedServerError::QueueFull { depth }) => assert_eq!(depth, 2),
        other => panic!("expected QueueFull, got {other:?}"),
    }
    assert_eq!(table.queue_rejections(), 1);

    table.abort(&[1], 0);
    for h in handles {
        h.join().unwrap();
    }
    assert!(table.is_empty());
}

/// A waiter whose deadline expires leaves the queue (and frees its slot)
/// instead of lingering as a ghost ticket that blocks later arrivals.
#[test]
fn expired_waiter_leaves_the_queue() {
    let table = Arc::new(LockTable::default());
    assert_eq!(
        table.acquire_in_flight(&[1], 0, None).unwrap(),
        Acquire::Granted
    );
    let err = table
        .acquire_in_flight(&[1], 1, Some(Duration::from_millis(30)))
        .unwrap_err();
    assert!(matches!(err, SharedServerError::LockTimeout { .. }));
    assert_eq!(table.queue_depth(), 0, "expired ticket must be removed");
    // Its departure must not wedge anyone: a fresh waiter still proceeds
    // once the holder leaves.
    table.abort(&[1], 0);
    assert_eq!(
        table.acquire_in_flight(&[1], 2, None).unwrap(),
        Acquire::Granted
    );
}
