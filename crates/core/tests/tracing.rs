#![allow(clippy::unwrap_used)]

//! Cross-site causal tracing properties (DESIGN.md §15).
//!
//! Three families of guarantees:
//!
//! 1. **Structure** — every assembled tree is a single rooted tree (no
//!    orphans, no cycles), its exclusive critical-path segments are
//!    disjoint and tile the timeline, and the segment sum reconciles
//!    *bit-exactly* with the action's virtual-clock duration, under
//!    arbitrary seeded fault plans. `TraceTree::validate` checks the
//!    tiling with `to_bits` cursor equality, so `validate().unwrap()`
//!    IS the disjointness + bit-exactness assertion.
//! 2. **Byte identity off** — a session that never enables tracing is
//!    indistinguishable, to the bit, from the pre-tracing code path:
//!    same results, same traffic stats, same virtual elapsed bits.
//!    Tracing ON changes only what the volume model says it must (the
//!    16-byte context piggyback per request), never the result rows.
//! 3. **Acceptance** — a seeded 4-site replication run (primary + 3
//!    replicas) yields a tail exemplar covering client, primary, and
//!    replica spans under one trace_id, and timeout-shaped failures
//!    carry the assembled tree in their `FlightDump`.

use pdm_core::{
    attribution, Cluster, ClusterConfig, RoutedSession, RuleTable, Session, SessionConfig,
    Strategy, TailSampler, TraceContext,
};
use pdm_net::{FaultPlan, LinkProfile};
use pdm_prng::check::cases;
use pdm_prng::Prng;
use pdm_workload::{build_database, TreeSpec, VisibilityMode};

fn arb_spec(rng: &mut Prng) -> TreeSpec {
    let depth = rng.u32_inclusive(2, 4);
    let branching = rng.u32_inclusive(2, 3);
    let gamma = rng.f64_range(0.3, 1.0);
    TreeSpec::new(depth, branching, gamma)
        .with_node_size(96)
        .with_visibility(VisibilityMode::Deterministic)
}

fn session_with(spec: &TreeSpec, strategy: Strategy, link: LinkProfile) -> Session {
    let (db, _) = build_database(spec).unwrap();
    Session::new(
        db,
        SessionConfig::new("scott", strategy, link),
        RuleTable::new(),
    )
}

/// After a traced action, the tree must validate (single root, parents
/// before children, segments tile `[0, total_v]` bit-exactly) and its
/// total must be the same bits as the channel's virtual elapsed.
fn assert_reconciled(s: &Session) {
    let elapsed = s.elapsed();
    let tree = s.last_trace().expect("traced action must leave a tree");
    tree.validate().unwrap();
    assert_eq!(
        tree.total_v.to_bits(),
        elapsed.to_bits(),
        "tree total {} != channel elapsed {}",
        tree.total_v,
        elapsed
    );
    let attr = attribution(tree);
    assert_eq!(
        attr.total_v.to_bits(),
        tree.total_v.to_bits(),
        "attribution total drifted off the tree total"
    );
}

/// Structure + bit-exact reconciliation for single-session actions under
/// random fault plans (lossy links, stalls) across all three strategies.
#[test]
fn traced_trees_validate_and_reconcile_under_faults() {
    cases(
        "traced_trees_validate_and_reconcile_under_faults",
        24,
        0x77AC_0001,
        |rng| {
            let spec = arb_spec(rng);
            let strategy = Strategy::ALL[rng.index(Strategy::ALL.len())];
            let mut s = session_with(&spec, strategy, LinkProfile::wan_256());
            s.enable_tracing(rng.u64_inclusive(1, u64::MAX >> 1));
            if rng.bool() {
                s.set_fault_plan(
                    FaultPlan::lossy(rng.u64_inclusive(1, 1 << 40), rng.f64_range(0.0, 0.2))
                        .with_stall_rate(rng.f64_range(0.0, 0.1)),
                );
            }

            let expand = s.multi_level_expand(1);
            assert_reconciled(&s);
            if let Err(e) = &expand {
                // A timeout-shaped failure must carry its causal tree.
                if let Some(dump) = e.context() {
                    let tree = dump.trace.as_ref().expect("flight dump without trace");
                    tree.validate().unwrap();
                    assert_eq!(tree.outcome, e.kind_name());
                }
            }

            let _ = s.execute_update("UPDATE assy SET payload = 'trace' WHERE obid = 1");
            assert_reconciled(&s);

            let _ = s.query_all(1);
            assert_reconciled(&s);
        },
    );
}

/// Trace ids are deterministic: the same seed yields the same tree, bit
/// for bit, across two independent runs.
#[test]
fn traced_runs_are_deterministic() {
    let spec = TreeSpec::new(3, 3, 1.0).with_node_size(128);
    let mut trees = Vec::new();
    for _ in 0..2 {
        let mut s = session_with(&spec, Strategy::Recursive, LinkProfile::wan_512());
        s.enable_tracing(0xD5EED);
        s.multi_level_expand(1).unwrap();
        let mut tree = s.last_trace().unwrap().clone();
        // Wall nanoseconds are advisory real time, never deterministic.
        for span in &mut tree.spans {
            span.wall_ns = 0;
        }
        trees.push(tree);
    }
    assert_eq!(trees[0], trees[1]);
    assert_ne!(trees[0].trace_id, 0, "trace ids are non-zero");
}

/// Byte-identity differential: with tracing disabled the whole tracing
/// machinery is invisible — profiling-only and plain sessions produce
/// identical results, identical traffic stats, and identical virtual
/// elapsed bits. With tracing enabled the results are still identical;
/// only the modeled request volume grows by the context piggyback.
#[test]
fn tracing_off_is_byte_identical() {
    cases("tracing_off_is_byte_identical", 12, 0x77AC_0002, |rng| {
        let spec = arb_spec(rng);
        let strategy = Strategy::ALL[rng.index(Strategy::ALL.len())];

        let mut plain = session_with(&spec, strategy, LinkProfile::wan_256());
        let out_plain = plain.multi_level_expand(1).unwrap();

        // Profiling on, tracing off: the pre-change zero-cost path.
        let mut profiled = session_with(&spec, strategy, LinkProfile::wan_256());
        profiled.enable_profiling();
        let out_profiled = profiled.multi_level_expand(1).unwrap();

        assert_eq!(
            out_plain.tree.node_ids().collect::<Vec<_>>(),
            out_profiled.tree.node_ids().collect::<Vec<_>>()
        );
        assert_eq!(plain.stats(), profiled.stats());
        assert_eq!(plain.elapsed().to_bits(), profiled.elapsed().to_bits());

        // Tracing on: identical results; request volume grows by exactly
        // the 16-byte wire context per request, nothing else.
        let mut traced = session_with(&spec, strategy, LinkProfile::wan_256());
        traced.enable_tracing(1);
        let out_traced = traced.multi_level_expand(1).unwrap();
        assert_eq!(
            out_plain.tree.node_ids().collect::<Vec<_>>(),
            out_traced.tree.node_ids().collect::<Vec<_>>()
        );
        assert_eq!(traced.stats().queries, plain.stats().queries);
        assert_eq!(
            traced.stats().response_payload_bytes,
            plain.stats().response_payload_bytes
        );
        assert_eq!(TraceContext::WIRE_BYTES, 16);
    });
}

fn four_site_cluster(seed: u64) -> Cluster {
    let (db, _) = build_database(&TreeSpec::new(3, 3, 1.0).with_node_size(96)).unwrap();
    let cfg = ClusterConfig::default()
        .with_replicas(3)
        .with_ship_faults(FaultPlan::lossy(seed, 0.05))
        .with_max_pump_rounds(256);
    Cluster::new(db, cfg).unwrap()
}

fn routed(cluster: &Cluster, site: usize) -> RoutedSession {
    RoutedSession::connect(
        cluster,
        site,
        SessionConfig::new("scott", Strategy::Recursive, LinkProfile::wan_512()),
        RuleTable::new(),
    )
}

/// The acceptance run: a seeded 4-site cluster (primary + 3 replicas)
/// produces a tail exemplar whose segments are disjoint, cover client,
/// primary, and replica spans from a single trace_id, and sum bit-exactly
/// to the action's virtual-clock duration.
#[test]
fn four_site_run_produces_covering_tail_exemplar() {
    let mut cluster = four_site_cluster(0x45EED);
    let site = cluster.replica_sites()[0];
    let mut session = routed(&cluster, site);
    session.enable_tracing(0xACE1D);

    let mut sampler = TailSampler::new(0.0, 8);
    for root in [1i64, 1, 1] {
        let sql = format!("UPDATE assy SET payload = 'trace' WHERE obid = {root}");
        session.execute_dml(&mut cluster, &sql).unwrap();
        sampler.offer(session.last_trace().unwrap().clone());
        session.multi_level_expand(&mut cluster, root).unwrap();
        sampler.offer(session.last_trace().unwrap().clone());
    }
    assert!(sampler.retained > 0, "no tail exemplars retained");

    let exemplar = sampler.slowest().unwrap();
    exemplar.validate().unwrap();
    assert_ne!(exemplar.trace_id, 0);
    // Every span in the tree is, by construction, under this trace_id;
    // the coverage claim is about sites.
    let sites = exemplar.sites();
    assert!(
        sites.iter().any(|s| s.starts_with("client")),
        "no client span in {sites:?}"
    );
    // The write path must show primary-side work; replica applies show up
    // on the acknowledged ship. Scan all retained exemplars for one that
    // covers all three tiers from a single trace.
    let covering = sampler.exemplars().iter().find(|t| {
        let s = t.sites();
        s.iter().any(|x| x.starts_with("client"))
            && s.contains(&"primary")
            && s.iter().any(|x| x.starts_with("replica"))
    });
    let covering = covering.expect("no exemplar covers client+primary+replica");
    covering.validate().unwrap();
    let attr = attribution(covering);
    assert_eq!(attr.total_v.to_bits(), covering.total_v.to_bits());
    assert!(attr.classes.iter().any(|c| c.class == "repl.ship"));
}

/// Routed traces under seeded ship faults stay single-rooted and
/// bit-exact across a mixed read/write workload, including check-outs.
#[test]
fn routed_traces_validate_under_ship_faults() {
    cases(
        "routed_traces_validate_under_ship_faults",
        6,
        0x77AC_0003,
        |rng| {
            let mut cluster = four_site_cluster(rng.u64_inclusive(1, 1 << 40));
            let site = cluster.replica_sites()[rng.index(cluster.replica_sites().len())];
            let mut session = routed(&cluster, site);
            session.enable_tracing(rng.u64_inclusive(1, u64::MAX >> 1));

            for _ in 0..6 {
                match rng.index(3) {
                    0 => {
                        let sql = "UPDATE assy SET payload = 'x' WHERE obid = 1".to_string();
                        let _ = session.execute_dml(&mut cluster, &sql);
                    }
                    1 => {
                        let _ = session.multi_level_expand(&mut cluster, 1);
                    }
                    _ => {
                        let _ = session.query_all(&mut cluster, 1);
                    }
                }
                let tree = session.last_trace().expect("routed action left no tree");
                tree.validate().unwrap();
                let attr = attribution(tree);
                assert_eq!(attr.total_v.to_bits(), tree.total_v.to_bits());
            }
        },
    );
}

/// A replica-lag timeout carries the assembled tree — including the
/// open-and-closed watermark wait group — inside its `FlightDump`.
#[test]
fn replica_lag_timeout_carries_trace_tree() {
    let (db, _) = build_database(&TreeSpec::new(3, 3, 1.0).with_node_size(96)).unwrap();
    // ack_replicas = 0: writes acknowledge without shipping, so replicas
    // lag behind and a zero-deadline watermark wait must time out.
    let cfg = ClusterConfig::default()
        .with_replicas(3)
        .with_ack_replicas(0);
    let mut cluster = Cluster::new(db, cfg).unwrap();
    let site = cluster.replica_sites()[0];
    let mut session = routed(&cluster, site);
    session.enable_tracing(0xBAD_5EED);

    session
        .execute_dml(
            &mut cluster,
            "UPDATE assy SET payload = 'lag' WHERE obid = 1",
        )
        .unwrap();

    let mut policy = session.retry_policy().clone();
    policy.deadline = 0.0;
    session.set_retry_policy(policy);

    let err = session
        .multi_level_expand(&mut cluster, 1)
        .expect_err("read-your-writes must time out against a lagging replica");
    assert_eq!(err.kind_name(), "ReplicaLagTimeout");
    let dump = err.context().expect("lag timeout without flight dump");
    let tree = dump.trace.as_ref().expect("flight dump without trace tree");
    tree.validate().unwrap();
    assert_eq!(tree.outcome, "ReplicaLagTimeout");
    assert!(tree
        .spans
        .iter()
        .any(|s| s.kind.full_name() == "repl.wait_watermark"));
}
