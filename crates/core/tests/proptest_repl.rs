#![allow(clippy::unwrap_used)]

//! Property tests on the replication layer. The load-bearing property is
//! the crash-recovery equivalence the failover design rests on: **serially
//! replaying any durable-log prefix onto the epoch-base snapshot
//! reproduces the primary's state fingerprint at that sequence**, for any
//! seeded interleaving of DML, check-outs, and check-ins, under any seeded
//! ship-link fault stream.
//!
//! Uses the in-repo `pdm_prng::check` harness (explicit generator loops)
//! instead of proptest, which the offline build cannot fetch.

use pdm_core::{
    replay_prefix, Cluster, ClusterConfig, RoutedSession, RuleTable, SessionConfig, Strategy,
};
use pdm_net::{FaultPlan, LinkProfile};
use pdm_prng::check::cases;
use pdm_prng::Prng;
use pdm_sql::Value;
use pdm_workload::{build_database, multisite_plan, SiteOp, TreeSpec};

fn roots_of(cluster: &Cluster) -> Vec<i64> {
    cluster
        .primary()
        .query("SELECT obid FROM assy ORDER BY obid")
        .unwrap()
        .rows
        .iter()
        .filter_map(|r| match r.get(0) {
            Value::Int(i) => Some(*i),
            _ => None,
        })
        .collect()
}

fn arb_cluster(rng: &mut Prng) -> Cluster {
    let depth = rng.u32_inclusive(2, 3);
    let branching = rng.u32_inclusive(2, 3);
    let (db, _) = build_database(&TreeSpec::new(depth, branching, 1.0).with_node_size(64)).unwrap();
    let faults = if rng.bool() {
        FaultPlan::lossy(rng.u64_inclusive(1, 1 << 40), rng.f64_range(0.0, 0.25))
            .with_stall_rate(rng.f64_range(0.0, 0.15))
    } else {
        FaultPlan::none()
    };
    let cfg = ClusterConfig::default()
        .with_replicas(rng.usize_inclusive(2, 4))
        .with_ship_faults(faults)
        .with_max_pump_rounds(256);
    Cluster::new(db, cfg).unwrap()
}

fn connect(cluster: &Cluster, site: usize) -> RoutedSession {
    RoutedSession::connect(
        cluster,
        site,
        SessionConfig::new("scott", Strategy::Recursive, LinkProfile::wan_512()),
        RuleTable::new(),
    )
}

/// Replaying any recorded prefix of the durable log onto the epoch base
/// reproduces the primary fingerprint observed at that sequence.
#[test]
fn prefix_replay_matches_primary_at_seq() {
    cases(
        "prefix_replay_matches_primary_at_seq",
        10,
        0x5EED_0001,
        |rng| {
            let mut cluster = arb_cluster(rng);
            let base = cluster.epoch_base().to_vec();
            let roots = roots_of(&cluster);
            let sites = cluster.replica_sites();
            let mut sessions: Vec<RoutedSession> =
                sites.iter().map(|s| connect(&cluster, *s)).collect();
            let mut held: Vec<Option<pdm_core::ProductTree>> = vec![None; sessions.len()];

            // Drive a seeded interleaving of writes from every site, recording
            // the primary's fingerprint after each acknowledged write.
            let plan = multisite_plan(rng.u64_inclusive(0, 1 << 40), sessions.len(), 24, &roots);
            let mut observed: Vec<(u64, Vec<u8>)> = Vec::new();
            for step in plan {
                let i = step.site;
                match step.op {
                    SiteOp::Update { root, payload } => {
                        let sql =
                            format!("UPDATE assy SET payload = '{payload}' WHERE obid = {root}");
                        sessions[i].execute_dml(&mut cluster, &sql).unwrap();
                    }
                    SiteOp::CheckOut { root } => {
                        let (out, _) = sessions[i].check_out(&mut cluster, root).unwrap();
                        if let Some(tree) = out.tree {
                            held[i] = Some(tree);
                        }
                    }
                    SiteOp::CheckIn => {
                        if let Some(tree) = held[i].take() {
                            sessions[i].check_in(&mut cluster, &tree).unwrap();
                        } else {
                            continue;
                        }
                    }
                    // Reads don't extend the log; skip them here.
                    SiteOp::Expand { .. } | SiteOp::QueryAll { .. } => continue,
                }
                observed.push((cluster.feed().last_seq(), cluster.primary_fingerprint()));
            }
            assert!(!observed.is_empty(), "plan produced no writes");

            // Any recorded cut point replays byte-identically.
            let (seq, fp) = &observed[rng.index(observed.len())];
            let prefix = cluster.feed().prefix_through(*seq);
            assert_eq!(
                &replay_prefix(&base, &prefix).unwrap(),
                fp,
                "prefix replay through seq {seq} diverged from primary"
            );

            // The full log replays to the primary's current state.
            let full = cluster.feed().prefix_through(cluster.feed().last_seq());
            assert_eq!(
                replay_prefix(&base, &full).unwrap(),
                cluster.primary_fingerprint(),
                "full replay diverged from primary"
            );
        },
    );
}

/// Every replica that catches up — through whatever seeded fault stream
/// its ship link inflicted — lands on the primary's exact state.
#[test]
fn caught_up_replicas_are_byte_identical() {
    cases(
        "caught_up_replicas_are_byte_identical",
        8,
        0x5EED_0002,
        |rng| {
            let mut cluster = arb_cluster(rng);
            let roots = roots_of(&cluster);
            let site = cluster.replica_sites()[0];
            let mut session = connect(&cluster, site);
            for _ in 0..10 {
                let root = roots[rng.index(roots.len())];
                let payload = rng.ident(4, 10);
                let sql = format!("UPDATE assy SET payload = '{payload}' WHERE obid = {root}");
                session.execute_dml(&mut cluster, &sql).unwrap();
            }
            // Pump until every site is caught up; ship_once embeds the
            // divergence check, so reaching lag 0 IS the assertion — but
            // compare fingerprints explicitly anyway.
            for _ in 0..512 {
                if cluster.replica_sites().iter().all(|s| cluster.lag(*s) == 0) {
                    break;
                }
                cluster.pump().unwrap();
            }
            let primary_fp = cluster.primary_fingerprint();
            for s in cluster.replica_sites() {
                assert_eq!(cluster.lag(s), 0, "site {s} never caught up");
                assert_eq!(
                    cluster.replica(s).unwrap().fingerprint(),
                    primary_fp,
                    "site {s} caught up to a different state"
                );
            }
        },
    );
}
