#![allow(clippy::unwrap_used)]

//! Golden SQL snapshots: the exact text of the §5.2 recursive
//! tree-retrieval query and its §5.5 fully-modified form.
//!
//! These strings are the repository's contract with the paper. Any change
//! to the generators, the rule translator, or the SQL printer that alters
//! them is visible here as a full-text diff — intentional changes update
//! the snapshot in the same commit, accidental ones fail CI.

use pdm_core::query::modificator::Modificator;
use pdm_core::query::{navigational, recursive};
use pdm_core::rules::condition::{AggFunc, CmpOp, Condition, RowPredicate};
use pdm_core::rules::table::RuleTable;
use pdm_core::rules::{ActionKind, Rule};
use pdm_sql::parser::parse_query;
use std::collections::HashSet;

/// §5.2: WITH RECURSIVE over the homogenized node projection — seed term,
/// assy descent term, comp descent term, final SELECT dropping the root.
const GOLDEN_MLE: &str = "WITH RECURSIVE rtbl (type, obid, name, dec, parent, link_id, eff_from, eff_to, strc_opt, checkedout, payload) AS \
(SELECT assy.type, assy.obid, assy.name, assy.dec AS \"dec\", CAST (NULL AS integer) AS \"parent\", CAST (NULL AS integer) AS \"link_id\", CAST (NULL AS integer) AS \"eff_from\", CAST (NULL AS integer) AS \"eff_to\", assy.strc_opt, assy.checkedout, assy.payload FROM assy WHERE assy.obid = 1 \
UNION SELECT assy.type, assy.obid, assy.name, assy.dec AS \"dec\", link.left AS \"parent\", link.obid AS \"link_id\", link.eff_from, link.eff_to, link.strc_opt, assy.checkedout, assy.payload FROM rtbl JOIN link ON rtbl.obid = link.left JOIN assy ON link.right = assy.obid \
UNION SELECT comp.type, comp.obid, comp.name, '' AS \"dec\", link.left AS \"parent\", link.obid AS \"link_id\", link.eff_from, link.eff_to, link.strc_opt, comp.checkedout, comp.payload FROM rtbl JOIN link ON rtbl.obid = link.left JOIN comp ON link.right = comp.obid) \
SELECT type, obid, name, dec, parent, link_id, eff_from, eff_to, strc_opt, checkedout, payload FROM rtbl WHERE obid <> 1";

/// §5.5 steps A–D applied to [`GOLDEN_MLE`]: row visibility conditions in
/// every block (D), the ∃structure check in the comp term (C), and the
/// ∀rows + tree-aggregate conditions on the outer SELECT (A, B).
const GOLDEN_MLE_MODIFIED: &str = "WITH RECURSIVE rtbl (type, obid, name, dec, parent, link_id, eff_from, eff_to, strc_opt, checkedout, payload) AS \
(SELECT assy.type, assy.obid, assy.name, assy.dec AS \"dec\", CAST (NULL AS integer) AS \"parent\", CAST (NULL AS integer) AS \"link_id\", CAST (NULL AS integer) AS \"eff_from\", CAST (NULL AS integer) AS \"eff_to\", assy.strc_opt, assy.checkedout, assy.payload FROM assy WHERE assy.obid = 1 AND assy.strc_opt = 'OPTA' \
UNION SELECT assy.type, assy.obid, assy.name, assy.dec AS \"dec\", link.left AS \"parent\", link.obid AS \"link_id\", link.eff_from, link.eff_to, link.strc_opt, assy.checkedout, assy.payload FROM rtbl JOIN link ON rtbl.obid = link.left JOIN assy ON link.right = assy.obid WHERE link.strc_opt = 'OPTA' AND assy.strc_opt = 'OPTA' \
UNION SELECT comp.type, comp.obid, comp.name, '' AS \"dec\", link.left AS \"parent\", link.obid AS \"link_id\", link.eff_from, link.eff_to, link.strc_opt, comp.checkedout, comp.payload FROM rtbl JOIN link ON rtbl.obid = link.left JOIN comp ON link.right = comp.obid WHERE EXISTS (SELECT * FROM specified_by AS s JOIN spec ON s.right = spec.obid WHERE s.left = comp.obid) AND link.strc_opt = 'OPTA' AND comp.strc_opt = 'OPTA') \
SELECT type, obid, name, dec, parent, link_id, eff_from, eff_to, strc_opt, checkedout, payload FROM rtbl WHERE obid <> 1 \
AND NOT EXISTS (SELECT * FROM rtbl WHERE type = 'assy' AND NOT rtbl.dec = '+') \
AND (SELECT COUNT(*) FROM rtbl WHERE type = 'assy') <= 10000";

fn paper_rules() -> RuleTable {
    let mut t = RuleTable::new();
    for table in ["link", "assy", "comp"] {
        t.add(Rule::for_all_users(
            ActionKind::Access,
            table,
            Condition::Row(RowPredicate::compare("strc_opt", CmpOp::Eq, "OPTA")),
        ));
    }
    t.add(Rule::for_all_users(
        ActionKind::MultiLevelExpand,
        "assy",
        Condition::ForAllRows {
            object_type: Some("assy".into()),
            predicate: RowPredicate::compare("dec", CmpOp::Eq, "+"),
        },
    ));
    t.add(Rule::for_all_users(
        ActionKind::MultiLevelExpand,
        "assy",
        Condition::TreeAggregate {
            func: AggFunc::Count,
            attr: None,
            object_type: Some("assy".into()),
            op: CmpOp::LtEq,
            value: 10_000.0,
        },
    ));
    t.add(Rule::for_all_users(
        ActionKind::MultiLevelExpand,
        "comp",
        Condition::ExistsStructure {
            object_table: "comp".into(),
            relation_table: "specified_by".into(),
            related_table: "spec".into(),
        },
    ));
    t
}

fn modified_mle() -> pdm_sql::ast::Query {
    let rules = paper_rules();
    let views = HashSet::new();
    let m = Modificator::new(&rules, "scott", ActionKind::MultiLevelExpand, &views);
    let mut q = recursive::mle_query(1);
    m.modify_recursive(&mut q).unwrap();
    q
}

#[test]
fn recursive_query_matches_golden_snapshot() {
    assert_eq!(recursive::mle_query(1).to_string(), GOLDEN_MLE);
}

#[test]
fn fully_modified_query_matches_golden_snapshot() {
    assert_eq!(modified_mle().to_string(), GOLDEN_MLE_MODIFIED);
}

#[test]
fn golden_snapshots_reparse_to_the_generated_asts() {
    // The snapshots are not just strings: parsed back, they reproduce the
    // exact ASTs the pipeline built (printer and parser stay symmetric).
    assert_eq!(parse_query(GOLDEN_MLE).unwrap(), recursive::mle_query(1));
    assert_eq!(parse_query(GOLDEN_MLE_MODIFIED).unwrap(), modified_mle());
}

/// Every query the pipeline ships — generator output and both modificator
/// paths — must survive print→parse unchanged.
#[test]
fn pipeline_queries_round_trip() {
    let rules = paper_rules();
    let views = HashSet::new();
    let m = Modificator::new(&rules, "scott", ActionKind::MultiLevelExpand, &views);
    let mut nav = navigational::expand_query(42);
    m.modify_navigational(&mut nav).unwrap();

    for q in [
        navigational::expand_query(42),
        navigational::expand_many_query(&[1, 2, 3], "link"),
        navigational::query_all_query(1),
        navigational::fetch_node_query(7),
        recursive::mle_query(1),
        recursive::mle_query_with_root(1, true),
        modified_mle(),
        nav,
    ] {
        let sql = q.to_string();
        let reparsed = parse_query(&sql).unwrap();
        assert_eq!(q, reparsed, "round-trip mismatch for: {sql}");
    }
}
