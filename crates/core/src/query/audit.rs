//! Post-generation query audit hook.
//!
//! Static analysis of generated SQL lives in the `pdm-analyze` crate, which
//! depends on this one — so the generators here cannot call the analyzer
//! directly. Instead every query builder and the query modificator pass
//! their finished AST through [`audit`], which forwards to any hooks
//! registered at runtime. `pdm-analyze` installs a hook that runs its
//! generation-time checks (name resolution, recursive-CTE safety) and
//! panics on an error diagnostic, so in debug builds every query built by
//! tests and benches is analyzed the moment it exists.
//!
//! In release builds [`audit`] compiles to a no-op branch; without an
//! installed hook it is a single atomic load.

use std::sync::{OnceLock, RwLock};

use pdm_sql::ast::Query;

type Hook = Box<dyn Fn(&Query) + Send + Sync>;

static HOOKS: OnceLock<RwLock<Vec<Hook>>> = OnceLock::new();

/// Register a hook to run over every generated (or modified) query in
/// debug builds. Hooks stay installed for the lifetime of the process.
pub fn install_audit_hook(hook: impl Fn(&Query) + Send + Sync + 'static) {
    HOOKS
        .get_or_init(|| RwLock::new(Vec::new()))
        .write()
        .expect("query audit hook registry poisoned")
        .push(Box::new(hook));
}

/// Run every installed audit hook over `query` (debug builds only).
pub fn audit(query: &Query) {
    if cfg!(debug_assertions) {
        if let Some(hooks) = HOOKS.get() {
            for hook in hooks
                .read()
                .expect("query audit hook registry poisoned")
                .iter()
            {
                hook(query);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    static CALLS: AtomicUsize = AtomicUsize::new(0);

    #[test]
    fn installed_hook_sees_generated_queries() {
        install_audit_hook(|_| {
            CALLS.fetch_add(1, Ordering::SeqCst);
        });
        let before = CALLS.load(Ordering::SeqCst);
        let _q = crate::query::navigational::expand_query(1);
        // In debug builds (tests) the hook must have observed the build.
        assert!(CALLS.load(Ordering::SeqCst) > before);
    }
}
