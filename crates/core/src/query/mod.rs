//! SQL generation for PDM actions.
//!
//! All retrieval queries produce one **homogenized result type** (§5.2's
//! unification: one column set covering every object type plus a type
//! discriminator). Unlike the paper's illustrative query — which returns
//! link objects as separate rows — our result carries the incoming link's
//! attributes inline on each node row (`parent`, `link_id`, effectivity,
//! structure option). The information content is identical, the row count
//! equals the transferred-node count of the cost model, and every row
//! occupies the configured node size on the wire.

pub mod audit;
pub mod modificator;
pub mod navigational;
pub mod recursive;

use pdm_sql::ast::{Expr, SelectItem};
use pdm_sql::{DataType, Value};

/// Name of the recursion CTE in generated multi-level-expand queries.
pub const CTE_NAME: &str = "rtbl";

/// Column names of the homogenized result type, in order.
pub const RESULT_COLUMNS: [&str; 11] = [
    "type",
    "obid",
    "name",
    "dec",
    "parent",
    "link_id",
    "eff_from",
    "eff_to",
    "strc_opt",
    "checkedout",
    "payload",
];

/// Table names of the flattened Figure-2 schema.
pub const T_ASSY: &str = "assy";
pub const T_COMP: &str = "comp";
pub const T_LINK: &str = "link";

/// Projection of one node-kind joined with its incoming link, homogenized
/// to [`RESULT_COLUMNS`]. `node_table` is `assy` or `comp`; components have
/// no `dec` attribute and get `''` like the paper's example.
/// Homogenized node⋈link projection against a structure view's link table
/// (parallel hierarchical views, §1 footnote 1; the physical structure is
/// [`T_LINK`]).
pub(crate) fn linked_node_projection_in(node_table: &str, link_table: &str) -> Vec<SelectItem> {
    let dec: Expr = if node_table == T_ASSY {
        Expr::qcol(T_ASSY, "dec")
    } else {
        Expr::lit("")
    };
    vec![
        SelectItem::expr(Expr::qcol(node_table, "type")),
        SelectItem::expr(Expr::qcol(node_table, "obid")),
        SelectItem::expr(Expr::qcol(node_table, "name")),
        SelectItem::aliased(dec, "dec"),
        SelectItem::aliased(Expr::qcol(link_table, "left"), "parent"),
        SelectItem::aliased(Expr::qcol(link_table, "obid"), "link_id"),
        SelectItem::expr(Expr::qcol(link_table, "eff_from")),
        SelectItem::expr(Expr::qcol(link_table, "eff_to")),
        SelectItem::expr(Expr::qcol(link_table, "strc_opt")),
        SelectItem::expr(Expr::qcol(node_table, "checkedout")),
        SelectItem::expr(Expr::qcol(node_table, "payload")),
    ]
}

/// Projection of a node row *without* link context (the root seed and the
/// set-oriented Query action): link columns are NULL-cast per §5.2, and the
/// `strc_opt` column carries the node's own option.
pub(crate) fn bare_node_projection(node_table: &str) -> Vec<SelectItem> {
    let null_int = || Expr::Cast {
        expr: Box::new(Expr::Literal(Value::Null)),
        dtype: DataType::Int,
    };
    let dec: Expr = if node_table == T_ASSY {
        Expr::qcol(T_ASSY, "dec")
    } else {
        Expr::lit("")
    };
    vec![
        SelectItem::expr(Expr::qcol(node_table, "type")),
        SelectItem::expr(Expr::qcol(node_table, "obid")),
        SelectItem::expr(Expr::qcol(node_table, "name")),
        SelectItem::aliased(dec, "dec"),
        SelectItem::aliased(null_int(), "parent"),
        SelectItem::aliased(null_int(), "link_id"),
        SelectItem::aliased(null_int(), "eff_from"),
        SelectItem::aliased(null_int(), "eff_to"),
        SelectItem::expr(Expr::qcol(node_table, "strc_opt")),
        SelectItem::expr(Expr::qcol(node_table, "checkedout")),
        SelectItem::expr(Expr::qcol(node_table, "payload")),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn projections_have_result_arity() {
        assert_eq!(
            linked_node_projection_in(T_ASSY, T_LINK).len(),
            RESULT_COLUMNS.len()
        );
        assert_eq!(
            linked_node_projection_in(T_COMP, T_LINK).len(),
            RESULT_COLUMNS.len()
        );
        assert_eq!(bare_node_projection(T_ASSY).len(), RESULT_COLUMNS.len());
    }

    #[test]
    fn component_dec_is_empty_string() {
        let items = linked_node_projection_in(T_COMP, T_LINK);
        let SelectItem::Expr { expr, alias } = &items[3] else {
            panic!()
        };
        assert_eq!(alias.as_deref(), Some("dec"));
        assert_eq!(expr, &Expr::lit(""));
    }
}
