//! Navigational SQL generation: the per-node queries of the baseline PDM
//! access pattern (§1: "the navigational traversal of the product tree is
//! translated nearly one-to-one into single, isolated SQL queries").

use pdm_sql::ast::{
    Expr, Join, JoinKind, Query, Select, SetExpr, SetOp, TableFactor, TableWithJoins,
};

use super::{bare_node_projection, T_ASSY, T_COMP, T_LINK};
use crate::product::ObjectId;

/// Children-of-one-node SELECT for one node kind via a structure view.
fn expand_select(node_table: &str, link_table: &str, parent: ObjectId) -> Select {
    let mut sel = Select::new();
    sel.projection = super::linked_node_projection_in(node_table, link_table);
    let mut twj = TableWithJoins::table(link_table);
    twj.joins.push(Join {
        kind: JoinKind::Inner,
        factor: TableFactor::Table {
            name: node_table.to_string(),
            alias: None,
        },
        on: Some(Expr::eq(
            Expr::qcol(link_table, "right"),
            Expr::qcol(node_table, "obid"),
        )),
    });
    sel.from.push(twj);
    sel.and_where(Expr::eq(Expr::qcol(link_table, "left"), Expr::lit(parent)));
    sel
}

/// The single-level expand query: ONE SQL statement fetching all direct
/// children (assemblies and components, homogenized) of `parent`. This is
/// the unit the navigational strategies issue once per touched node.
pub fn expand_query(parent: ObjectId) -> Query {
    expand_query_in(parent, T_LINK)
}

/// Single-level expand through an alternative structure view (a second
/// link table over the same objects — §1 footnote 1).
pub fn expand_query_in(parent: ObjectId, link_table: &str) -> Query {
    let q = Query {
        with: None,
        body: SetExpr::SetOp {
            op: SetOp::Union,
            all: false,
            left: Box::new(SetExpr::Select(Box::new(expand_select(
                T_ASSY, link_table, parent,
            )))),
            right: Box::new(SetExpr::Select(Box::new(expand_select(
                T_COMP, link_table, parent,
            )))),
        },
        order_by: Vec::new(),
        limit: None,
    };
    super::audit::audit(&q);
    q
}

/// Batched single-level expand: children of *all* `parents` in ONE query
/// (`WHERE link.left IN (...)`). This is the IN-list batching middle ground
/// between per-node navigation and full recursion: one round trip per tree
/// *level* instead of per node. The request grows with the frontier, so
/// deep levels may need multi-packet requests (the §5.4 q_r effect).
pub fn expand_many_query(parents: &[ObjectId], link_table: &str) -> Query {
    let in_list = |sel: &mut Select| {
        let list = parents.iter().map(|p| Expr::lit(*p)).collect();
        sel.where_clause = None;
        sel.and_where(Expr::InList {
            expr: Box::new(Expr::qcol(link_table, "left")),
            list,
            negated: false,
        });
    };
    let mut assy = expand_select(T_ASSY, link_table, 0);
    in_list(&mut assy);
    let mut comp = expand_select(T_COMP, link_table, 0);
    in_list(&mut comp);
    let q = Query {
        with: None,
        body: SetExpr::SetOp {
            op: SetOp::Union,
            all: false,
            left: Box::new(SetExpr::Select(Box::new(assy))),
            right: Box::new(SetExpr::Select(Box::new(comp))),
        },
        order_by: Vec::new(),
        limit: None,
    };
    super::audit::audit(&q);
    q
}

/// The set-oriented Query action: all nodes of the product, no structure
/// information, one SQL statement (§2: "a 'query' is assumed to retrieve
/// all nodes of a tree (without the structure information)"). The root is
/// excluded — it is already at the client (footnote 4).
pub fn query_all_query(root: ObjectId) -> Query {
    let mut assy = Select::new();
    assy.projection = bare_node_projection(T_ASSY);
    assy.from.push(TableWithJoins::table(T_ASSY));
    assy.and_where(Expr::binary(
        Expr::qcol(T_ASSY, "obid"),
        pdm_sql::ast::BinOp::NotEq,
        Expr::lit(root),
    ));

    let mut comp = Select::new();
    comp.projection = bare_node_projection(T_COMP);
    comp.from.push(TableWithJoins::table(T_COMP));

    let q = Query {
        with: None,
        body: SetExpr::SetOp {
            op: SetOp::Union,
            all: false,
            left: Box::new(SetExpr::Select(Box::new(assy))),
            right: Box::new(SetExpr::Select(Box::new(comp))),
        },
        order_by: Vec::new(),
        limit: None,
    };
    super::audit::audit(&q);
    q
}

/// Fetch one object's full homogenized row by id (used to prime the client
/// cache with the root object).
pub fn fetch_node_query(obid: ObjectId) -> Query {
    let mut assy = Select::new();
    assy.projection = bare_node_projection(T_ASSY);
    assy.from.push(TableWithJoins::table(T_ASSY));
    assy.and_where(Expr::eq(Expr::qcol(T_ASSY, "obid"), Expr::lit(obid)));

    let mut comp = Select::new();
    comp.projection = bare_node_projection(T_COMP);
    comp.from.push(TableWithJoins::table(T_COMP));
    comp.and_where(Expr::eq(Expr::qcol(T_COMP, "obid"), Expr::lit(obid)));

    let q = Query {
        with: None,
        body: SetExpr::SetOp {
            op: SetOp::Union,
            all: false,
            left: Box::new(SetExpr::Select(Box::new(assy))),
            right: Box::new(SetExpr::Select(Box::new(comp))),
        },
        order_by: Vec::new(),
        limit: None,
    };
    super::audit::audit(&q);
    q
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdm_sql::parser::parse_query;

    #[test]
    fn expand_query_renders_and_reparses() {
        let q = expand_query(42);
        let sql = q.to_string();
        assert!(sql.contains("WHERE link.left = 42"));
        assert!(sql.contains("JOIN assy ON link.right = assy.obid"));
        assert!(sql.contains("UNION"));
        let q2 = parse_query(&sql).unwrap();
        assert_eq!(q, q2);
    }

    #[test]
    fn query_all_excludes_root() {
        let sql = query_all_query(1).to_string();
        assert!(sql.contains("assy.obid <> 1"));
        assert!(sql.contains("CAST (NULL AS integer) AS \"parent\""));
        parse_query(&sql).unwrap();
    }

    #[test]
    fn expand_many_uses_in_list() {
        let q = expand_many_query(&[1, 2, 3], "link");
        let sql = q.to_string();
        assert!(sql.contains("link.left IN (1, 2, 3)"));
        let q2 = parse_query(&sql).unwrap();
        assert_eq!(q, q2);
    }

    #[test]
    fn fetch_node_targets_both_tables() {
        let sql = fetch_node_query(7).to_string();
        assert!(sql.contains("assy.obid = 7"));
        assert!(sql.contains("comp.obid = 7"));
        parse_query(&sql).unwrap();
    }
}
