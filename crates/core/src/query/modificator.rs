//! The query modificator (§5.5): splices translated rule predicates into
//! generated queries — steps A (∀rows), B (tree-aggregate), C (∃structure),
//! D (row conditions) for recursive queries, and the §4.1 row-condition-only
//! variant for navigational queries.
//!
//! Reproduces the paper's closing caveat: "Another problem arises if the
//! recursive query (or a part of it) is hidden in a view. As the query
//! structure is not visible to the query modificator, the proposed
//! modifications cannot be performed." — modifying a query that references
//! a view yields [`ModError::HiddenInView`].

use std::collections::HashSet;
use std::fmt;

use pdm_sql::ast::{Expr, Query, Select, SetExpr, TableFactor};

use crate::rules::classify::ConditionClass;
use crate::rules::condition::Condition;
use crate::rules::table::RuleTable;
use crate::rules::translate::{condition_expr, row_predicate_expr};
use crate::rules::ActionKind;

/// Why a query could not be modified.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModError {
    /// The query references a view — its structure is hidden from the
    /// modificator (§5.5 remark).
    HiddenInView(String),
    /// Tree-condition injection was requested on a query without a
    /// recursive CTE to evaluate it against.
    NoRecursiveCte,
}

impl fmt::Display for ModError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModError::HiddenInView(v) => write!(
                f,
                "query references view '{v}'; its structure is hidden from the query modificator"
            ),
            ModError::NoRecursiveCte => {
                write!(f, "tree conditions require a recursive CTE in the query")
            }
        }
    }
}

impl std::error::Error for ModError {}

/// Identity of one SELECT block within a query — the coordinate system both
/// the modificator (when recording injections) and the `pdm-analyze`
/// placement check (when verifying them) use to address blocks.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BlockId {
    /// `select`-th SELECT (preorder) of the outer query body.
    Outer { select: usize },
    /// `select`-th SELECT (preorder) of `cte`'s body that does *not*
    /// reference the CTE itself — an initial (seed) term.
    CteSeed { cte: String, select: usize },
    /// `select`-th SELECT (preorder) of `cte`'s body that references the
    /// CTE in its FROM clause — a recursive term.
    CteRecursive { cte: String, select: usize },
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlockId::Outer { select } => write!(f, "outer query select #{select}"),
            BlockId::CteSeed { cte, select } => {
                write!(f, "initial term (select #{select}) of CTE '{cte}'")
            }
            BlockId::CteRecursive { cte, select } => {
                write!(f, "recursive term (select #{select}) of CTE '{cte}'")
            }
        }
    }
}

/// One recorded injection: which condition class landed in which SELECT
/// block, and the exact predicate text spliced in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectionSite {
    pub class: ConditionClass,
    pub block: BlockId,
    /// Rendered SQL of the injected predicate (the whole OR-disjunction
    /// that was AND-ed onto the block's WHERE clause).
    pub predicate: String,
}

/// What the modificator injected (observability for tests, benches, and
/// the `pdm-analyze` placement check).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ModReport {
    /// SELECT blocks that received a row-condition predicate (step D).
    pub row_injections: usize,
    /// SELECT blocks that received a ∀rows predicate (step A).
    pub forall_injections: usize,
    /// SELECT blocks that received a tree-aggregate predicate (step B).
    pub aggregate_injections: usize,
    /// SELECT blocks that received an ∃structure predicate (step C).
    pub exists_injections: usize,
    /// Every injection in splice order: (class, block, predicate).
    pub sites: Vec<InjectionSite>,
}

impl ModReport {
    pub fn total(&self) -> usize {
        self.row_injections
            + self.forall_injections
            + self.aggregate_injections
            + self.exists_injections
    }

    /// Blocks that received an injection of `class`.
    pub fn blocks_of_class(&self, class: ConditionClass) -> Vec<&BlockId> {
        self.sites
            .iter()
            .filter(|s| s.class == class)
            .map(|s| &s.block)
            .collect()
    }

    /// Record one injection, keeping the per-class counters in sync.
    fn record(&mut self, class: ConditionClass, block: BlockId, predicate: &Expr) {
        match class {
            ConditionClass::Row => self.row_injections += 1,
            ConditionClass::ForAllRows => self.forall_injections += 1,
            ConditionClass::TreeAggregate => self.aggregate_injections += 1,
            ConditionClass::ExistsStructure => self.exists_injections += 1,
        }
        self.sites.push(InjectionSite {
            class,
            block,
            predicate: predicate.to_string(),
        });
    }
}

/// Which region of the query an injection walker is visiting; determines
/// how [`BlockId`]s are minted.
#[derive(Clone, Copy)]
enum Region<'a> {
    Outer,
    Cte(&'a str),
}

impl Region<'_> {
    fn block_id(&self, sel: &Select, select: usize) -> BlockId {
        match self {
            Region::Outer => BlockId::Outer { select },
            Region::Cte(cte) => {
                if select_references_table(sel, cte) {
                    BlockId::CteRecursive {
                        cte: (*cte).to_string(),
                        select,
                    }
                } else {
                    BlockId::CteSeed {
                        cte: (*cte).to_string(),
                        select,
                    }
                }
            }
        }
    }
}

/// True if `sel`'s FROM clause references `table` directly (by name, not
/// through an alias of another table).
pub fn select_references_table(sel: &Select, table: &str) -> bool {
    sel.from.iter().any(|twj| {
        std::iter::once(&twj.base)
            .chain(twj.joins.iter().map(|j| &j.factor))
            .any(|factor| match factor {
                TableFactor::Table { name, .. } => name.eq_ignore_ascii_case(table),
                TableFactor::Derived { .. } => false,
            })
    })
}

/// The query modificator: bound to a rule table, a user, and the action
/// being performed.
pub struct Modificator<'a> {
    pub rules: &'a RuleTable,
    pub user: &'a str,
    pub action: ActionKind,
    /// Names the client knows to be views at the server; any reference to
    /// one aborts modification.
    pub view_names: &'a HashSet<String>,
}

impl<'a> Modificator<'a> {
    pub fn new(
        rules: &'a RuleTable,
        user: &'a str,
        action: ActionKind,
        view_names: &'a HashSet<String>,
    ) -> Self {
        Modificator {
            rules,
            user,
            action,
            view_names,
        }
    }

    /// §4.1: modify a navigational (non-recursive) query — row conditions
    /// only. Tree conditions cannot be evaluated within a navigational
    /// query and are skipped (the session layer handles them after
    /// retrieval where the action demands it).
    pub fn modify_navigational(&self, query: &mut Query) -> Result<ModReport, ModError> {
        self.check_views(query)?;
        let mut report = ModReport::default();
        let mut body = std::mem::replace(&mut query.body, empty_body());
        self.inject_row_conditions(&mut body, Region::Outer, &mut report);
        query.body = body;
        super::audit::audit(query);
        Ok(report)
    }

    /// §5.5 steps A–D: modify a recursive tree-retrieval query.
    pub fn modify_recursive(&self, query: &mut Query) -> Result<ModReport, ModError> {
        self.check_views(query)?;
        let cte_name = query
            .with
            .as_ref()
            .and_then(|w| if w.recursive { w.ctes.first() } else { None })
            .map(|c| c.name.clone())
            .ok_or(ModError::NoRecursiveCte)?;

        let mut report = ModReport::default();

        // Steps A + B: ∀rows and tree-aggregate conditions go into the
        // WHERE clauses of all SELECTs *outside* the recursive part.
        let forall: Vec<Expr> = self
            .rules
            .relevant_of_class(self.user, self.action, ConditionClass::ForAllRows)
            .iter()
            .map(|r| condition_expr(&r.condition, &r.object_type, &cte_name))
            .collect();
        let aggregate: Vec<Expr> = self
            .rules
            .relevant_of_class(self.user, self.action, ConditionClass::TreeAggregate)
            .iter()
            .map(|r| condition_expr(&r.condition, &r.object_type, &cte_name))
            .collect();

        let mut body = std::mem::replace(&mut query.body, empty_body());
        if let Some(pred) = Expr::disjunction(forall) {
            for_each_select_indexed(&mut body, &mut |idx, sel| {
                sel.and_where(pred.clone());
                report.record(
                    ConditionClass::ForAllRows,
                    BlockId::Outer { select: idx },
                    &pred,
                );
            });
        }
        if let Some(pred) = Expr::disjunction(aggregate) {
            for_each_select_indexed(&mut body, &mut |idx, sel| {
                sel.and_where(pred.clone());
                report.record(
                    ConditionClass::TreeAggregate,
                    BlockId::Outer { select: idx },
                    &pred,
                );
            });
        }
        // Step D (outside part): row conditions on tables referenced by the
        // outer SELECTs (usually only the CTE itself, so typically a no-op).
        self.inject_row_conditions(&mut body, Region::Outer, &mut report);
        query.body = body;

        // Steps C + D inside the recursive part.
        if let Some(with) = &mut query.with {
            for cte in &mut with.ctes {
                let name = cte.name.clone();
                let mut cte_body = std::mem::replace(&mut cte.query.body, empty_body());
                self.inject_exists_structure(&mut cte_body, Region::Cte(&name), &mut report);
                self.inject_row_conditions(&mut cte_body, Region::Cte(&name), &mut report);
                cte.query.body = cte_body;
            }
        }

        super::audit::audit(query);
        Ok(report)
    }

    /// Step D: for every SELECT, AND in the per-type disjunction of row
    /// conditions for each referenced table that has relevant rules.
    fn inject_row_conditions(
        &self,
        body: &mut SetExpr,
        region: Region<'_>,
        report: &mut ModReport,
    ) {
        for_each_select_indexed(body, &mut |idx, sel| {
            let block = region.block_id(sel, idx);
            let bindings = select_bindings(sel);
            for (table, binding) in &bindings {
                let rules = self.rules.relevant_for_type(
                    self.user,
                    self.action,
                    ConditionClass::Row,
                    table,
                );
                let preds: Vec<Expr> = rules
                    .iter()
                    .filter_map(|r| match &r.condition {
                        Condition::Row(p) => Some(row_predicate_expr(p, binding)),
                        _ => None,
                    })
                    .collect();
                if let Some(pred) = Expr::disjunction(preds) {
                    sel.and_where(pred.clone());
                    report.record(ConditionClass::Row, block.clone(), &pred);
                }
            }
        });
    }

    /// Step C: ∃structure conditions, grouped by tested object type, go
    /// into the WHERE of SELECTs whose FROM references that type's table.
    fn inject_exists_structure(
        &self,
        body: &mut SetExpr,
        region: Region<'_>,
        report: &mut ModReport,
    ) {
        let rules =
            self.rules
                .relevant_of_class(self.user, self.action, ConditionClass::ExistsStructure);
        if rules.is_empty() {
            return;
        }
        for_each_select_indexed(body, &mut |idx, sel| {
            let block = region.block_id(sel, idx);
            let bindings = select_bindings(sel);
            for (table, binding) in &bindings {
                let preds: Vec<Expr> = rules
                    .iter()
                    .filter_map(|r| match &r.condition {
                        Condition::ExistsStructure {
                            object_table,
                            relation_table,
                            related_table,
                        } if object_table == table => {
                            Some(crate::rules::translate::exists_structure_expr(
                                binding,
                                relation_table,
                                related_table,
                            ))
                        }
                        _ => None,
                    })
                    .collect();
                if let Some(pred) = Expr::disjunction(preds) {
                    sel.and_where(pred.clone());
                    report.record(ConditionClass::ExistsStructure, block.clone(), &pred);
                }
            }
        });
    }

    /// §5.5 caveat: refuse to modify a query referencing a view.
    fn check_views(&self, query: &Query) -> Result<(), ModError> {
        let mut cte_names: HashSet<String> = HashSet::new();
        if let Some(with) = &query.with {
            for cte in &with.ctes {
                cte_names.insert(cte.name.to_ascii_lowercase());
            }
        }
        let mut hidden = None;
        let mut visit_body = |body: &SetExpr| {
            for_each_select_ref(body, &mut |sel| {
                for twj in &sel.from {
                    for factor in
                        std::iter::once(&twj.base).chain(twj.joins.iter().map(|j| &j.factor))
                    {
                        if let TableFactor::Table { name, .. } = factor {
                            let lower = name.to_ascii_lowercase();
                            if !cte_names.contains(&lower) && self.view_names.contains(&lower) {
                                hidden.get_or_insert(lower);
                            }
                        }
                    }
                }
            });
        };
        if let Some(with) = &query.with {
            for cte in &with.ctes {
                visit_body(&cte.query.body);
            }
        }
        visit_body(&query.body);
        match hidden {
            Some(v) => Err(ModError::HiddenInView(v)),
            None => Ok(()),
        }
    }
}

/// (table name, binding name) pairs of a SELECT's FROM clause — the lookup
/// key the modificator (and the analyzer's placement re-derivation) use to
/// match rules against blocks. Both are lowercased.
pub fn select_bindings(sel: &Select) -> Vec<(String, String)> {
    let mut out = Vec::new();
    for twj in &sel.from {
        for factor in std::iter::once(&twj.base).chain(twj.joins.iter().map(|j| &j.factor)) {
            if let TableFactor::Table { name, alias } = factor {
                out.push((
                    name.to_ascii_lowercase(),
                    alias.as_deref().unwrap_or(name).to_ascii_lowercase(),
                ));
            }
        }
    }
    out
}

fn empty_body() -> SetExpr {
    SetExpr::Select(Box::new(Select::new()))
}

/// Apply `f` to every SELECT block of a set-expression tree (mutably),
/// passing each block's preorder index — the `select` coordinate of
/// [`BlockId`].
fn for_each_select_indexed(body: &mut SetExpr, f: &mut impl FnMut(usize, &mut Select)) {
    fn go(body: &mut SetExpr, f: &mut impl FnMut(usize, &mut Select), next: &mut usize) {
        match body {
            SetExpr::Select(sel) => {
                f(*next, sel);
                *next += 1;
            }
            SetExpr::SetOp { left, right, .. } => {
                go(left, f, next);
                go(right, f, next);
            }
        }
    }
    let mut next = 0;
    go(body, f, &mut next);
}

fn for_each_select_ref(body: &SetExpr, f: &mut impl FnMut(&Select)) {
    match body {
        SetExpr::Select(sel) => f(sel),
        SetExpr::SetOp { left, right, .. } => {
            for_each_select_ref(left, f);
            for_each_select_ref(right, f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{navigational, recursive};
    use crate::rules::condition::{AggFunc, CmpOp, RowPredicate};
    use crate::rules::{Rule, UserPattern};
    use pdm_sql::parser::parse_query;

    fn visibility_rules() -> RuleTable {
        let mut t = RuleTable::new();
        // Structure-option visibility on links and nodes.
        for table in ["link", "assy", "comp"] {
            t.add(Rule::for_all_users(
                ActionKind::Access,
                table,
                Condition::Row(RowPredicate::compare("strc_opt", CmpOp::Eq, "OPTA")),
            ));
        }
        t
    }

    #[test]
    fn navigational_injection_adds_row_conditions() {
        let rules = visibility_rules();
        let views = HashSet::new();
        let m = Modificator::new(&rules, "scott", ActionKind::MultiLevelExpand, &views);
        let mut q = navigational::expand_query(1);
        let report = m.modify_navigational(&mut q).unwrap();
        // 2 SELECTs × (link rule + node rule) = 4 injections
        assert_eq!(report.row_injections, 4);
        let sql = q.to_string();
        assert!(sql.contains("link.strc_opt = 'OPTA'"));
        assert!(sql.contains("assy.strc_opt = 'OPTA'"));
        assert!(sql.contains("comp.strc_opt = 'OPTA'"));
        parse_query(&sql).unwrap();
    }

    #[test]
    fn recursive_injection_steps_a_through_d() {
        let mut rules = visibility_rules();
        rules.add(Rule::for_all_users(
            ActionKind::MultiLevelExpand,
            "assy",
            Condition::ForAllRows {
                object_type: Some("assy".into()),
                predicate: RowPredicate::compare("dec", CmpOp::Eq, "+"),
            },
        ));
        rules.add(Rule::for_all_users(
            ActionKind::MultiLevelExpand,
            "assy",
            Condition::TreeAggregate {
                func: AggFunc::Count,
                attr: None,
                object_type: Some("assy".into()),
                op: CmpOp::LtEq,
                value: 10_000.0,
            },
        ));
        rules.add(Rule::for_all_users(
            ActionKind::MultiLevelExpand,
            "comp",
            Condition::ExistsStructure {
                object_table: "comp".into(),
                relation_table: "specified_by".into(),
                related_table: "spec".into(),
            },
        ));
        let views = HashSet::new();
        let m = Modificator::new(&rules, "scott", ActionKind::MultiLevelExpand, &views);
        let mut q = recursive::mle_query(1);
        let report = m.modify_recursive(&mut q).unwrap();

        // A/B: one outer SELECT gets both tree predicates.
        assert_eq!(report.forall_injections, 1);
        assert_eq!(report.aggregate_injections, 1);
        // C: the comp recursive term gets the ∃structure predicate.
        assert_eq!(report.exists_injections, 1);
        // D: seed (assy) + assy term (link+assy) + comp term (link+comp)
        // = 1 + 2 + 2 row-condition injections.
        assert_eq!(report.row_injections, 5);

        // The recorded sites pin each injection to its exact SELECT block.
        let rtbl = || "rtbl".to_string();
        assert_eq!(
            report.blocks_of_class(ConditionClass::ForAllRows),
            vec![&BlockId::Outer { select: 0 }]
        );
        assert_eq!(
            report.blocks_of_class(ConditionClass::TreeAggregate),
            vec![&BlockId::Outer { select: 0 }]
        );
        assert_eq!(
            report.blocks_of_class(ConditionClass::ExistsStructure),
            vec![&BlockId::CteRecursive {
                cte: rtbl(),
                select: 2
            }]
        );
        assert_eq!(
            report.blocks_of_class(ConditionClass::Row),
            vec![
                &BlockId::CteSeed {
                    cte: rtbl(),
                    select: 0
                },
                &BlockId::CteRecursive {
                    cte: rtbl(),
                    select: 1
                },
                &BlockId::CteRecursive {
                    cte: rtbl(),
                    select: 1
                },
                &BlockId::CteRecursive {
                    cte: rtbl(),
                    select: 2
                },
                &BlockId::CteRecursive {
                    cte: rtbl(),
                    select: 2
                },
            ]
        );
        // Every recorded predicate is the exact text spliced into the query.
        let sql = q.to_string();
        for site in &report.sites {
            assert!(
                sql.contains(&site.predicate),
                "recorded predicate '{}' not in query",
                site.predicate
            );
        }

        let sql = q.to_string();
        assert!(sql.contains(
            "NOT EXISTS (SELECT * FROM rtbl WHERE type = 'assy' AND NOT rtbl.dec = '+')"
        ));
        assert!(sql.contains("(SELECT COUNT(*) FROM rtbl WHERE type = 'assy') <= 10000"));
        assert!(sql.contains("EXISTS (SELECT * FROM specified_by AS s"));
        parse_query(&sql).unwrap();
    }

    #[test]
    fn view_reference_refused() {
        let rules = visibility_rules();
        let mut views = HashSet::new();
        views.insert("assy".to_string()); // pretend assy is a view
        let m = Modificator::new(&rules, "scott", ActionKind::MultiLevelExpand, &views);
        let mut q = recursive::mle_query(1);
        let err = m.modify_recursive(&mut q).unwrap_err();
        assert_eq!(err, ModError::HiddenInView("assy".into()));
    }

    #[test]
    fn cte_name_is_not_mistaken_for_view() {
        let rules = visibility_rules();
        let mut views = HashSet::new();
        views.insert("rtbl".to_string()); // a view named like the CTE
        let m = Modificator::new(&rules, "scott", ActionKind::MultiLevelExpand, &views);
        let mut q = recursive::mle_query(1);
        // the query's rtbl references are the CTE, not the view
        assert!(m.modify_recursive(&mut q).is_ok());
    }

    #[test]
    fn non_recursive_query_rejected_for_tree_injection() {
        let rules = visibility_rules();
        let views = HashSet::new();
        let m = Modificator::new(&rules, "scott", ActionKind::MultiLevelExpand, &views);
        let mut q = navigational::expand_query(1);
        assert_eq!(
            m.modify_recursive(&mut q).unwrap_err(),
            ModError::NoRecursiveCte
        );
    }

    #[test]
    fn irrelevant_rules_not_injected() {
        let mut rules = RuleTable::new();
        rules.add(Rule::new(
            UserPattern::Named("tiger".into()), // different user
            ActionKind::Access,
            "assy",
            Condition::Row(RowPredicate::compare("dec", CmpOp::Eq, "+")),
        ));
        let views = HashSet::new();
        let m = Modificator::new(&rules, "scott", ActionKind::MultiLevelExpand, &views);
        let mut q = navigational::expand_query(1);
        let report = m.modify_navigational(&mut q).unwrap();
        assert_eq!(report.total(), 0);
    }

    #[test]
    fn multiple_rules_same_type_form_disjunction() {
        let mut rules = RuleTable::new();
        rules.add(Rule::for_all_users(
            ActionKind::Access,
            "assy",
            Condition::Row(RowPredicate::compare("dec", CmpOp::Eq, "+")),
        ));
        rules.add(Rule::for_all_users(
            ActionKind::Access,
            "assy",
            Condition::Row(RowPredicate::compare("name", CmpOp::NotEq, "secret")),
        ));
        let views = HashSet::new();
        let m = Modificator::new(&rules, "scott", ActionKind::Query, &views);
        let mut q = navigational::fetch_node_query(1);
        m.modify_navigational(&mut q).unwrap();
        let sql = q.to_string();
        assert!(
            sql.contains("(assy.dec = '+' OR assy.name <> 'secret')"),
            "disjunction missing in {sql}"
        );
    }
}
