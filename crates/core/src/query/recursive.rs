//! Recursive SQL generation (§5.2): one `WITH RECURSIVE` query that
//! collects an entire (visible) object tree — the paper's Approach 2.

use pdm_sql::ast::{
    Cte, Expr, Join, JoinKind, Query, Select, SelectItem, SetExpr, SetOp, TableFactor,
    TableWithJoins, With,
};

use super::{bare_node_projection, CTE_NAME, T_ASSY, T_COMP, T_LINK};
use crate::product::ObjectId;

/// One recursive term: `rtbl ⋈ link ⋈ node_table`, projecting the
/// homogenized columns.
fn recursive_term(node_table: &str, link_table: &str) -> Select {
    let mut sel = Select::new();
    sel.projection = super::linked_node_projection_in(node_table, link_table);
    let mut twj = TableWithJoins::table(CTE_NAME);
    twj.joins.push(Join {
        kind: JoinKind::Inner,
        factor: TableFactor::Table {
            name: link_table.to_string(),
            alias: None,
        },
        on: Some(Expr::eq(
            Expr::qcol(CTE_NAME, "obid"),
            Expr::qcol(link_table, "left"),
        )),
    });
    twj.joins.push(Join {
        kind: JoinKind::Inner,
        factor: TableFactor::Table {
            name: node_table.to_string(),
            alias: None,
        },
        on: Some(Expr::eq(
            Expr::qcol(link_table, "right"),
            Expr::qcol(node_table, "obid"),
        )),
    });
    sel.from.push(twj);
    sel
}

/// The seed term: the root assembly with NULL link columns (§5.2's first
/// branch).
fn seed_term(root: ObjectId) -> Select {
    let mut sel = Select::new();
    sel.projection = bare_node_projection(T_ASSY);
    sel.from.push(TableWithJoins::table(T_ASSY));
    sel.and_where(Expr::eq(Expr::qcol(T_ASSY, "obid"), Expr::lit(root)));
    sel
}

/// Build the multi-level-expand recursive query for the subtree rooted at
/// `root`:
///
/// ```text
/// WITH RECURSIVE rtbl (type, obid, name, dec, parent, link_id, eff_from,
///                      eff_to, strc_opt, payload) AS
///   ( seed(root)  UNION  rtbl⋈link⋈assy  UNION  rtbl⋈link⋈comp )
/// SELECT ... FROM rtbl WHERE obid <> root
/// ```
///
/// The final SELECT drops the root row (already at the client, footnote 4);
/// rule predicates are spliced in afterwards by the
/// [modificator](super::modificator).
pub fn mle_query(root: ObjectId) -> Query {
    mle_query_with_root(root, false)
}

/// Like [`mle_query`], but optionally *including* the root's own row in the
/// result. Federated expansion needs this: when the traversal continues at a
/// remote site, the remote subtree root's data has not been transferred by
/// any parent-side join, so the remote query must ship it (and the client
/// re-parents it onto the mount's parent).
pub fn mle_query_with_root(root: ObjectId, include_root: bool) -> Query {
    mle_query_in(root, T_LINK, include_root)
}

/// Recursive MLE through an alternative structure view's link table.
pub fn mle_query_in(root: ObjectId, link_table: &str, include_root: bool) -> Query {
    let cte_body = Query {
        with: None,
        body: SetExpr::SetOp {
            op: SetOp::Union,
            all: false,
            left: Box::new(SetExpr::SetOp {
                op: SetOp::Union,
                all: false,
                left: Box::new(SetExpr::Select(Box::new(seed_term(root)))),
                right: Box::new(SetExpr::Select(Box::new(recursive_term(
                    T_ASSY, link_table,
                )))),
            }),
            right: Box::new(SetExpr::Select(Box::new(recursive_term(
                T_COMP, link_table,
            )))),
        },
        order_by: Vec::new(),
        limit: None,
    };

    let mut final_select = Select::new();
    final_select.projection = super::RESULT_COLUMNS
        .iter()
        .map(|c| SelectItem::expr(Expr::col(*c)))
        .collect();
    final_select.from.push(TableWithJoins::table(CTE_NAME));
    if !include_root {
        final_select.and_where(Expr::binary(
            Expr::col("obid"),
            pdm_sql::ast::BinOp::NotEq,
            Expr::lit(root),
        ));
    }

    let q = Query {
        with: Some(With {
            recursive: true,
            ctes: vec![Cte {
                name: CTE_NAME.to_string(),
                columns: super::RESULT_COLUMNS
                    .iter()
                    .map(|c| c.to_string())
                    .collect(),
                query: cte_body,
            }],
        }),
        body: SetExpr::Select(Box::new(final_select)),
        order_by: Vec::new(),
        limit: None,
    };
    super::audit::audit(&q);
    q
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdm_sql::parser::parse_query;

    #[test]
    fn mle_query_renders_and_reparses() {
        let q = mle_query(1);
        let sql = q.to_string();
        assert!(sql.starts_with("WITH RECURSIVE rtbl"));
        assert!(sql.contains("FROM rtbl JOIN link ON rtbl.obid = link.left"));
        assert!(sql.contains("JOIN comp ON link.right = comp.obid"));
        assert!(sql.contains("WHERE obid <> 1"));
        let q2 = parse_query(&sql).unwrap();
        assert_eq!(q, q2);
    }

    #[test]
    fn cte_declares_result_columns() {
        let q = mle_query(1);
        let with = q.with.as_ref().unwrap();
        assert!(with.recursive);
        assert_eq!(
            with.ctes[0].columns.len(),
            super::super::RESULT_COLUMNS.len()
        );
    }

    #[test]
    fn body_is_three_term_union() {
        let q = mle_query(5);
        let with = q.with.unwrap();
        let terms = with.ctes[0].query.body.flatten_setop(SetOp::Union);
        assert_eq!(terms.len(), 3);
    }
}
