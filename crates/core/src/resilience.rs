//! Client-side resilience: retry with capped exponential backoff and
//! deterministic jitter, plus a circuit breaker that degrades the recursive
//! strategy to level-batched navigation when the single big query keeps
//! dying on a faulty link.
//!
//! The paper tunes for a *reliable* WAN; a worldwide deployment also has to
//! survive an unreliable one. The policy objects here are deliberately pure
//! data + arithmetic on the virtual clock — no wall time, no global RNG —
//! so every simulated failure scenario replays exactly.

use pdm_prng::splitmix64;

/// Retry budget for one metered exchange: how many attempts, how long to
/// back off between them, and a per-action deadline on the virtual clock.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts including the first (1 = no retries).
    pub max_attempts: u32,
    /// Backoff before the first retry, in virtual seconds; doubles per
    /// retry (capped exponential).
    pub base_backoff: f64,
    /// Backoff cap in virtual seconds.
    pub max_backoff: f64,
    /// Seed of the deterministic jitter stream.
    pub jitter_seed: u64,
    /// Per-action deadline on the virtual clock, in seconds; an attempt
    /// whose backoff would cross it fails instead. `f64::INFINITY` = none.
    pub deadline: f64,
}

impl RetryPolicy {
    /// No retries: first failure is final. The default for sessions without
    /// an installed fault plan.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_backoff: 0.0,
            max_backoff: 0.0,
            jitter_seed: 0,
            deadline: f64::INFINITY,
        }
    }

    /// A sensible WAN default: 4 attempts, 1 s → 2 s → 4 s backoff (±50%
    /// jitter), no deadline.
    pub fn default_wan() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: 1.0,
            max_backoff: 30.0,
            jitter_seed: 0x9E3779B97F4A7C15,
            deadline: f64::INFINITY,
        }
    }

    pub fn with_max_attempts(mut self, n: u32) -> Self {
        assert!(n >= 1);
        self.max_attempts = n;
        self
    }

    pub fn with_deadline(mut self, seconds: f64) -> Self {
        assert!(seconds > 0.0);
        self.deadline = seconds;
        self
    }

    pub fn with_jitter_seed(mut self, seed: u64) -> Self {
        self.jitter_seed = seed;
        self
    }

    /// Backoff before retry `retry` (1-based), salted so concurrent
    /// exchanges draw different jitter. Equal-jitter scheme: half the
    /// capped exponential is guaranteed, half is jittered.
    pub fn backoff(&self, retry: u32, salt: u64) -> f64 {
        if self.base_backoff <= 0.0 {
            return 0.0;
        }
        let exp = self.base_backoff * 2f64.powi(retry.saturating_sub(1).min(62) as i32);
        let capped = exp.min(self.max_backoff);
        let bits = splitmix64(self.jitter_seed ^ splitmix64(salt.wrapping_add(retry as u64)));
        let unit = (bits >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
        capped * (0.5 + 0.5 * unit)
    }
}

/// Circuit breaker for strategy degradation, with two independent rungs:
///
/// 1. **Strategy rung** — after `failure_threshold` consecutive
///    recursive-query failures the breaker trips and the session falls
///    back to level-batched navigational expansion; after `cooldown`
///    degraded actions it half-opens and lets one recursive probe through.
/// 2. **Staleness rung** — after `failure_threshold` consecutive
///    read-your-writes watermark timeouts against a lagging replica, the
///    breaker stops failing reads outright and serves them from the stale
///    replica with an explicit staleness annotation; after `cooldown`
///    stale reads it half-opens and lets one watermark wait through.
#[derive(Debug, Clone, PartialEq)]
pub struct DegradationController {
    failure_threshold: u32,
    cooldown: u32,
    consecutive_failures: u32,
    tripped: bool,
    skipped: u32,
    lag_failures: u32,
    lag_tripped: bool,
    lag_skipped: u32,
    stale_reads_served: u64,
}

impl Default for DegradationController {
    fn default() -> Self {
        DegradationController::new(2, 8)
    }
}

impl DegradationController {
    pub fn new(failure_threshold: u32, cooldown: u32) -> Self {
        assert!(failure_threshold >= 1);
        DegradationController {
            failure_threshold,
            cooldown,
            consecutive_failures: 0,
            tripped: false,
            skipped: 0,
            lag_failures: 0,
            lag_tripped: false,
            lag_skipped: 0,
            stale_reads_served: 0,
        }
    }

    /// Whether the breaker is currently open (degraded mode).
    pub fn is_open(&self) -> bool {
        self.tripped
    }

    /// Consecutive failures observed so far.
    pub fn consecutive_failures(&self) -> u32 {
        self.consecutive_failures
    }

    /// Decide whether the next action should skip the fragile path.
    /// Mutates the half-open bookkeeping: while tripped, every `cooldown`
    /// calls one probe is allowed through (returns `false`).
    pub fn should_degrade(&mut self) -> bool {
        if !self.tripped {
            return false;
        }
        if self.skipped >= self.cooldown {
            self.skipped = 0; // half-open: allow one probe
            false
        } else {
            self.skipped += 1;
            true
        }
    }

    /// The fragile path completed: close the breaker.
    pub fn record_success(&mut self) {
        self.consecutive_failures = 0;
        self.tripped = false;
        self.skipped = 0;
    }

    /// The fragile path failed (after its own retries).
    pub fn record_failure(&mut self) {
        self.consecutive_failures += 1;
        if self.consecutive_failures >= self.failure_threshold {
            self.tripped = true;
            self.skipped = 0;
        }
    }

    /// Manually close the breaker.
    pub fn reset(&mut self) {
        self.record_success();
    }

    // -- staleness rung -----------------------------------------------------

    /// Whether the staleness rung is open: reads are currently served from
    /// the lagging replica (annotated) instead of failing on the watermark.
    pub fn is_stale_open(&self) -> bool {
        self.lag_tripped
    }

    /// Decide whether the next read should be served stale instead of
    /// failing. Mutates the half-open bookkeeping: while tripped, every
    /// `cooldown` stale reads one full watermark wait is allowed through
    /// (returns `false`). Counts the stale reads it grants.
    pub fn should_read_stale(&mut self) -> bool {
        if !self.lag_tripped {
            return false;
        }
        if self.lag_skipped >= self.cooldown {
            self.lag_skipped = 0; // half-open: allow one watermark probe
            false
        } else {
            self.lag_skipped += 1;
            self.stale_reads_served += 1;
            true
        }
    }

    /// A watermark wait completed in time: close the staleness rung.
    pub fn record_lag_success(&mut self) {
        self.lag_failures = 0;
        self.lag_tripped = false;
        self.lag_skipped = 0;
    }

    /// A watermark wait timed out (after its own retries). Unlike the
    /// strategy rung, the wait always runs before the stale decision, so
    /// failures keep arriving while tripped — only a FRESH trip resets the
    /// half-open counter, or the cooldown probe could never come due.
    pub fn record_lag_failure(&mut self) {
        self.lag_failures += 1;
        if self.lag_failures >= self.failure_threshold && !self.lag_tripped {
            self.lag_tripped = true;
            self.lag_skipped = 0;
        }
    }

    /// Stale reads served while the staleness rung was open.
    pub fn stale_reads_served(&self) -> u64 {
        self.stale_reads_served
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_and_caps() {
        let p = RetryPolicy::default_wan();
        let b1 = p.backoff(1, 0);
        let b5 = p.backoff(5, 0);
        let b20 = p.backoff(20, 0);
        // equal-jitter keeps every draw within [cap/2, cap]
        assert!((0.5..=1.0).contains(&b1), "b1 = {b1}");
        assert!((8.0..=16.0).contains(&b5), "b5 = {b5}");
        assert!((15.0..=30.0).contains(&b20), "b20 = {b20}");
    }

    #[test]
    fn backoff_is_deterministic_and_salted() {
        let p = RetryPolicy::default_wan();
        assert_eq!(p.backoff(2, 7), p.backoff(2, 7));
        assert_ne!(p.backoff(2, 7), p.backoff(2, 8));
        assert_ne!(p.backoff(2, 7), p.clone().with_jitter_seed(1).backoff(2, 7));
    }

    #[test]
    fn none_policy_never_backs_off() {
        let p = RetryPolicy::none();
        assert_eq!(p.max_attempts, 1);
        assert_eq!(p.backoff(1, 0), 0.0);
    }

    #[test]
    fn breaker_trips_after_threshold_and_half_opens() {
        let mut b = DegradationController::new(2, 3);
        assert!(!b.should_degrade());
        b.record_failure();
        assert!(!b.is_open());
        b.record_failure();
        assert!(b.is_open());
        // degraded for `cooldown` actions…
        assert!(b.should_degrade());
        assert!(b.should_degrade());
        assert!(b.should_degrade());
        // …then one probe is allowed through
        assert!(!b.should_degrade());
        // a successful probe closes the breaker
        b.record_success();
        assert!(!b.is_open());
        assert!(!b.should_degrade());
    }

    #[test]
    fn staleness_rung_trips_and_half_opens_independently() {
        let mut b = DegradationController::new(2, 3);
        // lag failures do not touch the strategy rung
        b.record_lag_failure();
        assert!(!b.is_stale_open());
        assert!(!b.should_read_stale());
        b.record_lag_failure();
        assert!(b.is_stale_open());
        assert!(!b.is_open(), "lag rung must not trip the strategy rung");
        // stale reads are granted and counted for `cooldown` reads…
        assert!(b.should_read_stale());
        assert!(b.should_read_stale());
        assert!(b.should_read_stale());
        assert_eq!(b.stale_reads_served(), 3);
        // …then one watermark probe is allowed through
        assert!(!b.should_read_stale());
        assert_eq!(b.stale_reads_served(), 3);
        // a caught-up probe closes the rung
        b.record_lag_success();
        assert!(!b.is_stale_open());
        assert!(!b.should_read_stale());
        // the counter is cumulative across trips
        b.record_lag_failure();
        b.record_lag_failure();
        assert!(b.should_read_stale());
        assert_eq!(b.stale_reads_served(), 4);
    }

    #[test]
    fn strategy_rung_does_not_trip_staleness_rung() {
        let mut b = DegradationController::new(1, 2);
        b.record_failure();
        assert!(b.is_open());
        assert!(!b.is_stale_open());
        assert!(!b.should_read_stale());
        b.record_lag_success();
        assert!(b.is_open(), "lag success must not close the strategy rung");
    }

    #[test]
    fn success_resets_failure_streak() {
        let mut b = DegradationController::new(3, 1);
        b.record_failure();
        b.record_failure();
        b.record_success();
        b.record_failure();
        b.record_failure();
        assert!(!b.is_open());
        b.record_failure();
        assert!(b.is_open());
    }
}
