//! Client-side product structure: what a PDM user actually sees after an
//! expand — the reassembled object tree (§1: structure information is
//! "retrieved, interpreted, and reassembled" from the flat tables).

use std::collections::{BTreeMap, HashMap};

use pdm_sql::Value;

/// Object identifier (the `obid` of the flattened schema).
pub type ObjectId = i64;

/// One node of the reassembled product structure.
#[derive(Debug, Clone, PartialEq)]
pub struct ProductNode {
    pub obid: ObjectId,
    /// Parent object, `None` for the root.
    pub parent: Option<ObjectId>,
    /// Type discriminator from the homogenized result ("assy" / "comp").
    pub type_name: String,
    pub name: String,
    /// All attributes of the transferred row, for rule evaluation and
    /// display.
    pub attrs: HashMap<String, Value>,
}

impl ProductNode {
    pub fn is_assembly(&self) -> bool {
        self.type_name == "assy"
    }

    pub fn is_component(&self) -> bool {
        self.type_name == "comp"
    }
}

/// A reassembled product tree.
#[derive(Debug, Clone, Default)]
pub struct ProductTree {
    root: Option<ObjectId>,
    nodes: BTreeMap<ObjectId, ProductNode>,
    children: HashMap<ObjectId, Vec<ObjectId>>,
}

impl ProductTree {
    pub fn new() -> Self {
        ProductTree::default()
    }

    /// Insert a node; the first node without a parent (or the first node
    /// overall) becomes the root.
    pub fn insert(&mut self, node: ProductNode) {
        if let Some(p) = node.parent {
            self.children.entry(p).or_default().push(node.obid);
        }
        if self.root.is_none() && node.parent.is_none() {
            self.root = Some(node.obid);
        }
        self.nodes.insert(node.obid, node);
    }

    pub fn root(&self) -> Option<ObjectId> {
        self.root
    }

    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    pub fn contains(&self, obid: ObjectId) -> bool {
        self.nodes.contains_key(&obid)
    }

    pub fn node(&self, obid: ObjectId) -> Option<&ProductNode> {
        self.nodes.get(&obid)
    }

    pub fn children(&self, obid: ObjectId) -> &[ObjectId] {
        self.children.get(&obid).map(Vec::as_slice).unwrap_or(&[])
    }

    /// All node ids in ascending obid order.
    pub fn node_ids(&self) -> impl Iterator<Item = ObjectId> + '_ {
        self.nodes.keys().copied()
    }

    pub fn nodes(&self) -> impl Iterator<Item = &ProductNode> {
        self.nodes.values()
    }

    /// Number of nodes with the given type discriminator.
    pub fn count_of_type(&self, type_name: &str) -> usize {
        self.nodes
            .values()
            .filter(|n| n.type_name == type_name)
            .count()
    }

    /// Depth of the tree below the root (root alone = 0). Nodes whose
    /// parents were not transferred are treated as depth-unknown and
    /// skipped.
    pub fn depth(&self) -> u32 {
        let Some(root) = self.root else { return 0 };
        let mut max = 0;
        let mut stack = vec![(root, 0u32)];
        while let Some((id, d)) = stack.pop() {
            max = max.max(d);
            for &c in self.children(id) {
                stack.push((c, d + 1));
            }
        }
        max
    }

    /// Nodes reachable from the root (sanity check: equals `len()` when the
    /// transfer was complete and consistent).
    pub fn reachable_from_root(&self) -> usize {
        let Some(root) = self.root else { return 0 };
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            if seen.insert(id) {
                stack.extend(self.children(id).iter().copied());
            }
        }
        seen.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(obid: ObjectId, parent: Option<ObjectId>, ty: &str) -> ProductNode {
        ProductNode {
            obid,
            parent,
            type_name: ty.to_string(),
            name: format!("N{obid}"),
            attrs: HashMap::new(),
        }
    }

    fn sample() -> ProductTree {
        // 1 -> {2, 3}, 2 -> {4 (comp)}
        let mut t = ProductTree::new();
        t.insert(node(1, None, "assy"));
        t.insert(node(2, Some(1), "assy"));
        t.insert(node(3, Some(1), "assy"));
        t.insert(node(4, Some(2), "comp"));
        t
    }

    #[test]
    fn root_detection_and_children() {
        let t = sample();
        assert_eq!(t.root(), Some(1));
        assert_eq!(t.children(1), &[2, 3]);
        assert_eq!(t.children(2), &[4]);
        assert!(t.children(4).is_empty());
    }

    #[test]
    fn counts_and_depth() {
        let t = sample();
        assert_eq!(t.len(), 4);
        assert_eq!(t.count_of_type("assy"), 3);
        assert_eq!(t.count_of_type("comp"), 1);
        assert_eq!(t.depth(), 2);
        assert_eq!(t.reachable_from_root(), 4);
    }

    #[test]
    fn node_kind_helpers() {
        let t = sample();
        assert!(t.node(1).unwrap().is_assembly());
        assert!(t.node(4).unwrap().is_component());
    }

    #[test]
    fn orphaned_subtree_not_reachable() {
        let mut t = sample();
        t.insert(node(10, Some(99), "comp")); // parent never transferred
        assert_eq!(t.len(), 5);
        assert_eq!(t.reachable_from_root(), 4);
    }

    #[test]
    fn empty_tree() {
        let t = ProductTree::new();
        assert!(t.is_empty());
        assert_eq!(t.root(), None);
        assert_eq!(t.depth(), 0);
        assert_eq!(t.reachable_from_root(), 0);
    }
}
