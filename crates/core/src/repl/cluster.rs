//! The replication coordinator: one primary, N replicas, deterministic
//! shipping, semi-synchronous acknowledgement, and lease-based failover.
//!
//! # Acknowledgement and failover safety
//!
//! A write is *acknowledged* only after it is durable on the primary AND
//! applied by at least `ack_replicas` replicas. Promotion picks the
//! replica with the highest watermark; because replay is strictly
//! sequential, that watermark is at least the sequence of every
//! acknowledged write — **no acknowledged commit is ever lost** to a
//! failover. Unacknowledged commits beyond the promoted watermark are
//! discarded (the client never got its ack), exactly as a crash discards
//! an unpublished commit.
//!
//! # Lease and fencing
//!
//! The primary holds a lease of `lease` virtual seconds. A writer that
//! finds the primary inside an outage window waits the outage out if it
//! ends before the lease expires; otherwise it waits to lease expiry and
//! the coordinator promotes. Promotion bumps the epoch; ship batches carry
//! their epoch and replicas reject stale ones ([`super::ReplError::Fenced`]),
//! so the deposed primary cannot re-assert itself — when its outage ends
//! it heals by re-bootstrapping from the new primary's snapshot.
//!
//! # Promotion = crash recovery
//!
//! The promoted replica's state is, by construction, the serial replay of
//! a prefix of the old primary's durable log — the same oracle as crash
//! recovery. Promotion therefore finishes exactly like recovery does:
//! outstanding check-out grants are swept back to `FALSE` through the new
//! primary's durable write path (every session at the old primary is
//! presumed lost), and [`FailoverReport`] retains the epoch base and the
//! replayed prefix so tests can verify byte-identity independently.

use std::collections::BTreeMap;
use std::sync::Arc;

use pdm_net::{FaultPlan, LinkProfile, MeteredChannel, OutageWindow};
use pdm_obs::{
    kinds, Counter, FlightDump, Gauge, Histogram, MetricsRegistry, Recorder, SpanKind, TraceContext,
};
use pdm_sql::persist::{database_digest, database_fingerprint, encode_snapshot};
use pdm_sql::Database;
use pdm_wal::{DurableStore, WalRecord};

use super::replica::{ReplicaSite, ACK_BYTES, RECORD_FRAME_BYTES};
use super::{ReplError, ReplicationFeed};
use crate::durability::{Durability, DurabilityConfig};
use crate::product::ObjectId;
use crate::resilience::RetryPolicy;
use crate::server::PdmServer;
use crate::session::{SessionError, SessionResult};
use crate::shared::SharedServer;

/// Tuning knobs for a replicated cluster.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of replica sites (sites 1..=N; the primary is site 0).
    pub replicas: usize,
    /// Link profile of every primary→replica ship link.
    pub ship_link: LinkProfile,
    /// Fault plan template for the ship links; each site derives its own
    /// seeded stream via [`FaultPlan::for_site`].
    pub ship_faults: FaultPlan,
    /// Primary lease in virtual seconds: an outage outliving it triggers
    /// failover promotion.
    pub lease: f64,
    /// Replicas that must apply a write before it is acknowledged
    /// (semi-synchronous; clamped to the replica count).
    pub ack_replicas: usize,
    /// Ship rounds a single wait (ack or watermark) may pump before it
    /// gives up — the backstop against a dead ship link with an infinite
    /// deadline.
    pub max_pump_rounds: u32,
    /// Durability configuration of the primary (and of promoted primaries).
    pub durability: DurabilityConfig,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            replicas: 3,
            ship_link: LinkProfile::wan_512(),
            ship_faults: FaultPlan::none(),
            lease: 30.0,
            ack_replicas: 1,
            max_pump_rounds: 64,
            durability: DurabilityConfig::default(),
        }
    }
}

impl ClusterConfig {
    pub fn with_replicas(mut self, n: usize) -> Self {
        assert!(n >= 1, "a cluster needs at least one replica");
        self.replicas = n;
        self
    }

    pub fn with_ship_link(mut self, link: LinkProfile) -> Self {
        self.ship_link = link;
        self
    }

    pub fn with_ship_faults(mut self, plan: FaultPlan) -> Self {
        self.ship_faults = plan;
        self
    }

    pub fn with_lease(mut self, seconds: f64) -> Self {
        assert!(seconds > 0.0);
        self.lease = seconds;
        self
    }

    pub fn with_ack_replicas(mut self, n: usize) -> Self {
        self.ack_replicas = n;
        self
    }

    pub fn with_max_pump_rounds(mut self, n: u32) -> Self {
        assert!(n >= 1);
        self.max_pump_rounds = n;
        self
    }

    pub fn with_durability(mut self, cfg: DurabilityConfig) -> Self {
        self.durability = cfg;
        self
    }
}

/// Receipt for an acknowledged write: what a session must remember to get
/// read-your-writes from a replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteReceipt {
    pub epoch: u64,
    /// Highest durable sequence at acknowledgement time.
    pub seq: u64,
    /// Storage version the write published.
    pub version: u64,
}

/// One acknowledged write, retained by the cluster as the loss oracle: a
/// failover must carry every one of these into the new epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AckedWrite {
    pub epoch: u64,
    pub seq: u64,
    pub version: u64,
}

/// What one failover promotion did — self-contained, so tests can verify
/// the promoted state against serial replay without touching the cluster.
#[derive(Debug, Clone)]
pub struct FailoverReport {
    pub old_epoch: u64,
    pub new_epoch: u64,
    pub promoted_site: usize,
    /// The promoted replica's watermark (the surviving log prefix).
    pub promoted_seq: u64,
    /// Records shipped to catch lagging replicas up to the prefix.
    pub catchup_records: u64,
    /// Stale grants swept by promotion (tokens and the id unions).
    pub swept_tokens: Vec<u64>,
    pub swept_assy: Vec<ObjectId>,
    pub swept_comp: Vec<ObjectId>,
    /// Virtual time the promotion started and how long it took.
    pub started_at: f64,
    pub duration: f64,
    /// State fingerprint of the promoted replica BEFORE the sweep — the
    /// value serial replay of `prefix` onto `epoch_base` must reproduce.
    pub promoted_fingerprint: Vec<u8>,
    /// Encoded snapshot the old epoch's replicas bootstrapped from.
    pub epoch_base: Vec<u8>,
    /// The old epoch's durable-log prefix through `promoted_seq`.
    pub prefix: Vec<(u64, WalRecord)>,
}

/// Pre-resolved handles for the `repl.*` metric families (resolved at
/// cluster assembly so every family exists in a snapshot even before it
/// first fires).
#[derive(Debug)]
struct ReplMetrics {
    ship_batches: Counter,
    records_shipped: Counter,
    ship_failures: Counter,
    acked_writes: Counter,
    watermark_waits: Counter,
    watermark_timeouts: Counter,
    stale_reads: Counter,
    failovers: Counter,
    lag_seqs: Gauge,
    ship_us: Histogram,
    failover_us: Histogram,
    watermark_wait_us: Histogram,
}

impl ReplMetrics {
    fn new(registry: &MetricsRegistry) -> Self {
        ReplMetrics {
            ship_batches: registry.counter("repl.ship_batches"),
            records_shipped: registry.counter("repl.records_shipped"),
            ship_failures: registry.counter("repl.ship_failures"),
            acked_writes: registry.counter("repl.acked_writes"),
            watermark_waits: registry.counter("repl.watermark_waits"),
            watermark_timeouts: registry.counter("repl.watermark_timeouts"),
            stale_reads: registry.counter("repl.stale_reads"),
            failovers: registry.counter("repl.failovers"),
            lag_seqs: registry.gauge("repl.lag_seqs"),
            ship_us: registry.histogram("repl.ship_us"),
            failover_us: registry.histogram("repl.failover_us"),
            watermark_wait_us: registry.histogram("repl.watermark_wait_us"),
        }
    }
}

/// One cluster-side contribution to a traced action's causal tree,
/// recorded in occurrence order and replayed into a `TraceAssembler` by
/// `RoutedSession` when the action completes (DESIGN.md §15).
#[derive(Debug, Clone)]
pub(crate) enum TraceOp {
    /// Exclusive segment; `v_excl` is the exact clock-advance amount.
    Segment {
        site: String,
        kind: SpanKind,
        label: String,
        v_excl: f64,
        attrs: Vec<(&'static str, f64)>,
        detail: String,
    },
    /// Zero-width child of the immediately preceding segment (e.g. the
    /// replica-side apply of a ship batch).
    Mark {
        site: String,
        kind: SpanKind,
        label: String,
        attrs: Vec<(&'static str, f64)>,
    },
    /// Open a grouping span (watermark wait); segments until the matching
    /// close are its children and attribute to its class.
    OpenGroup {
        site: String,
        kind: SpanKind,
        label: String,
    },
    CloseGroup,
}

/// Per-action collection of [`TraceOp`]s plus the propagated context, so
/// even replicas (re)bootstrapped mid-action get the piggyback installed.
#[derive(Debug)]
struct ActionTraceBuf {
    ctx: TraceContext,
    ops: Vec<TraceOp>,
}

/// The replicated cluster. See the module docs.
#[derive(Debug)]
pub struct Cluster {
    cfg: ClusterConfig,
    epoch: u64,
    /// Topology generation: bumped on promotion and on heal, so routed
    /// sessions know to re-resolve their server handles.
    generation: u64,
    primary: PdmServer,
    /// Site index currently acting as primary (0 at birth; the promoted
    /// replica's site after a failover).
    primary_site: usize,
    feed: Arc<ReplicationFeed>,
    replicas: BTreeMap<usize, ReplicaSite>,
    /// The cluster's virtual clock: ship-link time plus session time folded
    /// in via [`Cluster::advance`].
    clock: f64,
    /// Scheduled primary-site outage windows on the cluster clock.
    outages: Vec<OutageWindow>,
    acked: Vec<AckedWrite>,
    metrics: Arc<MetricsRegistry>,
    m: ReplMetrics,
    obs: Recorder,
    failovers: Vec<FailoverReport>,
    /// A deposed primary site waiting for its outage to end before it
    /// re-bootstraps as a replica: `(site, heal_at)`.
    pending_heal: Option<(usize, f64)>,
    /// Cross-site tracing: segments collected for the in-flight traced
    /// action (`None` when tracing is off — zero work, zero wire bytes).
    action_trace: Option<ActionTraceBuf>,
    /// Encoded snapshot the current epoch's replicas bootstrapped from.
    epoch_base: Vec<u8>,
}

impl Cluster {
    /// Publish a populated database as the primary of a replicated cluster
    /// and seed every replica from its initial snapshot.
    pub fn new(db: Database, cfg: ClusterConfig) -> pdm_sql::Result<Cluster> {
        let epoch = 1;
        let shared = SharedServer::with_durability(db, &cfg.durability)?;
        let feed = Arc::new(ReplicationFeed::new(epoch));
        if let Some(d) = shared.durability() {
            d.attach_feed(Arc::clone(&feed));
        }
        let primary = PdmServer::from_shared(Arc::new(shared));
        let epoch_base = encode_snapshot(&primary.database().snapshot());
        let mut replicas = BTreeMap::new();
        for site in 1..=cfg.replicas {
            let plan = cfg.ship_faults.clone().for_site(site as u64);
            let replica = ReplicaSite::bootstrap(
                site,
                &epoch_base,
                epoch,
                0,
                BTreeMap::new(),
                BTreeMap::new(),
                cfg.ship_link,
                plan,
            )
            .map_err(|e| pdm_sql::Error::Eval(format!("replica bootstrap: {e}")))?;
            replicas.insert(site, replica);
        }
        let metrics = Arc::new(MetricsRegistry::new());
        let m = ReplMetrics::new(&metrics);
        Ok(Cluster {
            cfg,
            epoch,
            generation: 0,
            primary,
            primary_site: 0,
            feed,
            replicas,
            clock: 0.0,
            outages: Vec::new(),
            acked: Vec::new(),
            metrics,
            m,
            obs: Recorder::new(),
            failovers: Vec::new(),
            pending_heal: None,
            action_trace: None,
            epoch_base,
        })
    }

    // -- cross-site tracing ------------------------------------------------

    /// Begin collecting this cluster's contributions to a traced action:
    /// stamp `ctx` onto every replica ship link (each ship request grows by
    /// [`TraceContext::WIRE_BYTES`]) and start the per-action op buffer.
    pub(crate) fn begin_action_trace(&mut self, ctx: TraceContext) {
        self.action_trace = Some(ActionTraceBuf {
            ctx,
            ops: Vec::new(),
        });
        for replica in self.replicas.values_mut() {
            replica.channel_mut().set_trace_context(Some(ctx));
        }
    }

    /// Stop collecting: clear the piggyback from the ship links and return
    /// the recorded ops in occurrence order.
    pub(crate) fn take_action_trace(&mut self) -> Vec<TraceOp> {
        for replica in self.replicas.values_mut() {
            replica.channel_mut().set_trace_context(None);
        }
        self.action_trace.take().map(|b| b.ops).unwrap_or_default()
    }

    /// Ops recorded so far for the in-flight traced action (lets the
    /// routed session split pre-action from post-action contributions).
    pub(crate) fn action_trace_len(&self) -> usize {
        self.action_trace.as_ref().map_or(0, |b| b.ops.len())
    }

    // -- accessors ---------------------------------------------------------

    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The cluster's virtual clock.
    pub fn clock(&self) -> f64 {
        self.clock
    }

    /// Fold externally burned virtual time (a session's metered action)
    /// into the cluster clock.
    pub fn advance(&mut self, seconds: f64) {
        debug_assert!(seconds >= 0.0);
        self.clock += seconds;
    }

    pub fn primary(&self) -> &PdmServer {
        &self.primary
    }

    pub fn primary_site(&self) -> usize {
        self.primary_site
    }

    pub fn replica(&self, site: usize) -> Option<&ReplicaSite> {
        self.replicas.get(&site)
    }

    pub fn replica_sites(&self) -> Vec<usize> {
        self.replicas.keys().copied().collect()
    }

    pub fn feed(&self) -> &Arc<ReplicationFeed> {
        &self.feed
    }

    /// Encoded snapshot the current epoch's replicas bootstrapped from —
    /// the base state [`super::replay_prefix`] replays the feed onto.
    pub fn epoch_base(&self) -> &[u8] {
        &self.epoch_base
    }

    /// Cluster-level metrics (`repl.*` families).
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// The cluster's flight recorder (ship / promote spans).
    pub fn recorder(&self) -> &Recorder {
        &self.obs
    }

    pub fn failovers(&self) -> &[FailoverReport] {
        &self.failovers
    }

    pub fn acked_writes(&self) -> &[AckedWrite] {
        &self.acked
    }

    /// Schedule a primary-site outage window on the cluster clock.
    pub fn schedule_outage(&mut self, window: OutageWindow) {
        self.outages.push(window);
    }

    /// The server a site's reads should run against: the local replica, or
    /// the primary when the site IS the primary (or is still healing).
    pub fn read_server(&self, site: usize) -> PdmServer {
        if site == self.primary_site {
            return self.primary.clone();
        }
        match self.replicas.get(&site) {
            Some(r) => r.server().clone(),
            None => self.primary.clone(),
        }
    }

    /// The server writes must be forwarded to.
    pub fn write_server(&self) -> PdmServer {
        self.primary.clone()
    }

    /// How many sequences site trails the primary by.
    pub fn lag(&self, site: usize) -> u64 {
        match self.replicas.get(&site) {
            Some(r) => self.feed.last_seq().saturating_sub(r.applied_seq()),
            None => 0,
        }
    }

    pub(crate) fn note_stale_read(&self) {
        self.m.stale_reads.inc();
    }

    // -- shipping ----------------------------------------------------------

    /// Ship the outstanding suffix to one replica over its fault-injected
    /// link. Link failures are counted and absorbed (shipping is
    /// idempotent and retried next round); consistency violations
    /// propagate. Returns the number of records the replica acknowledged.
    pub fn ship_once(&mut self, site: usize) -> Result<u64, ReplError> {
        self.maybe_heal();
        let epoch = self.epoch;
        let last = self.feed.last_seq();
        let Some(replica) = self.replicas.get_mut(&site) else {
            return Ok(0); // the site is the primary or still healing
        };
        let batch = self.feed.since(replica.applied_seq());
        if batch.is_empty() {
            self.m.lag_seqs.set(0.0);
            return Ok(0);
        }
        let bytes: usize = batch
            .iter()
            .map(|(_, r)| r.encode().len() + RECORD_FRAME_BYTES)
            .sum();
        let start = self.clock;
        let before = replica.elapsed();
        let result = replica.receive_ship(epoch, &batch, bytes);
        let delta = replica.elapsed() - before;
        self.clock += delta;
        match result {
            Ok((applied, advance)) => {
                self.m.ship_batches.inc();
                self.m.records_shipped.add(applied);
                self.m.ship_us.record((delta * 1e6) as u64);
                self.m
                    .lag_seqs
                    .set(last.saturating_sub(replica.applied_seq()) as f64);
                self.obs.record_closed(
                    kinds::REPL_SHIP,
                    format!("site{site}"),
                    start,
                    start + delta,
                    &[
                        ("records", applied as f64),
                        ("bytes", bytes as f64),
                        ("v_s", advance),
                    ],
                    "",
                );
                if let Some(buf) = &mut self.action_trace {
                    // Primary-side ship segment with the EXACT advance, and
                    // the replica-side apply as its zero-width child.
                    buf.ops.push(TraceOp::Segment {
                        site: "primary".into(),
                        kind: kinds::REPL_SHIP,
                        label: format!("site{site}"),
                        v_excl: advance,
                        attrs: vec![("records", applied as f64), ("bytes", bytes as f64)],
                        detail: String::new(),
                    });
                    buf.ops.push(TraceOp::Mark {
                        site: format!("replica{site}"),
                        kind: kinds::REPL_APPLY,
                        label: format!("{applied} records"),
                        attrs: vec![("records", applied as f64)],
                    });
                }
                // A fully caught-up replica must be byte-equivalent to the
                // primary — the continuous divergence check.
                if replica.applied_seq() == last {
                    let rd = replica.digest();
                    let pd = database_digest(self.primary.database());
                    if rd != pd {
                        return Err(ReplError::Diverged { site, seq: last });
                    }
                }
                Ok(applied)
            }
            Err(ReplError::Link(e)) => {
                let advance = e.waited();
                self.m.ship_failures.inc();
                self.obs.record_closed(
                    kinds::REPL_SHIP,
                    format!("site{site}"),
                    start,
                    start + delta,
                    &[("bytes", bytes as f64), ("v_s", advance)],
                    e.to_string(),
                );
                if let Some(buf) = &mut self.action_trace {
                    buf.ops.push(TraceOp::Segment {
                        site: "primary".into(),
                        kind: kinds::REPL_SHIP,
                        label: format!("site{site}"),
                        v_excl: advance,
                        attrs: vec![("bytes", bytes as f64)],
                        detail: e.to_string(),
                    });
                }
                Ok(0)
            }
            Err(fatal) => Err(fatal),
        }
    }

    /// One ship round across every replica.
    pub fn pump(&mut self) -> Result<u64, ReplError> {
        let sites: Vec<usize> = self.replicas.keys().copied().collect();
        let mut total = 0;
        for site in sites {
            total += self.ship_once(site)?;
        }
        Ok(total)
    }

    // -- write acknowledgement --------------------------------------------

    /// Semi-synchronously acknowledge the primary's latest durable state:
    /// pump the ship links until `ack_replicas` replicas have applied it,
    /// then issue the receipt a session needs for read-your-writes.
    pub fn acknowledge_write(&mut self, obs: &Recorder) -> SessionResult<WriteReceipt> {
        let seq = self.feed.last_seq();
        let version = self.primary.shared().version();
        let epoch = self.epoch;
        let need = self.cfg.ack_replicas.min(self.replicas.len());
        let start = self.clock;
        let mut rounds = 0u32;
        loop {
            let caught = self
                .replicas
                .values()
                .filter(|r| r.applied_seq() >= seq)
                .count();
            if caught >= need {
                break;
            }
            if rounds >= self.cfg.max_pump_rounds {
                return Err(SessionError::Timeout {
                    attempts: rounds,
                    elapsed: self.clock - start,
                    context: FlightDump::at("repl.ship").with_events(obs),
                });
            }
            rounds += 1;
            self.pump().map_err(|e| SessionError::RecoveryFailed {
                detail: format!("replication: {e}"),
            })?;
        }
        self.acked.push(AckedWrite {
            epoch,
            seq,
            version,
        });
        self.m.acked_writes.inc();
        Ok(WriteReceipt {
            epoch,
            seq,
            version,
        })
    }

    // -- read-your-writes --------------------------------------------------

    /// Block (pumping the ship link) until `site`'s watermark reaches the
    /// receipt's sequence, bounded by the session's retry deadline. A
    /// receipt from an older epoch needs no wait: acknowledged writes are,
    /// by the promotion invariant, part of the new epoch's baseline.
    ///
    /// Deadline propagation (overload robustness): this wait is already
    /// bounded by `policy.deadline` — the same per-action deadline the
    /// lock-queue, WAL-commit, and single-flight waits observe — plus the
    /// `max_pump_rounds` backstop, so a saturated ship link cannot pin a
    /// reader for unbounded virtual time.
    pub fn wait_watermark(
        &mut self,
        site: usize,
        receipt: &WriteReceipt,
        policy: &RetryPolicy,
        obs: &Recorder,
    ) -> SessionResult<u64> {
        self.maybe_heal();
        if receipt.epoch < self.epoch {
            return Ok(0);
        }
        if site == self.primary_site || !self.replicas.contains_key(&site) {
            return Ok(0); // reads run at the primary: trivially fresh
        }
        let start = self.clock;
        // Ship pumps issued while this wait is open are children of the
        // watermark group, so their time attributes to repl.wait_watermark
        // (the class a reader actually experiences) rather than repl.ship.
        if let Some(buf) = &mut self.action_trace {
            buf.ops.push(TraceOp::OpenGroup {
                site: "primary".into(),
                kind: kinds::REPL_WAIT_WATERMARK,
                label: format!("site{site} seq{}", receipt.seq),
            });
        }
        let mut rounds = 0u32;
        loop {
            let applied = match self.replicas.get(&site) {
                Some(r) => r.applied_seq(),
                None => {
                    if let Some(buf) = &mut self.action_trace {
                        buf.ops.push(TraceOp::CloseGroup);
                    }
                    return Ok(0);
                }
            };
            if applied >= receipt.seq {
                let waited = self.clock - start;
                self.m.watermark_waits.inc();
                self.m.watermark_wait_us.record((waited * 1e6) as u64);
                self.obs.record_closed(
                    kinds::REPL_WAIT_WATERMARK,
                    format!("site{site}"),
                    start,
                    self.clock,
                    &[("seq", receipt.seq as f64), ("rounds", rounds as f64)],
                    "",
                );
                if let Some(buf) = &mut self.action_trace {
                    buf.ops.push(TraceOp::CloseGroup);
                }
                return Ok(applied);
            }
            let waited = self.clock - start;
            if waited >= policy.deadline || rounds >= self.cfg.max_pump_rounds {
                self.m.watermark_timeouts.inc();
                obs.event(kinds::REPL_WAIT_WATERMARK, format!("site{site} deadline"));
                if let Some(buf) = &mut self.action_trace {
                    buf.ops.push(TraceOp::CloseGroup);
                }
                return Err(SessionError::ReplicaLagTimeout {
                    seq: receipt.seq,
                    applied,
                    elapsed: waited,
                    context: FlightDump::at("repl.wait_watermark").with_events(obs),
                });
            }
            rounds += 1;
            self.ship_once(site)
                .map_err(|e| SessionError::RecoveryFailed {
                    detail: format!("replication: {e}"),
                })?;
        }
    }

    // -- failover ----------------------------------------------------------

    /// Gate a write on primary availability. Inside an outage window the
    /// writer waits the outage out when it ends before the lease expires;
    /// otherwise it waits to lease expiry and the coordinator promotes the
    /// most caught-up replica. Waits exceeding `max_wait` fail with
    /// [`SessionError::PrimaryUnavailable`].
    pub fn ensure_primary(&mut self, max_wait: f64, obs: &Recorder) -> SessionResult<()> {
        self.maybe_heal();
        let Some(w) = self
            .outages
            .iter()
            .copied()
            .find(|w| w.contains(self.clock))
        else {
            return Ok(());
        };
        let lease_expires = w.start + self.cfg.lease;
        if w.end <= lease_expires {
            // Outage shorter than the lease: wait it out.
            let wait = w.end - self.clock;
            if wait > max_wait {
                return Err(SessionError::PrimaryUnavailable {
                    until: w.end,
                    context: FlightDump::at("net.exchange").with_events(obs),
                });
            }
            self.clock = w.end;
            if let Some(buf) = &mut self.action_trace {
                buf.ops.push(TraceOp::Segment {
                    site: "primary".into(),
                    kind: kinds::NET_BACKOFF,
                    label: "outage wait".into(),
                    v_excl: wait,
                    attrs: vec![("wait_s", wait)],
                    detail: String::new(),
                });
            }
            self.maybe_heal();
            Ok(())
        } else {
            let wait = (lease_expires - self.clock).max(0.0);
            if wait > max_wait {
                return Err(SessionError::PrimaryUnavailable {
                    until: lease_expires,
                    context: FlightDump::at("net.exchange").with_events(obs),
                });
            }
            self.clock = self.clock.max(lease_expires);
            if let Some(buf) = &mut self.action_trace {
                buf.ops.push(TraceOp::Segment {
                    site: "primary".into(),
                    kind: kinds::NET_BACKOFF,
                    label: "lease wait".into(),
                    v_excl: wait,
                    attrs: vec![("wait_s", wait)],
                    detail: String::new(),
                });
            }
            self.outages.retain(|o| *o != w);
            self.promote_inner(Some(w.end))
                .map_err(|e| SessionError::RecoveryFailed {
                    detail: format!("failover promotion: {e}"),
                })?;
            Ok(())
        }
    }

    /// Promote the most caught-up replica to primary (test/admin hook; the
    /// deposed primary is abandoned rather than healed).
    pub fn promote(&mut self) -> Result<(), ReplError> {
        self.promote_inner(None)
    }

    fn promote_inner(&mut self, heal_at: Option<f64>) -> Result<(), ReplError> {
        let started = self.clock;
        let old_epoch = self.epoch;
        let new_epoch = old_epoch
            .checked_add(1)
            .ok_or_else(|| ReplError::Bootstrap("epoch counter exhausted".into()))?;

        // Deterministic choice: highest watermark, ties to the lowest site.
        let promoted_site = self
            .replicas
            .iter()
            .max_by(|(sa, ra), (sb, rb)| ra.applied_seq().cmp(&rb.applied_seq()).then(sb.cmp(sa)))
            .map(|(s, _)| *s)
            .ok_or_else(|| ReplError::Bootstrap("no replica to promote".into()))?;
        let promoted_seq = match self.replicas.get(&promoted_site) {
            Some(r) => r.applied_seq(),
            None => 0,
        };

        // Catch every lagging replica up to the promoted prefix, shipping
        // from the promoted site over a clean coordinator link (the old
        // primary — and its faulty links — are out of the picture).
        let mut coord = MeteredChannel::new(self.cfg.ship_link);
        let mut catchup_records = 0u64;
        let lagging: Vec<usize> = self
            .replicas
            .iter()
            .filter(|(s, r)| **s != promoted_site && r.applied_seq() < promoted_seq)
            .map(|(s, _)| *s)
            .collect();
        for site in lagging {
            let Some(replica) = self.replicas.get_mut(&site) else {
                continue;
            };
            let batch: Vec<(u64, WalRecord)> = self
                .feed
                .since(replica.applied_seq())
                .into_iter()
                .filter(|(s, _)| *s <= promoted_seq)
                .collect();
            if batch.is_empty() {
                continue;
            }
            let bytes: usize = batch
                .iter()
                .map(|(_, r)| r.encode().len() + RECORD_FRAME_BYTES)
                .sum();
            coord.round_trip(bytes, ACK_BYTES);
            catchup_records += replica.apply_batch(old_epoch, &batch)?;
        }

        // The promoted replica's pre-sweep state is the new epoch's base.
        let promoted = self
            .replicas
            .remove(&promoted_site)
            .ok_or_else(|| ReplError::Bootstrap("promoted replica vanished".into()))?;
        let promoted_fingerprint = promoted.fingerprint();
        let prefix = self.feed.prefix_through(promoted_seq);
        let old_base = std::mem::take(&mut self.epoch_base);
        let base_bytes = encode_snapshot(&promoted.server().database().snapshot());
        coord.round_trip(64, 32); // epoch-bump coordination round

        // Rebuild the promoted state as a durable primary: fresh store,
        // grant/token trackers carried over, initial checkpoint, new feed.
        let grants = promoted.grants_clone();
        let tokens = promoted.tokens_clone();
        let mut snapshot = pdm_sql::persist::decode_snapshot(&base_bytes)
            .map_err(|e| ReplError::Bootstrap(e.to_string()))?;
        crate::functions::register_into(&mut snapshot.catalog.functions);
        let db = pdm_sql::SharedDatabase::from_snapshot(snapshot);
        let durability = Durability::from_parts(
            DurableStore::new(self.cfg.durability.crash_plan),
            grants.clone(),
            tokens.clone(),
            self.cfg.durability.checkpoint_interval,
        );
        durability
            .checkpoint(&db.snapshot())
            .map_err(|e| ReplError::Bootstrap(format!("promotion checkpoint: {e}")))?;
        let feed = Arc::new(ReplicationFeed::new(new_epoch));
        durability.attach_feed(Arc::clone(&feed));
        let next_token = tokens
            .keys()
            .chain(grants.keys())
            .max()
            .map(|t| t.saturating_add(1))
            .unwrap_or(1)
            .max(1);
        let shared = SharedServer::assemble(db, Some(durability), tokens, next_token);
        let new_primary = PdmServer::from_shared(Arc::new(shared));

        // Sweep stale grants exactly as crash recovery does: every session
        // at the old primary died with it, so no grant survives. The sweep
        // runs through the durable write path — its UPDATEs and closing
        // release flow into the new feed for the remaining replicas.
        let mut swept_tokens: Vec<u64> = Vec::new();
        let mut sweep_assy: Vec<ObjectId> = Vec::new();
        let mut sweep_comp: Vec<ObjectId> = Vec::new();
        for (token, g) in &grants {
            swept_tokens.push(*token);
            sweep_assy.extend(&g.assy);
            sweep_comp.extend(&g.comp);
        }
        sweep_assy.sort_unstable();
        sweep_assy.dedup();
        sweep_comp.sort_unstable();
        sweep_comp.dedup();
        new_primary
            .shared()
            .sweep_stale_grants(&sweep_assy, &sweep_comp)
            .map_err(|e| ReplError::Replay {
                seq: 0,
                detail: format!("failover sweep: {e}"),
            })?;

        // Install the new topology and fence the survivors onto the new
        // epoch. They are all caught up to the promoted prefix, i.e. their
        // state equals the new epoch base; the new feed's sequences restart
        // at 1, so their watermarks reset to 0.
        let old_primary_site = self.primary_site;
        self.primary = new_primary;
        self.primary_site = promoted_site;
        self.feed = feed;
        self.epoch = new_epoch;
        self.epoch_base = base_bytes;
        self.generation += 1;
        for replica in self.replicas.values_mut() {
            replica.set_epoch(new_epoch);
            replica.reset_applied(0);
        }
        self.pending_heal = heal_at.map(|t| (old_primary_site, t));

        let duration = coord.elapsed();
        self.clock += duration;
        self.m.failovers.inc();
        self.m.failover_us.record((duration * 1e6) as u64);
        self.obs.record_closed(
            kinds::REPL_PROMOTE,
            format!("epoch{new_epoch}"),
            started,
            self.clock,
            &[
                ("promoted_site", promoted_site as f64),
                ("promoted_seq", promoted_seq as f64),
                ("catchup_records", catchup_records as f64),
                ("v_s", duration),
            ],
            "",
        );
        if let Some(buf) = &mut self.action_trace {
            buf.ops.push(TraceOp::Segment {
                site: "primary".into(),
                kind: kinds::REPL_PROMOTE,
                label: format!("epoch{new_epoch}"),
                v_excl: duration,
                attrs: vec![
                    ("promoted_site", promoted_site as f64),
                    ("promoted_seq", promoted_seq as f64),
                    ("catchup_records", catchup_records as f64),
                ],
                detail: String::new(),
            });
        }
        self.failovers.push(FailoverReport {
            old_epoch,
            new_epoch,
            promoted_site,
            promoted_seq,
            catchup_records,
            swept_tokens,
            swept_assy: sweep_assy,
            swept_comp: sweep_comp,
            started_at: started,
            duration,
            promoted_fingerprint,
            epoch_base: old_base,
            prefix,
        });
        Ok(())
    }

    /// Heal a deposed primary whose outage has ended: re-bootstrap it from
    /// the current primary's snapshot as an ordinary replica.
    fn maybe_heal(&mut self) {
        let Some((site, at)) = self.pending_heal else {
            return;
        };
        if self.clock < at {
            return;
        }
        self.pending_heal = None;
        let snapshot_bytes = encode_snapshot(&self.primary.database().snapshot());
        let (grants, tokens) = match self.primary.shared().durability() {
            Some(d) => (d.outstanding_grants(), d.completed_tokens()),
            None => (BTreeMap::new(), BTreeMap::new()),
        };
        let base_seq = self.feed.last_seq();
        // A fresh fault stream for the healed link (epoch-mixed so it does
        // not replay the pre-failover faults).
        let plan = self
            .cfg
            .ship_faults
            .clone()
            .for_site(site as u64 + 1000 * self.epoch);
        match ReplicaSite::bootstrap(
            site,
            &snapshot_bytes,
            self.epoch,
            base_seq,
            grants,
            tokens,
            self.cfg.ship_link,
            plan,
        ) {
            Ok(mut replica) => {
                // A heal inside a traced action carries the piggyback too:
                // the snapshot frame grows by the context bytes and the
                // transfer shows up as a primary-side ship segment.
                if let Some(buf) = &self.action_trace {
                    replica.channel_mut().set_trace_context(Some(buf.ctx));
                }
                // Charge the snapshot transfer to the healed site's link.
                let before = replica.elapsed();
                let rt = replica
                    .channel_mut()
                    .round_trip(snapshot_bytes.len() + 64, ACK_BYTES);
                self.clock += replica.elapsed() - before;
                if let Some(buf) = &mut self.action_trace {
                    buf.ops.push(TraceOp::Segment {
                        site: "primary".into(),
                        kind: kinds::REPL_SHIP,
                        label: format!("heal site{site}"),
                        v_excl: rt.total_time(),
                        attrs: vec![("bytes", (snapshot_bytes.len() + 64) as f64)],
                        detail: String::new(),
                    });
                }
                self.replicas.insert(site, replica);
                self.generation += 1;
                self.obs
                    .event(kinds::REPL_APPLY, format!("site{site} healed"));
            }
            Err(e) => {
                // A heal that cannot decode the primary snapshot is fatal
                // for the site; leave it out of the topology.
                self.obs
                    .event(kinds::REPL_APPLY, format!("site{site} heal failed: {e}"));
            }
        }
    }

    /// State fingerprint of the current primary.
    pub fn primary_fingerprint(&self) -> Vec<u8> {
        database_fingerprint(self.primary.database())
    }
}
