//! The replication feed: the primary's logical commit log, retained for
//! shipping.
//!
//! The durable store truncates its physical log at every checkpoint; a
//! replica that bootstrapped from the epoch-base snapshot needs the *whole*
//! logical history of the epoch, so [`crate::Durability`] republishes every
//! committed record here (under the store lock, so feed order IS commit
//! order) and the feed never truncates on its own. An epoch's feed is also
//! the failover oracle: serial replay of any prefix onto the epoch base
//! must reproduce the primary's state at that sequence.

use std::sync::{Mutex, MutexGuard};

use pdm_wal::WalRecord;

fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

#[derive(Debug, Default)]
struct FeedState {
    /// `(seq, record)` in commit order. Sequences are the durable store's
    /// (monotonic across checkpoints), so a replica watermark is directly
    /// comparable to `last_seq`.
    records: Vec<(u64, WalRecord)>,
    last_seq: u64,
}

/// One epoch's shippable commit history. See the module docs.
#[derive(Debug)]
pub struct ReplicationFeed {
    epoch: u64,
    state: Mutex<FeedState>,
}

impl ReplicationFeed {
    pub fn new(epoch: u64) -> Self {
        ReplicationFeed {
            epoch,
            state: Mutex::new(FeedState::default()),
        }
    }

    /// The epoch this feed belongs to. Ship batches carry it; replicas
    /// fence batches from a stale epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Append one durably committed record. Called by the durability layer
    /// under the store lock, so sequences arrive strictly increasing.
    pub fn publish(&self, seq: u64, record: WalRecord) {
        let mut st = lock_unpoisoned(&self.state);
        debug_assert!(seq > st.last_seq, "feed sequence must be monotonic");
        st.records.push((seq, record));
        st.last_seq = st.last_seq.max(seq);
    }

    /// Highest published sequence (0 = nothing published this epoch).
    pub fn last_seq(&self) -> u64 {
        lock_unpoisoned(&self.state).last_seq
    }

    /// All records with sequence strictly greater than `seq`, in order —
    /// the ship batch for a replica whose watermark is `seq`.
    pub fn since(&self, seq: u64) -> Vec<(u64, WalRecord)> {
        lock_unpoisoned(&self.state)
            .records
            .iter()
            .filter(|(s, _)| *s > seq)
            .cloned()
            .collect()
    }

    /// The prefix of records with sequence `<= seq`, in order — the serial
    /// replay oracle for a promotion at watermark `seq`.
    pub fn prefix_through(&self, seq: u64) -> Vec<(u64, WalRecord)> {
        lock_unpoisoned(&self.state)
            .records
            .iter()
            .take_while(|(s, _)| *s <= seq)
            .cloned()
            .collect()
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        lock_unpoisoned(&self.state).records.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(v: u64) -> WalRecord {
        WalRecord::DmlCommit {
            version: v,
            sql: format!("UPDATE assy SET checkedout = FALSE WHERE obid = {v}"),
        }
    }

    #[test]
    fn publish_and_slice() {
        let feed = ReplicationFeed::new(1);
        assert_eq!(feed.epoch(), 1);
        assert_eq!(feed.last_seq(), 0);
        assert!(feed.is_empty());
        for seq in 1..=5 {
            feed.publish(seq, rec(seq));
        }
        assert_eq!(feed.last_seq(), 5);
        assert_eq!(feed.len(), 5);
        let batch = feed.since(2);
        assert_eq!(
            batch.iter().map(|(s, _)| *s).collect::<Vec<_>>(),
            vec![3, 4, 5]
        );
        assert!(feed.since(5).is_empty());
        let prefix = feed.prefix_through(3);
        assert_eq!(
            prefix.iter().map(|(s, _)| *s).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        assert_eq!(feed.prefix_through(0).len(), 0);
    }
}
