//! A site-routed client session over a replicated cluster.
//!
//! A [`RoutedSession`] holds TWO metered sessions: a `read` session over a
//! LAN link to its nearest replica (the whole point of replication — the
//! paper's Table 2 "remote everything" latencies collapse when reads stay
//! local) and a `write` session over the configured WAN link to the
//! primary.
//!
//! **Read-your-writes contract**: the session remembers the
//! [`WriteReceipt`] of its last acknowledged write. Before any read it
//! waits (pumping the ship link) until the local replica's watermark
//! reaches that sequence, bounded by the session's [`RetryPolicy`]
//! deadline. A receipt from an older epoch needs no wait — promotion
//! guarantees acknowledged writes are part of the new epoch's baseline.
//! When the wait times out repeatedly, the session's
//! [`DegradationController`] staleness rung opens and reads are served
//! from the lagging replica with an explicit [`Staleness`] annotation
//! instead of failing the action outright.

use pdm_net::LinkProfile;
use pdm_obs::{TraceAssembler, TraceContext, TraceIdGen, TraceTree, ROOT_GID};

use super::cluster::TraceOp;
use super::{Cluster, WriteReceipt};
use crate::checkout::CheckoutOutcome;
use crate::product::{ObjectId, ProductTree};
use crate::resilience::RetryPolicy;
use crate::rules::table::RuleTable;
use crate::session::{
    ExpandOutcome, QueryOutcome, Session, SessionConfig, SessionError, SessionResult,
};

/// Explicit staleness annotation on a degraded read: the replica served it
/// from a state behind the session's own last write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Staleness {
    /// The sequence read-your-writes required.
    pub required_seq: u64,
    /// The replica's watermark when the read was served.
    pub applied_seq: u64,
}

/// A read outcome plus its freshness: `staleness: None` means the
/// read-your-writes guarantee held.
#[derive(Debug)]
pub struct RoutedRead<T> {
    pub value: T,
    pub staleness: Option<Staleness>,
}

/// Routed-session tracing state: one deterministic id stream shared by
/// reads and writes, so client spans AND cluster-side segments (ship,
/// watermark waits, promotion) assemble under a single trace id per action.
struct RoutedTrace {
    gen: TraceIdGen,
    seed: u64,
}

/// A client session pinned to one site of a replicated cluster. See the
/// module docs.
pub struct RoutedSession {
    site: usize,
    config: SessionConfig,
    rules: RuleTable,
    read: Session,
    write: Session,
    generation: u64,
    epoch: u64,
    last_write: Option<WriteReceipt>,
    policy: RetryPolicy,
    trace: Option<RoutedTrace>,
    last_trace: Option<TraceTree>,
}

impl RoutedSession {
    /// Attach a session at `site`: reads go to the site's replica over a
    /// LAN profile, writes to the primary over `config.link`.
    pub fn connect(
        cluster: &Cluster,
        site: usize,
        config: SessionConfig,
        rules: RuleTable,
    ) -> Self {
        let read_cfg = SessionConfig {
            link: LinkProfile::lan(),
            ..config.clone()
        };
        let read = Session::attach(cluster.read_server(site), read_cfg, rules.clone());
        let write = Session::attach(cluster.write_server(), config.clone(), rules.clone());
        RoutedSession {
            site,
            config,
            rules,
            read,
            write,
            generation: cluster.generation(),
            epoch: cluster.epoch(),
            last_write: None,
            policy: RetryPolicy::default_wan(),
            trace: None,
            last_trace: None,
        }
    }

    /// Turn on cross-site causal tracing for every action of this routed
    /// session (implies profiling on both underlying sessions). Each action
    /// draws one trace id; the client exchange spans, the primary's ship /
    /// watermark / promotion segments, and the replica-side applies all
    /// assemble into one [`TraceTree`] readable via
    /// [`RoutedSession::last_trace`].
    pub fn enable_tracing(&mut self, seed: u64) {
        self.trace = Some(RoutedTrace {
            gen: TraceIdGen::new(seed),
            seed,
        });
        self.apply_tracing();
    }

    /// The causal tree of the most recent traced action.
    pub fn last_trace(&self) -> Option<&TraceTree> {
        self.last_trace.as_ref()
    }

    /// (Re-)apply tracing to the underlying sessions — needed after
    /// [`RoutedSession::resync`] rebuilds them on a topology change.
    fn apply_tracing(&mut self) {
        let Some(t) = &self.trace else { return };
        let seed = t.seed;
        let site = format!("client{}", self.site);
        self.read.enable_tracing(seed);
        self.read.set_trace_site(site.clone());
        self.write.enable_tracing(seed);
        self.write.set_trace_site(site);
    }

    pub fn site(&self) -> usize {
        self.site
    }

    /// Receipt of this session's last acknowledged write, if any.
    pub fn last_write(&self) -> Option<WriteReceipt> {
        self.last_write
    }

    pub fn retry_policy(&self) -> &RetryPolicy {
        &self.policy
    }

    /// Bound watermark waits and primary-outage waits by this policy's
    /// deadline.
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        self.policy = policy;
    }

    /// The local read session (stats, degradation state, recorder).
    pub fn read_session(&self) -> &Session {
        &self.read
    }

    pub fn read_session_mut(&mut self) -> &mut Session {
        &mut self.read
    }

    /// The primary-bound write session.
    pub fn write_session(&self) -> &Session {
        &self.write
    }

    /// Re-resolve server handles after a topology change (promotion or
    /// heal). Degradation state survives the re-attach — a lag breaker
    /// tripped against the old topology half-opens normally.
    fn resync(&mut self, cluster: &Cluster) {
        if self.generation == cluster.generation() && self.epoch == cluster.epoch() {
            return;
        }
        self.generation = cluster.generation();
        self.epoch = cluster.epoch();
        let read_cfg = SessionConfig {
            link: LinkProfile::lan(),
            ..self.config.clone()
        };
        let degradation = self.read.degradation().clone();
        self.read = Session::attach(cluster.read_server(self.site), read_cfg, self.rules.clone());
        *self.read.degradation_mut() = degradation;
        self.write = Session::attach(
            cluster.write_server(),
            self.config.clone(),
            self.rules.clone(),
        );
        self.apply_tracing();
    }

    /// Enforce read-your-writes before a read, degrading to an annotated
    /// stale read when the staleness rung is open.
    fn sync_reads(&mut self, cluster: &mut Cluster) -> SessionResult<Option<Staleness>> {
        let Some(receipt) = self.last_write else {
            return Ok(None);
        };
        if receipt.epoch < cluster.epoch() {
            return Ok(None); // acked write survived into the promoted baseline
        }
        match cluster.wait_watermark(self.site, &receipt, &self.policy, self.read.recorder()) {
            Ok(_) => {
                self.read.degradation_mut().record_lag_success();
                Ok(None)
            }
            Err(SessionError::ReplicaLagTimeout {
                seq,
                applied,
                elapsed,
                context,
            }) => {
                self.read.degradation_mut().record_lag_failure();
                if self.read.degradation_mut().should_read_stale() {
                    cluster.note_stale_read();
                    Ok(Some(Staleness {
                        required_seq: seq,
                        applied_seq: applied,
                    }))
                } else {
                    Err(SessionError::ReplicaLagTimeout {
                        seq,
                        applied,
                        elapsed,
                        context,
                    })
                }
            }
            Err(e) => Err(e),
        }
    }

    /// Draw this action's trace id, stamp the context onto the cluster's
    /// ship links, and force it onto both sessions so whichever one runs
    /// the action records under the same trace.
    fn begin_routed_trace(&mut self, cluster: &mut Cluster) -> Option<TraceContext> {
        let t = self.trace.as_mut()?;
        let ctx = TraceContext::new(t.gen.next_id(), ROOT_GID);
        cluster.begin_action_trace(ctx);
        self.read.force_next_trace_id(ctx.trace_id);
        self.write.force_next_trace_id(ctx.trace_id);
        Some(ctx)
    }

    /// Replay cluster-collected [`TraceOp`]s into the assembler: marks hang
    /// off the segment recorded immediately before them (the replica apply
    /// under its ship), groups nest exactly as they occurred.
    fn replay_ops(asm: &mut TraceAssembler, ops: &[TraceOp]) {
        let mut last_seg = ROOT_GID;
        for op in ops {
            match op {
                TraceOp::Segment {
                    site,
                    kind,
                    label,
                    v_excl,
                    attrs,
                    detail,
                } => {
                    last_seg = asm.push_segment(
                        site.clone(),
                        *kind,
                        label.clone(),
                        *v_excl,
                        attrs,
                        detail.clone(),
                    );
                }
                TraceOp::Mark {
                    site,
                    kind,
                    label,
                    attrs,
                } => {
                    asm.push_mark(last_seg, site.clone(), *kind, label.clone(), attrs);
                }
                TraceOp::OpenGroup { site, kind, label } => {
                    asm.open_group(site.clone(), *kind, label.clone());
                }
                TraceOp::CloseGroup => asm.close_group(),
            }
        }
    }

    /// Assemble the combined causal tree of a finished routed action:
    /// cluster ops recorded before the session action (watermark waits,
    /// availability gates), then the session's own recorder block, then the
    /// post-action ops (acknowledgement ship pumps). On a failure carrying
    /// a flight dump, the tree is spliced into it.
    fn finish_routed_trace<T>(
        &mut self,
        cluster: &mut Cluster,
        ctx: Option<TraceContext>,
        name: &'static str,
        pre_len: usize,
        read_side: bool,
        mut result: SessionResult<T>,
    ) -> SessionResult<T> {
        let Some(ctx) = ctx else { return result };
        let ops = cluster.take_action_trace();
        let (pre, post) = ops.split_at(pre_len.min(ops.len()));
        let session = if read_side { &self.read } else { &self.write };
        // Only splice the recorder block in if the session actually began
        // the forced action (a pre-action failure leaves stale spans).
        let spans = if session.current_trace_id() == Some(ctx.trace_id) {
            session.recorder().spans()
        } else {
            Vec::new()
        };
        let site = format!("client{}", self.site);
        let mut asm = TraceAssembler::new(ctx.trace_id, name, site.clone());
        Self::replay_ops(&mut asm, pre);
        asm.add_recorder_block(&site, &spans);
        Self::replay_ops(&mut asm, post);
        asm.set_outcome(match &result {
            Ok(_) => "ok",
            Err(e) => e.kind_name(),
        });
        let tree = asm.finish();
        if let Err(e) = &mut result {
            if let Some(dump) = e.context_mut() {
                dump.trace = Some(Box::new(tree.clone()));
            }
        }
        self.last_trace = Some(tree);
        result
    }

    /// Run one read action on the local session, folding its metered time
    /// into the cluster clock.
    fn read_action<T>(
        &mut self,
        cluster: &mut Cluster,
        name: &'static str,
        action: impl FnOnce(&mut Session) -> SessionResult<T>,
    ) -> SessionResult<RoutedRead<T>> {
        self.resync(cluster);
        let ctx = self.begin_routed_trace(cluster);
        let mut pre_len = 0;
        let result = (|| {
            let staleness = self.sync_reads(cluster)?;
            pre_len = cluster.action_trace_len();
            let result = action(&mut self.read);
            // Session metering resets per action, so post-action elapsed IS
            // the action's virtual time.
            cluster.advance(self.read.elapsed());
            Ok(RoutedRead {
                value: result?,
                staleness,
            })
        })();
        self.finish_routed_trace(cluster, ctx, name, pre_len, true, result)
    }

    /// Run one write action against the primary, gated on availability
    /// (which may trigger failover promotion), then acknowledge it.
    fn write_action<T>(
        &mut self,
        cluster: &mut Cluster,
        name: &'static str,
        action: impl FnOnce(&mut Session) -> SessionResult<T>,
    ) -> SessionResult<(T, WriteReceipt)> {
        self.resync(cluster);
        let ctx = self.begin_routed_trace(cluster);
        let mut pre_len = 0;
        let result = (|| {
            let deadline = self.policy.deadline;
            cluster.ensure_primary(deadline, self.write.recorder())?;
            self.resync(cluster); // the primary may have moved
            if let Some(ctx) = ctx {
                // resync rebuilds the sessions; re-force the action's id.
                self.write.force_next_trace_id(ctx.trace_id);
                self.read.force_next_trace_id(ctx.trace_id);
            }
            pre_len = cluster.action_trace_len();
            let result = action(&mut self.write);
            cluster.advance(self.write.elapsed());
            let value = result?;
            let receipt = cluster.acknowledge_write(self.write.recorder())?;
            self.last_write = Some(receipt);
            Ok((value, receipt))
        })();
        self.finish_routed_trace(cluster, ctx, name, pre_len, false, result)
    }

    // -- reads -------------------------------------------------------------

    /// Multi-level expand against the local replica (read-your-writes
    /// enforced).
    pub fn multi_level_expand(
        &mut self,
        cluster: &mut Cluster,
        root: ObjectId,
    ) -> SessionResult<RoutedRead<ExpandOutcome>> {
        self.read_action(cluster, "multi_level_expand", |s| {
            s.multi_level_expand(root)
        })
    }

    /// Recursive single-query retrieval against the local replica.
    pub fn query_all(
        &mut self,
        cluster: &mut Cluster,
        root: ObjectId,
    ) -> SessionResult<RoutedRead<QueryOutcome>> {
        self.read_action(cluster, "query_all", |s| s.query_all(root))
    }

    // -- writes ------------------------------------------------------------

    /// Forward one DML statement to the primary and acknowledge it.
    pub fn execute_dml(
        &mut self,
        cluster: &mut Cluster,
        sql: &str,
    ) -> SessionResult<(usize, WriteReceipt)> {
        let sql = sql.to_string();
        self.write_action(cluster, "execute_dml", move |s| s.execute_update(&sql))
    }

    /// Function-shipping check-out at the primary.
    pub fn check_out(
        &mut self,
        cluster: &mut Cluster,
        root: ObjectId,
    ) -> SessionResult<(CheckoutOutcome, WriteReceipt)> {
        self.write_action(cluster, "check_out", |s| {
            s.check_out_function_shipping(root)
        })
    }

    /// Check-in at the primary.
    pub fn check_in(
        &mut self,
        cluster: &mut Cluster,
        tree: &ProductTree,
    ) -> SessionResult<(usize, WriteReceipt)> {
        self.write_action(cluster, "check_in", |s| s.check_in(tree))
    }
}
