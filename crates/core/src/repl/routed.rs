//! A site-routed client session over a replicated cluster.
//!
//! A [`RoutedSession`] holds TWO metered sessions: a `read` session over a
//! LAN link to its nearest replica (the whole point of replication — the
//! paper's Table 2 "remote everything" latencies collapse when reads stay
//! local) and a `write` session over the configured WAN link to the
//! primary.
//!
//! **Read-your-writes contract**: the session remembers the
//! [`WriteReceipt`] of its last acknowledged write. Before any read it
//! waits (pumping the ship link) until the local replica's watermark
//! reaches that sequence, bounded by the session's [`RetryPolicy`]
//! deadline. A receipt from an older epoch needs no wait — promotion
//! guarantees acknowledged writes are part of the new epoch's baseline.
//! When the wait times out repeatedly, the session's
//! [`DegradationController`] staleness rung opens and reads are served
//! from the lagging replica with an explicit [`Staleness`] annotation
//! instead of failing the action outright.

use pdm_net::LinkProfile;

use super::{Cluster, WriteReceipt};
use crate::checkout::CheckoutOutcome;
use crate::product::{ObjectId, ProductTree};
use crate::resilience::RetryPolicy;
use crate::rules::table::RuleTable;
use crate::session::{
    ExpandOutcome, QueryOutcome, Session, SessionConfig, SessionError, SessionResult,
};

/// Explicit staleness annotation on a degraded read: the replica served it
/// from a state behind the session's own last write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Staleness {
    /// The sequence read-your-writes required.
    pub required_seq: u64,
    /// The replica's watermark when the read was served.
    pub applied_seq: u64,
}

/// A read outcome plus its freshness: `staleness: None` means the
/// read-your-writes guarantee held.
#[derive(Debug)]
pub struct RoutedRead<T> {
    pub value: T,
    pub staleness: Option<Staleness>,
}

/// A client session pinned to one site of a replicated cluster. See the
/// module docs.
pub struct RoutedSession {
    site: usize,
    config: SessionConfig,
    rules: RuleTable,
    read: Session,
    write: Session,
    generation: u64,
    epoch: u64,
    last_write: Option<WriteReceipt>,
    policy: RetryPolicy,
}

impl RoutedSession {
    /// Attach a session at `site`: reads go to the site's replica over a
    /// LAN profile, writes to the primary over `config.link`.
    pub fn connect(
        cluster: &Cluster,
        site: usize,
        config: SessionConfig,
        rules: RuleTable,
    ) -> Self {
        let read_cfg = SessionConfig {
            link: LinkProfile::lan(),
            ..config.clone()
        };
        let read = Session::attach(cluster.read_server(site), read_cfg, rules.clone());
        let write = Session::attach(cluster.write_server(), config.clone(), rules.clone());
        RoutedSession {
            site,
            config,
            rules,
            read,
            write,
            generation: cluster.generation(),
            epoch: cluster.epoch(),
            last_write: None,
            policy: RetryPolicy::default_wan(),
        }
    }

    pub fn site(&self) -> usize {
        self.site
    }

    /// Receipt of this session's last acknowledged write, if any.
    pub fn last_write(&self) -> Option<WriteReceipt> {
        self.last_write
    }

    pub fn retry_policy(&self) -> &RetryPolicy {
        &self.policy
    }

    /// Bound watermark waits and primary-outage waits by this policy's
    /// deadline.
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        self.policy = policy;
    }

    /// The local read session (stats, degradation state, recorder).
    pub fn read_session(&self) -> &Session {
        &self.read
    }

    pub fn read_session_mut(&mut self) -> &mut Session {
        &mut self.read
    }

    /// The primary-bound write session.
    pub fn write_session(&self) -> &Session {
        &self.write
    }

    /// Re-resolve server handles after a topology change (promotion or
    /// heal). Degradation state survives the re-attach — a lag breaker
    /// tripped against the old topology half-opens normally.
    fn resync(&mut self, cluster: &Cluster) {
        if self.generation == cluster.generation() && self.epoch == cluster.epoch() {
            return;
        }
        self.generation = cluster.generation();
        self.epoch = cluster.epoch();
        let read_cfg = SessionConfig {
            link: LinkProfile::lan(),
            ..self.config.clone()
        };
        let degradation = self.read.degradation().clone();
        self.read = Session::attach(cluster.read_server(self.site), read_cfg, self.rules.clone());
        *self.read.degradation_mut() = degradation;
        self.write = Session::attach(
            cluster.write_server(),
            self.config.clone(),
            self.rules.clone(),
        );
    }

    /// Enforce read-your-writes before a read, degrading to an annotated
    /// stale read when the staleness rung is open.
    fn sync_reads(&mut self, cluster: &mut Cluster) -> SessionResult<Option<Staleness>> {
        let Some(receipt) = self.last_write else {
            return Ok(None);
        };
        if receipt.epoch < cluster.epoch() {
            return Ok(None); // acked write survived into the promoted baseline
        }
        match cluster.wait_watermark(self.site, &receipt, &self.policy, self.read.recorder()) {
            Ok(_) => {
                self.read.degradation_mut().record_lag_success();
                Ok(None)
            }
            Err(SessionError::ReplicaLagTimeout {
                seq,
                applied,
                elapsed,
                context,
            }) => {
                self.read.degradation_mut().record_lag_failure();
                if self.read.degradation_mut().should_read_stale() {
                    cluster.note_stale_read();
                    Ok(Some(Staleness {
                        required_seq: seq,
                        applied_seq: applied,
                    }))
                } else {
                    Err(SessionError::ReplicaLagTimeout {
                        seq,
                        applied,
                        elapsed,
                        context,
                    })
                }
            }
            Err(e) => Err(e),
        }
    }

    /// Run one read action on the local session, folding its metered time
    /// into the cluster clock.
    fn read_action<T>(
        &mut self,
        cluster: &mut Cluster,
        action: impl FnOnce(&mut Session) -> SessionResult<T>,
    ) -> SessionResult<RoutedRead<T>> {
        self.resync(cluster);
        let staleness = self.sync_reads(cluster)?;
        let result = action(&mut self.read);
        // Session metering resets per action, so post-action elapsed IS the
        // action's virtual time.
        cluster.advance(self.read.elapsed());
        Ok(RoutedRead {
            value: result?,
            staleness,
        })
    }

    /// Run one write action against the primary, gated on availability
    /// (which may trigger failover promotion), then acknowledge it.
    fn write_action<T>(
        &mut self,
        cluster: &mut Cluster,
        action: impl FnOnce(&mut Session) -> SessionResult<T>,
    ) -> SessionResult<(T, WriteReceipt)> {
        self.resync(cluster);
        let deadline = self.policy.deadline;
        cluster.ensure_primary(deadline, self.write.recorder())?;
        self.resync(cluster); // the primary may have moved
        let result = action(&mut self.write);
        cluster.advance(self.write.elapsed());
        let value = result?;
        let receipt = cluster.acknowledge_write(self.write.recorder())?;
        self.last_write = Some(receipt);
        Ok((value, receipt))
    }

    // -- reads -------------------------------------------------------------

    /// Multi-level expand against the local replica (read-your-writes
    /// enforced).
    pub fn multi_level_expand(
        &mut self,
        cluster: &mut Cluster,
        root: ObjectId,
    ) -> SessionResult<RoutedRead<ExpandOutcome>> {
        self.read_action(cluster, |s| s.multi_level_expand(root))
    }

    /// Recursive single-query retrieval against the local replica.
    pub fn query_all(
        &mut self,
        cluster: &mut Cluster,
        root: ObjectId,
    ) -> SessionResult<RoutedRead<QueryOutcome>> {
        self.read_action(cluster, |s| s.query_all(root))
    }

    // -- writes ------------------------------------------------------------

    /// Forward one DML statement to the primary and acknowledge it.
    pub fn execute_dml(
        &mut self,
        cluster: &mut Cluster,
        sql: &str,
    ) -> SessionResult<(usize, WriteReceipt)> {
        let sql = sql.to_string();
        self.write_action(cluster, move |s| s.execute_update(&sql))
    }

    /// Function-shipping check-out at the primary.
    pub fn check_out(
        &mut self,
        cluster: &mut Cluster,
        root: ObjectId,
    ) -> SessionResult<(CheckoutOutcome, WriteReceipt)> {
        self.write_action(cluster, |s| s.check_out_function_shipping(root))
    }

    /// Check-in at the primary.
    pub fn check_in(
        &mut self,
        cluster: &mut Cluster,
        tree: &ProductTree,
    ) -> SessionResult<(usize, WriteReceipt)> {
        self.write_action(cluster, |s| s.check_in(tree))
    }
}
