//! Multi-site WAL-shipping replication with fault-injected failover.
//!
//! The paper's topology (§1, Fig. 1) is ONE central PDM server and many
//! worldwide clients — every read crosses the ocean. This module adds the
//! alternative worldwide deployment the measurements beg for: a primary
//! site that ships its committed WAL records over a (fault-injected,
//! metered) link to N replica sites, so a client in another continent can
//! satisfy expands and queries against a *local* replica and only forward
//! writes (check-out/check-in/DML) to the primary.
//!
//! The pieces:
//!
//! * [`ReplicationFeed`] — the primary's retained logical commit log, fed
//!   by the durability layer at commit time ([`crate::Durability::attach_feed`]);
//! * [`ReplicaSite`] — a continuously replaying replica with an
//!   applied-seq watermark, fenced by epoch;
//! * [`Cluster`] — the deterministic coordinator: shipping, semi-
//!   synchronous write acknowledgement, lease-based failover promotion
//!   (sweeping stale grants exactly as crash recovery does), fencing, and
//!   healing of the failed primary;
//! * [`RoutedSession`] — a client session that routes reads to its nearest
//!   replica with per-session read-your-writes, and writes to the primary.
//!
//! Everything runs on the virtual clock and seeded fault plans, so every
//! failover scenario replays from integers.

mod cluster;
mod feed;
mod replica;
mod routed;

pub use cluster::{AckedWrite, Cluster, ClusterConfig, FailoverReport, WriteReceipt};
pub use feed::ReplicationFeed;
pub use replica::ReplicaSite;
pub use routed::{RoutedRead, RoutedSession, Staleness};

use std::fmt;

use pdm_net::LinkError;

/// Why replication machinery failed. Link errors are transient (shipping
/// is idempotent and retried); the rest are fatal consistency violations.
#[derive(Debug)]
pub enum ReplError {
    /// A ship batch carried a stale epoch — the sender was deposed and
    /// must re-bootstrap from the new primary.
    Fenced { expected: u64, got: u64 },
    /// A shipped statement failed to re-execute on the replica.
    Replay { seq: u64, detail: String },
    /// A replayed commit produced a different storage version than the one
    /// it logged — the replica is not tracking this primary's history.
    VersionChain {
        seq: u64,
        logged: u64,
        produced: u64,
    },
    /// A site could not be (re-)seeded from a snapshot image.
    Bootstrap(String),
    /// A fully caught-up replica's state digest differs from the
    /// primary's — replication silently corrupted state.
    Diverged { site: usize, seq: u64 },
    /// The ship link failed this exchange (retried next pump round).
    Link(LinkError),
}

impl fmt::Display for ReplError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplError::Fenced { expected, got } => {
                write!(f, "fenced: replica at epoch {expected}, batch from epoch {got}")
            }
            ReplError::Replay { seq, detail } => {
                write!(f, "replica replay failed at seq {seq}: {detail}")
            }
            ReplError::VersionChain {
                seq,
                logged,
                produced,
            } => write!(
                f,
                "replica version chain broken at seq {seq}: logged v{logged}, replay produced v{produced}"
            ),
            ReplError::Bootstrap(detail) => write!(f, "site bootstrap failed: {detail}"),
            ReplError::Diverged { site, seq } => {
                write!(f, "site {site} diverged from primary at seq {seq}")
            }
            ReplError::Link(e) => write!(f, "ship link: {e}"),
        }
    }
}

impl std::error::Error for ReplError {}

impl From<LinkError> for ReplError {
    fn from(e: LinkError) -> Self {
        ReplError::Link(e)
    }
}

/// The serial-replay oracle: decode an epoch-base snapshot, replay a
/// durable-log prefix onto it statement by statement, and return the
/// resulting state fingerprint. Tests compare this against a promoted
/// replica's [`FailoverReport::promoted_fingerprint`] (or any replica's
/// fingerprint at a watermark) without touching cluster machinery.
///
/// Grant/release/token records maintain no database rows (their row
/// effects ride in their surrounding DML commits, exactly as in crash
/// recovery), so only [`pdm_wal::WalRecord::DmlCommit`] replays here.
pub fn replay_prefix(
    epoch_base: &[u8],
    prefix: &[(u64, pdm_wal::WalRecord)],
) -> Result<Vec<u8>, ReplError> {
    let mut snapshot = pdm_sql::persist::decode_snapshot(epoch_base)
        .map_err(|e| ReplError::Bootstrap(e.to_string()))?;
    crate::functions::register_into(&mut snapshot.catalog.functions);
    let db = pdm_sql::SharedDatabase::from_snapshot(snapshot);
    for (seq, record) in prefix {
        if let pdm_wal::WalRecord::DmlCommit { version, sql } = record {
            let stmt = pdm_sql::parser::parse_statement(sql).map_err(|e| ReplError::Replay {
                seq: *seq,
                detail: format!("{sql}: {e}"),
            })?;
            let (_, produced) = db.execute_ast(&stmt).map_err(|e| ReplError::Replay {
                seq: *seq,
                detail: format!("{sql}: {e}"),
            })?;
            if produced != *version {
                return Err(ReplError::VersionChain {
                    seq: *seq,
                    logged: *version,
                    produced,
                });
            }
        }
    }
    Ok(pdm_sql::persist::database_fingerprint(&db))
}
