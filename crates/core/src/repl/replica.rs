//! A replica site: a full PDM server continuously rebuilt from the
//! primary's shipped WAL records.
//!
//! A replica is bootstrapped from an epoch-base snapshot and then applies
//! ship batches in sequence order, using the same replay rules as crash
//! recovery ([`crate::durability::recover_server`]): DML commits re-execute
//! with a version-chain check, grant/release/token records maintain the aux
//! trackers. The `applied_seq` watermark is the replica's position in the
//! primary's logical log; read-your-writes waits compare against it.
//!
//! Shipping is idempotent — a batch may be re-delivered after a lost ack,
//! and records at or below the watermark are skipped — and fenced: a batch
//! from a stale epoch is rejected so a deposed primary cannot roll back a
//! promoted cluster.

use std::collections::BTreeMap;
use std::sync::Arc;

use pdm_net::{FaultPlan, LinkProfile, MeteredChannel};
use pdm_sql::persist::{database_fingerprint, decode_snapshot, fingerprint_digest};
use pdm_sql::{ResultSet, SharedDatabase};
use pdm_wal::WalRecord;

use super::ReplError;
use crate::durability::GrantIds;
use crate::server::PdmServer;
use crate::shared::SharedServer;

/// Bytes of framing overhead charged per shipped record (seq + length +
/// checksum), mirroring the WAL's on-device framing.
pub(crate) const RECORD_FRAME_BYTES: usize = 12;

/// Bytes in a ship acknowledgement (epoch + applied seq + state digest).
pub(crate) const ACK_BYTES: usize = 24;

/// One replica site. See the module docs.
#[derive(Debug)]
pub struct ReplicaSite {
    site: usize,
    server: PdmServer,
    channel: MeteredChannel,
    epoch: u64,
    applied_seq: u64,
    grants: BTreeMap<u64, GrantIds>,
    tokens: BTreeMap<u64, Option<ResultSet>>,
}

impl ReplicaSite {
    /// Seed a site from a snapshot image at watermark `base_seq` of
    /// `epoch`, with the grant/token trackers current at that point.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn bootstrap(
        site: usize,
        snapshot_bytes: &[u8],
        epoch: u64,
        base_seq: u64,
        grants: BTreeMap<u64, GrantIds>,
        tokens: BTreeMap<u64, Option<ResultSet>>,
        link: LinkProfile,
        plan: FaultPlan,
    ) -> Result<ReplicaSite, ReplError> {
        let mut snapshot =
            decode_snapshot(snapshot_bytes).map_err(|e| ReplError::Bootstrap(e.to_string()))?;
        // Decoded snapshots carry builtin functions only; restore the PDM
        // stored functions before any replayed SQL can call them.
        crate::functions::register_into(&mut snapshot.catalog.functions);
        let db = SharedDatabase::from_snapshot(snapshot);
        let next_token = tokens
            .keys()
            .chain(grants.keys())
            .max()
            .map(|t| t.saturating_add(1))
            .unwrap_or(1)
            .max(1);
        let shared = SharedServer::assemble(db, None, tokens.clone(), next_token);
        Ok(ReplicaSite {
            site,
            server: PdmServer::from_shared(Arc::new(shared)),
            channel: MeteredChannel::with_faults(link, plan),
            epoch,
            applied_seq: base_seq,
            grants,
            tokens,
        })
    }

    /// Apply a ship batch: fence stale epochs, skip already-applied
    /// records (idempotent re-delivery), replay the rest in order.
    /// Returns the number of records newly applied.
    pub fn apply_batch(
        &mut self,
        epoch: u64,
        records: &[(u64, WalRecord)],
    ) -> Result<u64, ReplError> {
        if epoch != self.epoch {
            return Err(ReplError::Fenced {
                expected: self.epoch,
                got: epoch,
            });
        }
        let mut applied = 0u64;
        for (seq, record) in records {
            if *seq <= self.applied_seq {
                continue;
            }
            self.apply_one(*seq, record)?;
            self.applied_seq = *seq;
            applied += 1;
        }
        Ok(applied)
    }

    fn apply_one(&mut self, seq: u64, record: &WalRecord) -> Result<(), ReplError> {
        match record {
            WalRecord::DmlCommit { version, sql } => {
                let stmt =
                    pdm_sql::parser::parse_statement(sql).map_err(|e| ReplError::Replay {
                        seq,
                        detail: format!("{sql}: {e}"),
                    })?;
                let (_, produced) =
                    self.server
                        .database()
                        .execute_ast(&stmt)
                        .map_err(|e| ReplError::Replay {
                            seq,
                            detail: format!("{sql}: {e}"),
                        })?;
                if produced != *version {
                    return Err(ReplError::VersionChain {
                        seq,
                        logged: *version,
                        produced,
                    });
                }
            }
            WalRecord::CheckoutGrant {
                token,
                assy_ids,
                comp_ids,
            } => {
                self.grants.insert(
                    *token,
                    GrantIds {
                        assy: assy_ids.clone(),
                        comp: comp_ids.clone(),
                    },
                );
            }
            WalRecord::CheckoutRelease { ids } => {
                for grant in self.grants.values_mut() {
                    grant.remove(ids);
                }
                self.grants.retain(|_, g| !g.is_empty());
            }
            WalRecord::TokenComplete { token, rows } => {
                self.tokens.insert(*token, rows.clone());
            }
        }
        Ok(())
    }

    /// One metered ship exchange: deliver `request_bytes` of batch over the
    /// fault-injected link, apply, and return the ack. A lost ack
    /// ([`pdm_net::LinkError::ResponseLost`]) leaves the records applied —
    /// the watermark has advanced and re-delivery is skipped — mirroring
    /// "server effects happened" semantics everywhere else in the stack.
    ///
    /// Returns `(applied, advance)` where `advance` is the **exact**
    /// virtual-clock seconds this exchange advanced the replica's channel
    /// (the same two-term sum the channel added to its own clock, so trace
    /// segments built from it reconcile bit-for-bit; a telescoped
    /// `elapsed()` difference would not).
    pub(crate) fn receive_ship(
        &mut self,
        epoch: u64,
        records: &[(u64, WalRecord)],
        request_bytes: usize,
    ) -> Result<(u64, f64), ReplError> {
        let pending = self
            .channel
            .try_send_request(request_bytes)
            .map_err(ReplError::Link)?;
        let applied = self.apply_batch(epoch, records)?;
        let rt = self
            .channel
            .try_receive_response(pending, ACK_BYTES)
            .map_err(ReplError::Link)?;
        Ok((applied, rt.total_time()))
    }

    pub fn site(&self) -> usize {
        self.site
    }

    /// The replica's watermark: highest applied primary sequence.
    pub fn applied_seq(&self) -> u64 {
        self.applied_seq
    }

    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Storage version of the replica's state.
    pub fn version(&self) -> u64 {
        self.server.shared().version()
    }

    /// The replica's server (attach read sessions to a clone of this).
    pub fn server(&self) -> &PdmServer {
        &self.server
    }

    /// Virtual seconds this site's ship link has consumed.
    pub fn elapsed(&self) -> f64 {
        self.channel.elapsed()
    }

    pub(crate) fn channel_mut(&mut self) -> &mut MeteredChannel {
        &mut self.channel
    }

    /// Full state fingerprint (catalog image) for cross-site comparison.
    pub fn fingerprint(&self) -> Vec<u8> {
        database_fingerprint(self.server.database())
    }

    /// Compact digest of the fingerprint — rides in ship acks.
    pub fn digest(&self) -> u64 {
        fingerprint_digest(&self.fingerprint())
    }

    /// Outstanding grants tracked from shipped records.
    pub fn grants(&self) -> &BTreeMap<u64, GrantIds> {
        &self.grants
    }

    pub(crate) fn grants_clone(&self) -> BTreeMap<u64, GrantIds> {
        self.grants.clone()
    }

    pub(crate) fn tokens_clone(&self) -> BTreeMap<u64, Option<ResultSet>> {
        self.tokens.clone()
    }

    /// Fence this site onto a new epoch (after a promotion it observed).
    pub(crate) fn set_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
    }

    /// Reset the watermark (the new epoch's sequences restart at 1).
    pub(crate) fn reset_applied(&mut self, seq: u64) {
        self.applied_seq = seq;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdm_net::FaultPlan;
    use pdm_sql::persist::encode_snapshot;
    use pdm_workload::{build_database, TreeSpec};

    fn seeded_replica() -> (ReplicaSite, Vec<u8>) {
        let (db, _) = build_database(&TreeSpec::new(2, 2, 1.0).with_node_size(64)).unwrap();
        let shared = SharedDatabase::new(db);
        let bytes = encode_snapshot(&shared.snapshot());
        let replica = ReplicaSite::bootstrap(
            1,
            &bytes,
            2,
            0,
            BTreeMap::new(),
            BTreeMap::new(),
            LinkProfile::lan(),
            FaultPlan::none(),
        )
        .unwrap();
        (replica, bytes)
    }

    #[test]
    fn stale_epoch_batches_are_fenced() {
        let (mut replica, _) = seeded_replica();
        let batch = vec![(
            1u64,
            WalRecord::DmlCommit {
                version: 1,
                sql: "UPDATE assy SET payload = 'x' WHERE obid = 1".into(),
            },
        )];
        match replica.apply_batch(1, &batch) {
            Err(ReplError::Fenced {
                expected: 2,
                got: 1,
            }) => {}
            other => panic!("stale epoch must be fenced, got {other:?}"),
        }
        assert_eq!(replica.applied_seq(), 0, "fenced batch must not apply");
    }

    #[test]
    fn redelivered_batches_apply_once() {
        let (mut replica, bytes) = seeded_replica();
        // Learn the version the statement produces on a twin of the base.
        let twin =
            SharedDatabase::from_snapshot(decode_snapshot(&bytes).expect("snapshot round-trips"));
        let stmt = pdm_sql::parser::parse_statement("UPDATE assy SET payload = 'x' WHERE obid = 1")
            .unwrap();
        let (_, version) = twin.execute_ast(&stmt).unwrap();
        let batch = vec![(
            1u64,
            WalRecord::DmlCommit {
                version,
                sql: "UPDATE assy SET payload = 'x' WHERE obid = 1".into(),
            },
        )];
        assert_eq!(replica.apply_batch(2, &batch).unwrap(), 1);
        // Re-delivery after a lost ack skips everything at or below the
        // watermark — replay is idempotent, versions don't double-advance.
        assert_eq!(replica.apply_batch(2, &batch).unwrap(), 0);
        assert_eq!(replica.applied_seq(), 1);
        assert_eq!(replica.version(), version);
    }
}
