//! Client-side machinery: the strategy switch and late (post-transfer) rule
//! evaluation.

use std::collections::HashMap;

use pdm_sql::functions::FunctionRegistry;
use pdm_sql::{ResultSet, Row, Value};

use crate::rules::classify::ConditionClass;
use crate::rules::condition::Condition;
use crate::rules::table::RuleTable;
use crate::rules::{ActionKind, Rule};

/// The three client strategies the paper compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Navigational access; rules evaluated at the client after transfer
    /// (the unoptimized baseline of Table 2).
    LateEval,
    /// Navigational access; row conditions compiled into each query
    /// (Approach 1, Table 3).
    EarlyEval,
    /// Tree retrievals compiled into one recursive query with rules
    /// embedded (Approach 2, Table 4).
    Recursive,
}

impl Strategy {
    pub const ALL: [Strategy; 3] = [Strategy::LateEval, Strategy::EarlyEval, Strategy::Recursive];

    pub fn label(&self) -> &'static str {
        match self {
            Strategy::LateEval => "late eval",
            Strategy::EarlyEval => "early eval",
            Strategy::Recursive => "recursion",
        }
    }

    /// Does this strategy evaluate row conditions at the server?
    pub fn early_rules(&self) -> bool {
        !matches!(self, Strategy::LateEval)
    }
}

/// Build an attribute map from one result row (column name → value).
pub fn row_attrs(rs: &ResultSet, row: &Row) -> HashMap<String, Value> {
    rs.schema
        .columns()
        .iter()
        .zip(row.values())
        .map(|(c, v)| (c.name.clone(), v.clone()))
        .collect()
}

/// Per-object-type groups of relevant row-condition rules. Types with no
/// relevant rules yield no group (absent rules mean unrestricted access,
/// matching what early evaluation injects into SQL).
pub fn permission_groups<'a>(
    rules: &'a RuleTable,
    user: &str,
    action: ActionKind,
    tables: &[&str],
) -> Vec<Vec<&'a Rule>> {
    tables
        .iter()
        .map(|t| rules.relevant_for_type(user, action, ConditionClass::Row, t))
        .filter(|g| !g.is_empty())
        .collect()
}

/// Late rule evaluation for one transferred row: within each type group the
/// rule conditions are OR-ed (any permitting rule suffices), and all groups
/// must permit — exactly the predicate early evaluation would have put in
/// the WHERE clause (§4.1).
pub fn permitted(
    attrs: &HashMap<String, Value>,
    groups: &[Vec<&Rule>],
    funcs: &FunctionRegistry,
) -> bool {
    groups.iter().all(|group| {
        group.iter().any(|rule| match &rule.condition {
            Condition::Row(pred) => pred.eval(attrs, funcs),
            // Tree conditions cannot be decided per row; they never appear
            // in these groups (permission_groups filters to Row class).
            _ => false,
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::functions::client_registry;
    use crate::rules::condition::{CmpOp, RowPredicate};
    use crate::rules::UserPattern;

    fn rules() -> RuleTable {
        let mut t = RuleTable::new();
        t.add(Rule::for_all_users(
            ActionKind::Access,
            "link",
            Condition::Row(RowPredicate::compare("strc_opt", CmpOp::Eq, "OPTA")),
        ));
        t.add(Rule::new(
            UserPattern::Named("scott".into()),
            ActionKind::Access,
            "assy",
            Condition::Row(RowPredicate::compare("dec", CmpOp::Eq, "+")),
        ));
        t.add(Rule::new(
            UserPattern::Named("scott".into()),
            ActionKind::Access,
            "assy",
            Condition::Row(RowPredicate::compare("name", CmpOp::Eq, "special")),
        ));
        t
    }

    fn attrs(pairs: &[(&str, &str)]) -> HashMap<String, Value> {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), Value::from(*v)))
            .collect()
    }

    #[test]
    fn groups_skip_ruleless_types() {
        let r = rules();
        let groups = permission_groups(&r, "scott", ActionKind::Expand, &["link", "assy", "comp"]);
        assert_eq!(groups.len(), 2); // comp has no rules
        let groups = permission_groups(&r, "tiger", ActionKind::Expand, &["link", "assy"]);
        assert_eq!(groups.len(), 1); // assy rules are scott-only
    }

    #[test]
    fn permitted_requires_all_groups() {
        let r = rules();
        let funcs = client_registry();
        let groups = permission_groups(&r, "scott", ActionKind::Expand, &["link", "assy"]);
        // visible link + decomposable assy → permitted
        assert!(permitted(
            &attrs(&[("strc_opt", "OPTA"), ("dec", "+")]),
            &groups,
            &funcs
        ));
        // invisible link → denied even though assy rule passes
        assert!(!permitted(
            &attrs(&[("strc_opt", "NONE"), ("dec", "+")]),
            &groups,
            &funcs
        ));
        // OR within the assy group: name = 'special' rescues dec = '-'
        assert!(permitted(
            &attrs(&[("strc_opt", "OPTA"), ("dec", "-"), ("name", "special")]),
            &groups,
            &funcs
        ));
    }

    #[test]
    fn no_groups_means_everything_permitted() {
        let funcs = client_registry();
        assert!(permitted(&attrs(&[]), &[], &funcs));
    }

    #[test]
    fn strategy_labels_and_flags() {
        assert_eq!(Strategy::LateEval.label(), "late eval");
        assert!(!Strategy::LateEval.early_rules());
        assert!(Strategy::EarlyEval.early_rules());
        assert!(Strategy::Recursive.early_rules());
    }
}
