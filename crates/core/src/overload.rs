//! Server-side overload protection: admission control, priority classes,
//! and client retry budgets.
//!
//! The paper's setting — one central PDM server, many worldwide clients —
//! has a classic failure mode the paper never had to face at its scale:
//! when offered load exceeds capacity, unbounded queuing plus per-client
//! retries form a *metastable* feedback loop (every timeout creates a
//! retry, retries raise the load, higher load creates more timeouts) from
//! which the system does not recover even after the original spike ends.
//! The defense is layered:
//!
//! * **Admission control** ([`OverloadGate`]): a token bucket refilled at
//!   the server's configured capacity plus a concurrency limit. An action
//!   that cannot be served *now* is rejected *fast* with a `retry_after`
//!   hint instead of joining an unbounded queue — rejecting is O(1),
//!   serving a doomed request is not.
//! * **Priority classes** ([`Priority`]): as the bucket drains, batch
//!   work is shed first, then check-outs, and interactive expands/queries
//!   last, by reserving a fraction of the bucket for the higher classes
//!   (a drained bucket sheds batch at < 50 % headroom, check-out at
//!   < 15 %, interactive only when empty).
//! * **Retry budgets** ([`RetryBudget`]): clients may retry only out of a
//!   leaky bucket earned at ~10 % of their request rate, so under a
//!   server brown-out the aggregate offered load converges *down* to
//!   ~1.1× the fresh-request rate instead of amplifying without bound.
//!
//! Deadline propagation — abandoning doomed work at the next blocking
//! point — lives at the blocking points themselves (lock queue, write
//! gate, cache single-flight, watermark waits); see DESIGN.md §14.
//!
//! The gate runs on the same **virtual clock** the WAN simulation uses:
//! the driver advances it explicitly via [`OverloadGate::advance_to`], so
//! every admission decision is a deterministic function of the arrival
//! schedule — the overload bench replays bit-identically across runs.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use pdm_obs::{Counter, Gauge, MetricsRegistry};

/// Priority class of one server action. Ordering is shed order: lower
/// classes are rejected while higher classes still get tokens.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Background/batch work (rollups, sweeps): shed first.
    Batch,
    /// Check-out / check-in: shed when the bucket drops below 15 %.
    Checkout,
    /// Interactive expand/query: shed only when the bucket is empty.
    Interactive,
}

impl Priority {
    /// Fraction of the bucket this class must leave untouched — the
    /// reserved headroom for the classes above it.
    fn reserve_fraction(self) -> f64 {
        match self {
            Priority::Interactive => 0.0,
            Priority::Checkout => 0.15,
            Priority::Batch => 0.5,
        }
    }

    /// Stable label (metrics detail, bench JSON).
    pub fn label(self) -> &'static str {
        match self {
            Priority::Interactive => "interactive",
            Priority::Checkout => "checkout",
            Priority::Batch => "batch",
        }
    }
}

/// Configuration of an [`OverloadGate`].
#[derive(Debug, Clone, Copy)]
pub struct OverloadConfig {
    /// Token refill rate — the server's engineered capacity in admitted
    /// operations per (virtual) second.
    pub capacity_ops_per_s: f64,
    /// Bucket size in tokens (burst tolerance). A bucket of `burst`
    /// admits that many back-to-back arrivals before the refill rate
    /// becomes the limit.
    pub burst: f64,
    /// Hard cap on concurrently admitted operations (permits in flight).
    pub max_inflight: u64,
}

impl OverloadConfig {
    /// A gate for a server engineered to `capacity` admitted ops/s with
    /// one second of burst tolerance and a generous concurrency cap.
    pub fn per_second(capacity: f64) -> Self {
        OverloadConfig {
            capacity_ops_per_s: capacity,
            burst: capacity.max(1.0),
            max_inflight: (capacity.ceil() as u64).max(4) * 4,
        }
    }

    pub fn with_burst(mut self, burst: f64) -> Self {
        self.burst = burst;
        self
    }

    pub fn with_max_inflight(mut self, n: u64) -> Self {
        self.max_inflight = n;
        self
    }
}

/// Why the gate refused an admission.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rejection {
    /// Hint: earliest (virtual) delay in seconds after which a retry of
    /// the same class could be admitted, assuming no competing arrivals.
    pub retry_after: f64,
}

#[derive(Debug)]
struct Bucket {
    tokens: f64,
    /// Virtual time of the last refill.
    refilled_at: f64,
}

#[derive(Debug)]
struct GateMetrics {
    admitted: Counter,
    rejected: Counter,
    inflight: Gauge,
    shed_interactive: Counter,
    shed_checkout: Counter,
    shed_batch: Counter,
}

/// The admission gate. One per server; sessions consult it at dispatch.
///
/// Time is virtual: the bench/driver advances it with
/// [`OverloadGate::advance_to`] (monotonic max), which keeps every
/// decision deterministic. A gate whose clock never advances degenerates
/// to a pure burst + concurrency limit.
#[derive(Debug)]
pub struct OverloadGate {
    cfg: OverloadConfig,
    bucket: Mutex<Bucket>,
    /// Virtual now, as f64 bits; writers take the max so time is monotone.
    now_bits: AtomicU64,
    inflight: AtomicU64,
    m: GateMetrics,
}

impl OverloadGate {
    /// Build a gate registering its `admission.*`/`overload.*` metric
    /// families in `registry` (normally the server's own registry).
    pub fn new(cfg: OverloadConfig, registry: &MetricsRegistry) -> Arc<Self> {
        Arc::new(OverloadGate {
            cfg,
            bucket: Mutex::new(Bucket {
                tokens: cfg.burst,
                refilled_at: 0.0,
            }),
            now_bits: AtomicU64::new(0f64.to_bits()),
            inflight: AtomicU64::new(0),
            m: GateMetrics {
                admitted: registry.counter("admission.admitted"),
                rejected: registry.counter("admission.rejected"),
                inflight: registry.gauge("admission.inflight"),
                shed_interactive: registry.counter("overload.shed_interactive"),
                shed_checkout: registry.counter("overload.shed_checkout"),
                shed_batch: registry.counter("overload.shed_batch"),
            },
        })
    }

    /// The gate's configuration.
    pub fn config(&self) -> OverloadConfig {
        self.cfg
    }

    /// Advance the gate's virtual clock to `now` seconds (monotonic: the
    /// clock never goes backwards, concurrent advances take the max).
    pub fn advance_to(&self, now: f64) {
        let mut cur = self.now_bits.load(Ordering::Acquire);
        while f64::from_bits(cur) < now {
            match self.now_bits.compare_exchange_weak(
                cur,
                now.to_bits(),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
    }

    /// The gate's current virtual time.
    pub fn now(&self) -> f64 {
        f64::from_bits(self.now_bits.load(Ordering::Acquire))
    }

    /// Number of permits currently in flight.
    pub fn in_flight(&self) -> u64 {
        self.inflight.load(Ordering::Acquire)
    }

    /// Admit one operation of class `prio`, or reject fast with a
    /// `retry_after` hint. An admission consumes one token and holds one
    /// concurrency slot until the returned [`Permit`] drops.
    pub fn admit(self: &Arc<Self>, prio: Priority) -> Result<Permit, Rejection> {
        let now = self.now();
        let rate = self.cfg.capacity_ops_per_s;
        {
            let mut b = lock_bucket(&self.bucket);
            if now > b.refilled_at {
                b.tokens = (b.tokens + (now - b.refilled_at) * rate).min(self.cfg.burst);
                b.refilled_at = now;
            }
            let reserve = prio.reserve_fraction() * self.cfg.burst;
            let needed = 1.0 + reserve;
            if b.tokens < needed {
                let deficit = needed - b.tokens;
                drop(b);
                return Err(self.reject(prio, if rate > 0.0 { deficit / rate } else { 1.0 }));
            }
            if self.inflight.load(Ordering::Acquire) >= self.cfg.max_inflight {
                drop(b);
                return Err(self.reject(prio, if rate > 0.0 { 1.0 / rate } else { 1.0 }));
            }
            b.tokens -= 1.0;
        }
        self.inflight.fetch_add(1, Ordering::AcqRel);
        self.m.admitted.inc();
        self.m.inflight.set(self.in_flight() as f64);
        Ok(Permit {
            gate: Arc::clone(self),
        })
    }

    fn reject(&self, prio: Priority, retry_after: f64) -> Rejection {
        self.m.rejected.inc();
        match prio {
            Priority::Interactive => self.m.shed_interactive.inc(),
            Priority::Checkout => self.m.shed_checkout.inc(),
            Priority::Batch => self.m.shed_batch.inc(),
        }
        Rejection {
            retry_after: retry_after.max(1e-9),
        }
    }
}

fn lock_bucket(m: &Mutex<Bucket>) -> std::sync::MutexGuard<'_, Bucket> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// RAII admission permit: holding it is holding one concurrency slot.
#[derive(Debug)]
pub struct Permit {
    gate: Arc<OverloadGate>,
}

impl Drop for Permit {
    fn drop(&mut self) {
        self.gate.inflight.fetch_sub(1, Ordering::AcqRel);
        self.gate.m.inflight.set(self.gate.in_flight() as f64);
    }
}

// ---------------------------------------------------------------------------
// Client-side retry budget
// ---------------------------------------------------------------------------

/// A per-session leaky-bucket retry budget: each fresh request earns
/// `earn_per_request` tokens (capped at `capacity`), each retry spends
/// one. With the default ratio a long-running session's retries converge
/// to ≤ ~10 % of its requests — the property that keeps aggregate offered
/// load from amplifying during a brown-out.
#[derive(Debug, Clone)]
pub struct RetryBudget {
    tokens: f64,
    capacity: f64,
    earn_per_request: f64,
    denied: u64,
}

impl RetryBudget {
    pub fn new(capacity: f64, earn_per_request: f64) -> Self {
        RetryBudget {
            // Start full so a cold session can still ride out one fault
            // burst; steady-state behaviour is set by the earn ratio.
            tokens: capacity,
            capacity,
            earn_per_request,
            denied: 0,
        }
    }

    /// The default ~10 % budget: 10 tokens of burst, 0.1 earned per
    /// request.
    pub fn default_ratio() -> Self {
        RetryBudget::new(10.0, 0.1)
    }

    /// Credit one fresh (non-retry) request.
    pub fn on_request(&mut self) {
        self.tokens = (self.tokens + self.earn_per_request).min(self.capacity);
    }

    /// Try to spend one retry token. `false` means the budget is
    /// exhausted and the caller must surface the underlying failure
    /// instead of retrying.
    pub fn try_spend(&mut self) -> bool {
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            self.denied += 1;
            false
        }
    }

    /// Remaining tokens (diagnostics).
    pub fn tokens(&self) -> f64 {
        self.tokens
    }

    /// Retries denied so far.
    pub fn denied(&self) -> u64 {
        self.denied
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gate(capacity: f64) -> Arc<OverloadGate> {
        OverloadGate::new(
            OverloadConfig::per_second(capacity),
            &MetricsRegistry::new(),
        )
    }

    #[test]
    fn bucket_admits_burst_then_refills_at_rate() {
        let g = gate(10.0); // burst 10
        let mut permits = Vec::new();
        for _ in 0..10 {
            permits.push(g.admit(Priority::Interactive).expect("burst admits"));
        }
        let r = g.admit(Priority::Interactive).unwrap_err();
        assert!(r.retry_after > 0.0);
        // Advance past the deficit: exactly one more token has refilled.
        g.advance_to(0.1);
        let late = g.admit(Priority::Interactive).expect("one token refilled");
        assert!(g.admit(Priority::Interactive).is_err());
        drop(permits);
        assert_eq!(g.in_flight(), 1);
        drop(late);
        assert_eq!(g.in_flight(), 0);
    }

    #[test]
    fn priorities_shed_in_order_as_bucket_drains() {
        let g = gate(100.0); // burst 100
        let mut held = Vec::new();
        // Drain to just above the 50 % batch reserve.
        for _ in 0..49 {
            held.push(g.admit(Priority::Interactive).unwrap());
        }
        // 51 tokens left: batch needs 1 + 50, admitted once then shed.
        held.push(g.admit(Priority::Batch).unwrap());
        assert!(g.admit(Priority::Batch).is_err());
        // Check-out still fine (needs 1 + 15).
        held.push(g.admit(Priority::Checkout).unwrap());
        // Drain below the check-out reserve.
        for _ in 0..34 {
            held.push(g.admit(Priority::Interactive).unwrap());
        }
        assert!(g.admit(Priority::Checkout).is_err());
        assert!(g.admit(Priority::Interactive).is_ok());
    }

    #[test]
    fn concurrency_cap_rejects_when_saturated() {
        let g = OverloadGate::new(
            OverloadConfig::per_second(1000.0).with_max_inflight(2),
            &MetricsRegistry::new(),
        );
        let a = g.admit(Priority::Interactive).unwrap();
        let _b = g.admit(Priority::Interactive).unwrap();
        assert!(g.admit(Priority::Interactive).is_err());
        drop(a);
        assert!(g.admit(Priority::Interactive).is_ok());
    }

    #[test]
    fn clock_is_monotonic() {
        let g = gate(1.0);
        g.advance_to(5.0);
        g.advance_to(3.0);
        assert_eq!(g.now(), 5.0);
    }

    #[test]
    fn retry_budget_converges_to_ratio() {
        let mut b = RetryBudget::default_ratio();
        // Burn the initial burst.
        let mut spent = 0u64;
        while b.try_spend() {
            spent += 1;
        }
        assert_eq!(spent, 10);
        // Steady state: 1000 requests earn ~100 retries.
        let mut granted = 0u64;
        for _ in 0..1000 {
            b.on_request();
            if b.try_spend() {
                granted += 1;
            }
        }
        assert!(
            (90..=110).contains(&granted),
            "retries should track ~10% of requests, got {granted}"
        );
        assert!(b.denied() > 0);
    }
}
