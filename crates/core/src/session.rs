//! End-to-end sessions: a PDM client talking to the database server over a
//! metered WAN. This is where the paper's three system variants become
//! executable — every user action runs real SQL and every byte crosses the
//! simulated link.

use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;
use std::sync::Arc;

use pdm_net::{FaultPlan, LinkError, LinkProfile, MeteredChannel, TrafficStats};
use pdm_obs::{
    kinds, FlightDump, MetricsRegistry, QueryProfile, Recorder, SpanGuard, TraceAssembler,
    TraceContext, TraceIdGen, TraceTree, ROOT_GID,
};
use pdm_sql::functions::FunctionRegistry;
use pdm_sql::{Database, ResultSet, Value};

use crate::client::{self, Strategy};
use crate::product::{ObjectId, ProductNode, ProductTree};
use crate::query::modificator::{ModError, Modificator};
use crate::query::{navigational, recursive};
use crate::resilience::{DegradationController, RetryPolicy};
use crate::rules::table::RuleTable;
use crate::rules::ActionKind;
use crate::server::PdmServer;

/// Errors surfaced by session actions.
#[derive(Debug)]
pub enum SessionError {
    Sql(pdm_sql::Error),
    Modification(ModError),
    /// The requested root object does not exist.
    RootNotFound(ObjectId),
    /// The retry budget or deadline ran out without completing the
    /// exchange. `elapsed` is the virtual clock when the session gave up.
    Timeout {
        attempts: u32,
        elapsed: f64,
        /// Flight-recorder dump: the span kind in which the deadline
        /// expired (`"net.exchange"` for link stalls, `"locks.wait"` for
        /// check-out lock waits) plus the most recent recorded events
        /// (empty unless profiling is on).
        context: FlightDump,
    },
    /// The link is in a scheduled outage window lasting (at least) until
    /// the given virtual time, and the retry budget ran out first.
    LinkDown {
        until: f64,
        /// Flight-recorder dump (see [`SessionError::Timeout::context`]).
        context: FlightDump,
    },
    /// Durable server state failed its integrity check: a checksum mismatch
    /// at the given byte offset. Carries expected vs found CRC so the
    /// diagnostic pinpoints the damage.
    CorruptLog {
        offset: usize,
        expected: u32,
        found: u32,
    },
    /// Crash recovery could not rebuild the server (broken version chain,
    /// failed replay, missing checkpoint, ...). The detail string carries
    /// the specific inconsistency.
    RecoveryFailed {
        detail: String,
    },
    /// A read-your-writes wait gave up: the local replica's applied-seq
    /// watermark did not reach the session's last write before the retry
    /// deadline. The context pins `repl.wait_watermark`.
    ReplicaLagTimeout {
        /// The commit seq the session's last write published.
        seq: u64,
        /// The replica's watermark when the session gave up.
        applied: u64,
        /// Virtual seconds spent waiting.
        elapsed: f64,
        /// Flight-recorder dump (see [`SessionError::Timeout::context`]).
        context: FlightDump,
    },
    /// The primary site is inside an outage window and neither waiting it
    /// out nor lease-expiry promotion fit inside the session's deadline.
    /// The context pins `net.exchange` (the write never left the client).
    PrimaryUnavailable {
        /// Virtual time at which the primary is expected back (or at which
        /// the failover lease expires, whichever the coordinator was
        /// waiting on).
        until: f64,
        /// Flight-recorder dump (see [`SessionError::Timeout::context`]).
        context: FlightDump,
    },
    /// The server's admission gate shed this request (or its lock-wait
    /// queue was full): the server is saturated and rejected fast rather
    /// than queuing work it cannot serve in time. Retry after
    /// `retry_after` (virtual) seconds — and only out of a retry budget.
    Overloaded {
        /// Earliest delay (virtual seconds) after which a retry could be
        /// admitted, assuming no competing arrivals.
        retry_after: f64,
    },
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::Sql(e) => write!(f, "database error: {e}"),
            SessionError::Modification(e) => write!(f, "query modification failed: {e}"),
            SessionError::RootNotFound(id) => write!(f, "no object with obid {id}"),
            SessionError::Timeout {
                attempts,
                elapsed,
                context,
            } => {
                write!(
                    f,
                    "gave up after {attempts} attempts ({elapsed:.2}s elapsed)"
                )?;
                if !context.expired_in.is_empty() {
                    write!(f, " [deadline expired in {}]", context.expired_in)?;
                }
                Ok(())
            }
            SessionError::LinkDown { until, context } => {
                write!(f, "link down until t={until:.2}s")?;
                if !context.expired_in.is_empty() {
                    write!(f, " [deadline expired in {}]", context.expired_in)?;
                }
                Ok(())
            }
            SessionError::CorruptLog {
                offset,
                expected,
                found,
            } => write!(
                f,
                "corrupt durable log at offset {offset}: expected crc {expected:#010x}, found {found:#010x}"
            ),
            SessionError::RecoveryFailed { detail } => {
                write!(f, "crash recovery failed: {detail}")
            }
            SessionError::ReplicaLagTimeout {
                seq,
                applied,
                elapsed,
                context,
            } => {
                write!(
                    f,
                    "replica lag: watermark {applied} never reached write seq {seq} ({elapsed:.2}s elapsed)"
                )?;
                if !context.expired_in.is_empty() {
                    write!(f, " [deadline expired in {}]", context.expired_in)?;
                }
                Ok(())
            }
            SessionError::PrimaryUnavailable { until, context } => {
                write!(f, "primary unavailable until t={until:.2}s")?;
                if !context.expired_in.is_empty() {
                    write!(f, " [deadline expired in {}]", context.expired_in)?;
                }
                Ok(())
            }
            SessionError::Overloaded { retry_after } => {
                write!(f, "server overloaded; retry after {retry_after:.3}s")
            }
        }
    }
}

impl std::error::Error for SessionError {}

impl SessionError {
    /// Classify a final link failure: outages map to [`SessionError::LinkDown`],
    /// everything else to [`SessionError::Timeout`]. Either way the deadline
    /// expired waiting on the network, so the context pins `net.exchange`
    /// and carries the recorder's recent events.
    pub(crate) fn from_link(last: LinkError, attempts: u32, elapsed: f64, obs: &Recorder) -> Self {
        let context = FlightDump::at("net.exchange").with_events(obs);
        match last {
            LinkError::Outage { until, .. } => SessionError::LinkDown { until, context },
            _ => SessionError::Timeout {
                attempts,
                elapsed,
                context,
            },
        }
    }

    /// The flight-recorder context attached to this error, if any.
    pub fn context(&self) -> Option<&FlightDump> {
        match self {
            SessionError::Timeout { context, .. }
            | SessionError::LinkDown { context, .. }
            | SessionError::ReplicaLagTimeout { context, .. }
            | SessionError::PrimaryUnavailable { context, .. } => Some(context),
            _ => None,
        }
    }

    /// Mutable access to the attached context (used by the tracing layer
    /// to splice the assembled causal tree into a failing action's dump).
    pub(crate) fn context_mut(&mut self) -> Option<&mut FlightDump> {
        match self {
            SessionError::Timeout { context, .. }
            | SessionError::LinkDown { context, .. }
            | SessionError::ReplicaLagTimeout { context, .. }
            | SessionError::PrimaryUnavailable { context, .. } => Some(context),
            _ => None,
        }
    }

    /// The variant name, e.g. `"Timeout"` — the outcome label trace trees
    /// and tail samplers key on.
    pub fn kind_name(&self) -> &'static str {
        match self {
            SessionError::Sql(_) => "Sql",
            SessionError::Modification(_) => "Modification",
            SessionError::RootNotFound(_) => "RootNotFound",
            SessionError::Timeout { .. } => "Timeout",
            SessionError::LinkDown { .. } => "LinkDown",
            SessionError::CorruptLog { .. } => "CorruptLog",
            SessionError::RecoveryFailed { .. } => "RecoveryFailed",
            SessionError::ReplicaLagTimeout { .. } => "ReplicaLagTimeout",
            SessionError::PrimaryUnavailable { .. } => "PrimaryUnavailable",
            SessionError::Overloaded { .. } => "Overloaded",
        }
    }

    /// Whether this error came from the link (retryable territory) rather
    /// than from SQL processing or a bad request.
    pub fn is_link_failure(&self) -> bool {
        matches!(
            self,
            SessionError::Timeout { .. }
                | SessionError::LinkDown { .. }
                | SessionError::ReplicaLagTimeout { .. }
                | SessionError::PrimaryUnavailable { .. }
        )
    }

    /// Classify a shared-server failure: a check-out lock wait that
    /// exceeded the per-action deadline surfaces as
    /// [`SessionError::Timeout`], exactly like a link deadline — but its
    /// context pins `locks.wait`, so the two are distinguishable.
    pub(crate) fn from_shared(
        e: crate::shared::SharedServerError,
        elapsed: f64,
        obs: &Recorder,
    ) -> Self {
        match e {
            crate::shared::SharedServerError::Sql(e) => SessionError::Sql(e),
            crate::shared::SharedServerError::LockTimeout { waited } => SessionError::Timeout {
                attempts: 1,
                elapsed: elapsed + waited.as_secs_f64(),
                context: FlightDump::at("locks.wait").with_events(obs),
            },
            // A doomed call abandoned at a server blocking point looks the
            // same to the client as a lock timeout, but its context pins
            // the abandon point.
            crate::shared::SharedServerError::DeadlineExpired { waited } => SessionError::Timeout {
                attempts: 1,
                elapsed: elapsed + waited.as_secs_f64(),
                context: FlightDump::at("overload.abandon").with_events(obs),
            },
            // A full lock queue is a saturation signal: surface it as a
            // fast overload rejection, retryable out of the budget.
            crate::shared::SharedServerError::QueueFull { .. } => {
                SessionError::Overloaded { retry_after: 0.1 }
            }
        }
    }
}

impl From<pdm_sql::Error> for SessionError {
    fn from(e: pdm_sql::Error) -> Self {
        SessionError::Sql(e)
    }
}

impl From<crate::durability::RecoveryError> for SessionError {
    fn from(e: crate::durability::RecoveryError) -> Self {
        use crate::durability::RecoveryError;
        match e {
            RecoveryError::CorruptCheckpoint {
                offset,
                expected,
                found,
            } => SessionError::CorruptLog {
                offset,
                expected,
                found,
            },
            other => SessionError::RecoveryFailed {
                detail: other.to_string(),
            },
        }
    }
}

impl From<ModError> for SessionError {
    fn from(e: ModError) -> Self {
        SessionError::Modification(e)
    }
}

pub type SessionResult<T> = Result<T, SessionError>;

/// Who is acting, how, and over which link.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    pub user: String,
    pub strategy: Strategy,
    pub link: LinkProfile,
}

impl SessionConfig {
    pub fn new(user: impl Into<String>, strategy: Strategy, link: LinkProfile) -> Self {
        SessionConfig {
            user: user.into(),
            strategy,
            link,
        }
    }
}

/// Result of a tree-retrieving action.
#[derive(Debug, Clone)]
pub struct ExpandOutcome {
    pub tree: ProductTree,
    /// Traffic of this action only.
    pub stats: TrafficStats,
    /// Whether the action was served by the degraded (level-batched
    /// navigational) path instead of the configured strategy — see
    /// [`DegradationController`].
    pub degraded: bool,
}

/// Result of the set-oriented Query action (no structure information).
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    pub nodes: Vec<ProductNode>,
    pub stats: TrafficStats,
}

/// Per-session cross-site tracing state (DESIGN.md §15): the deterministic
/// id stream, this session's site label in assembled trees, the context of
/// the in-flight action, and an optional externally-forced next id (routed
/// sessions draw ids from their own stream so client and cluster spans
/// share one trace).
struct TraceState {
    gen: TraceIdGen,
    site: String,
    current: Option<TraceContext>,
    next_id: Option<u64>,
}

/// A PDM client session bound to a server and a WAN profile.
pub struct Session {
    server: PdmServer,
    channel: MeteredChannel,
    config: SessionConfig,
    rules: RuleTable,
    funcs: FunctionRegistry,
    view_names: HashSet<String>,
    /// Link table of the hierarchical view being navigated ("link" = the
    /// physical product structure; alternative views are additional link
    /// tables over the same objects, §1 footnote 1).
    structure_table: String,
    /// The installed fault plan, kept so [`Session::set_link`] can re-apply
    /// it to the rebuilt channel.
    fault_plan: Option<FaultPlan>,
    retry: RetryPolicy,
    /// Leaky-bucket retry budget (None — the default — retries are
    /// limited only by [`RetryPolicy`], exactly the pre-budget behaviour).
    retry_budget: Option<crate::overload::RetryBudget>,
    /// Admission priority override: `None` uses the per-dispatch default
    /// (interactive for queries, checkout for writes/check-outs); batch
    /// sessions set `Some(Priority::Batch)` so all their work sheds first.
    priority_override: Option<crate::overload::Priority>,
    degradation: DegradationController,
    /// Span recorder, disabled (free no-ops) unless
    /// [`Session::enable_profiling`] turns it on. The channel holds a clone
    /// of the same recorder for its network spans.
    obs: Recorder,
    /// The shared server's metrics registry; this session folds its
    /// per-action traffic (`net.*`) into it.
    metrics: Arc<MetricsRegistry>,
    /// Cross-site tracing, `None` (zero cost, zero wire bytes) unless
    /// [`Session::enable_tracing`] turns it on.
    tracing: Option<TraceState>,
    /// Assembled causal tree of the most recent traced action.
    last_trace: Option<TraceTree>,
}

impl Session {
    /// Open a session on a populated database (a fresh private server —
    /// the single-client setup every PR-0/PR-1 bench uses).
    pub fn new(db: Database, config: SessionConfig, rules: RuleTable) -> Self {
        Session::attach(PdmServer::new(db), config, rules)
    }

    /// Open a session on an EXISTING server. This is the paper's worldwide
    /// deployment shape: any number of sessions — across threads — attach
    /// to one shared server and contend for its storage, its check-out
    /// lock table, and its cross-session result cache.
    pub fn attach(server: PdmServer, config: SessionConfig, rules: RuleTable) -> Self {
        let view_names = server.view_names();
        let metrics = Arc::clone(server.shared().metrics());
        Session {
            channel: MeteredChannel::new(config.link),
            server,
            config,
            rules,
            funcs: crate::functions::client_registry(),
            view_names,
            structure_table: crate::query::T_LINK.to_string(),
            fault_plan: None,
            retry: RetryPolicy::none(),
            retry_budget: None,
            priority_override: None,
            degradation: DegradationController::default(),
            obs: Recorder::disabled(),
            metrics,
            tracing: None,
            last_trace: None,
        }
    }

    /// Turn on end-to-end span recording for this session: every action
    /// records a hierarchical span tree — rule lookup, query modification,
    /// parse, engine operators, cache probe, lock wait, WAL append, and
    /// network exchange — readable via [`Session::last_profile`]. With
    /// profiling off (the default), every recording call is a free no-op
    /// and results are byte-identical.
    pub fn enable_profiling(&mut self) {
        self.obs = Recorder::new();
        self.channel.attach_obs(self.obs.clone());
    }

    /// The session's span recorder (disabled unless
    /// [`Session::enable_profiling`] was called).
    pub fn recorder(&self) -> &Recorder {
        &self.obs
    }

    /// The server-wide metrics registry this session reports into.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// Span tree of the most recent action (`None` with profiling off or
    /// before the first action).
    pub fn last_profile(&self) -> Option<QueryProfile> {
        QueryProfile::from_recorder(&self.obs)
    }

    /// Turn on cross-site causal tracing (implies profiling): every action
    /// draws a deterministic trace id from `seed`, piggybacks a
    /// [`TraceContext`] on each exchange ([`TraceContext::WIRE_BYTES`]
    /// request bytes — the volume model sees the real wire cost), and
    /// assembles its spans into a [`TraceTree`] readable via
    /// [`Session::last_trace`]. Off by default: zero work, zero wire bytes,
    /// results byte-identical.
    pub fn enable_tracing(&mut self, seed: u64) {
        if !self.obs.is_enabled() {
            self.enable_profiling();
        }
        self.tracing = Some(TraceState {
            gen: TraceIdGen::new(seed),
            site: "client".into(),
            current: None,
            next_id: None,
        });
    }

    pub fn tracing_enabled(&self) -> bool {
        self.tracing.is_some()
    }

    /// Site label this session's spans carry in assembled trees (default
    /// `"client"`; routed sessions label themselves `client<site>`).
    pub fn set_trace_site(&mut self, site: impl Into<String>) {
        if let Some(t) = &mut self.tracing {
            t.site = site.into();
        }
    }

    /// Force the next action's trace id (routed sessions draw ids from
    /// their own stream so client and cluster spans share one trace).
    pub(crate) fn force_next_trace_id(&mut self, id: u64) {
        if let Some(t) = &mut self.tracing {
            t.next_id = Some(id);
        }
    }

    /// Trace id of the in-flight (or just-finished) traced action.
    pub(crate) fn current_trace_id(&self) -> Option<u64> {
        self.tracing
            .as_ref()
            .and_then(|t| t.current)
            .map(|c| c.trace_id)
    }

    /// The causal tree of the most recent traced action (`None` with
    /// tracing off or before the first action).
    pub fn last_trace(&self) -> Option<&TraceTree> {
        self.last_trace.as_ref()
    }

    /// Assemble this session's recorder spans into a causal tree for the
    /// just-finished action. The root total reconciles bit-exactly with
    /// [`Session::elapsed`] — both are the same running sum of the same
    /// exact `v_s` clock-advance amounts in the same order.
    fn assemble_trace(&self, ctx: TraceContext, outcome: &str) -> TraceTree {
        let spans = self.obs.spans();
        let action = spans
            .iter()
            .find(|s| s.parent.is_none())
            .map(|s| s.label.clone())
            .unwrap_or_default();
        let site = self
            .tracing
            .as_ref()
            .map(|t| t.site.clone())
            .unwrap_or_else(|| "client".into());
        let mut asm = TraceAssembler::new(ctx.trace_id, action, site.clone());
        asm.add_recorder_block(&site, &spans);
        asm.set_outcome(outcome);
        asm.finish()
    }

    /// Post-action tracing hook, called by every action wrapper: assemble
    /// the tree, remember it, clear the wire piggyback, and on a failure
    /// that carries a flight dump splice the tree in — a timeout arrives
    /// with its own causal tree up to the failure point.
    pub(crate) fn trace_result<T>(&mut self, mut result: SessionResult<T>) -> SessionResult<T> {
        let Some(ctx) = self.tracing.as_ref().and_then(|t| t.current) else {
            return result;
        };
        self.channel.set_trace_context(None);
        let outcome = match &result {
            Ok(_) => "ok".to_string(),
            Err(e) => e.kind_name().to_string(),
        };
        let tree = self.assemble_trace(ctx, &outcome);
        if let Err(e) = &mut result {
            if let Some(dump) = e.context_mut() {
                dump.trace = Some(Box::new(tree.clone()));
            }
        }
        self.last_trace = Some(tree);
        result
    }

    /// Start a measured action: reset the traffic meter, reset the
    /// recorder's per-action state, and open the root `session.action` span.
    /// Each action also credits the retry budget (a fresh request earns
    /// its fraction of a retry token).
    pub(crate) fn begin_action(&mut self, name: &'static str) -> SpanGuard {
        if let Some(b) = &mut self.retry_budget {
            b.on_request();
        }
        self.reset_metering();
        self.obs.begin_action();
        if let Some(t) = &mut self.tracing {
            let id = t.next_id.take().unwrap_or_else(|| t.gen.next_id());
            let ctx = TraceContext::new(id, ROOT_GID);
            t.current = Some(ctx);
            self.channel.set_trace_context(Some(ctx));
        }
        self.obs.span(kinds::ACTION, name)
    }

    /// Fold the channel's traffic counters since the last meter reset into
    /// the server-wide registry. This is the single writer of the `net.*`
    /// metric family: called once per completed metering segment, so
    /// retransmits and volumes are never double-counted.
    pub(crate) fn fold_traffic(&self) {
        pdm_net::record_traffic(&self.metrics, self.channel.stats());
    }

    /// A fresh idempotency token for a check-out attempt. Drawn from the
    /// shared server's counter so tokens never collide across sessions;
    /// retries of the same action reuse the token they drew.
    pub(crate) fn next_checkout_token(&mut self) -> u64 {
        self.server.shared().next_token()
    }

    /// Install a fault plan on the link. Queries switch to the fallible
    /// exchange path with retries; a freshly installed plan also upgrades a
    /// no-retry policy to [`RetryPolicy::default_wan`] (override afterwards
    /// with [`Session::set_retry_policy`] if needed). A
    /// [`FaultPlan::none()`] plan reproduces the reliable numbers exactly.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.channel.set_fault_plan(plan.clone());
        self.fault_plan = Some(plan);
        if self.retry == RetryPolicy::none() {
            self.retry = RetryPolicy::default_wan();
        }
    }

    /// The installed fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault_plan.as_ref()
    }

    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        self.retry = policy;
    }

    /// Install a client-side retry budget: retries (link-failure backoffs)
    /// are allowed only while the leaky bucket has tokens, so this
    /// session's retries converge to the budget's earn ratio of its
    /// requests. Without one (the default), retries are bounded only by
    /// the [`RetryPolicy`].
    pub fn enable_retry_budget(&mut self, budget: crate::overload::RetryBudget) {
        self.retry_budget = Some(budget);
    }

    /// The installed retry budget, if any (drivers that retry
    /// [`SessionError::Overloaded`] rejections themselves draw from the
    /// same bucket).
    pub fn retry_budget_mut(&mut self) -> Option<&mut crate::overload::RetryBudget> {
        self.retry_budget.as_mut()
    }

    /// Override the admission priority class for every dispatch of this
    /// session (batch/rollup sessions mark themselves
    /// [`crate::overload::Priority::Batch`] so they shed first).
    pub fn set_priority_class(&mut self, prio: crate::overload::Priority) {
        self.priority_override = Some(prio);
    }

    /// Consult the server's admission gate (if one is installed) for one
    /// dispatch of class `default_prio`. `Ok(None)` = no gate, admitted by
    /// construction; `Ok(Some(permit))` holds a concurrency slot for the
    /// dispatch; `Err(Overloaded)` = shed, with a `retry_after` hint.
    pub(crate) fn admit(
        &mut self,
        default_prio: crate::overload::Priority,
    ) -> SessionResult<Option<crate::overload::Permit>> {
        let Some(gate) = self.server.shared().overload_gate() else {
            return Ok(None);
        };
        let prio = self.priority_override.unwrap_or(default_prio);
        let span = self.obs.span(kinds::ADMIT, prio.label());
        match gate.admit(prio) {
            Ok(permit) => {
                span.set_detail("admitted");
                Ok(Some(permit))
            }
            Err(rejection) => {
                span.set_detail("shed");
                drop(span);
                let shed = self.obs.span(kinds::OVERLOAD_SHED, prio.label());
                shed.set_detail("admission");
                drop(shed);
                Err(SessionError::Overloaded {
                    retry_after: rejection.retry_after,
                })
            }
        }
    }

    /// The per-action deadline as a real-time bound for check-out lock
    /// waits on the shared server (`None` when the policy has no deadline).
    pub(crate) fn lock_deadline(&self) -> Option<std::time::Duration> {
        if self.retry.deadline.is_finite() {
            Some(std::time::Duration::from_secs_f64(self.retry.deadline))
        } else {
            None
        }
    }

    pub fn retry_policy(&self) -> &RetryPolicy {
        &self.retry
    }

    /// The circuit breaker guarding the recursive strategy.
    pub fn degradation(&self) -> &DegradationController {
        &self.degradation
    }

    pub fn degradation_mut(&mut self) -> &mut DegradationController {
        &mut self.degradation
    }

    /// Navigate an alternative hierarchical view: expansions traverse the
    /// given link table over the same objects. Relation rules apply per
    /// table name, so a view can carry its own access rules.
    pub fn set_structure_view(&mut self, link_table: impl Into<String>) {
        self.structure_table = link_table.into().to_ascii_lowercase();
    }

    /// The link table currently navigated.
    pub fn structure_view(&self) -> &str {
        &self.structure_table
    }

    pub fn server(&self) -> &PdmServer {
        &self.server
    }

    pub fn server_mut(&mut self) -> &mut PdmServer {
        &mut self.server
    }

    pub fn config(&self) -> &SessionConfig {
        &self.config
    }

    pub fn rules(&self) -> &RuleTable {
        &self.rules
    }

    pub fn set_strategy(&mut self, strategy: Strategy) {
        self.config.strategy = strategy;
    }

    /// Re-point the session at a different WAN profile (fresh channel and
    /// metering). Lets benches sweep network settings without rebuilding
    /// the database.
    pub fn set_link(&mut self, link: LinkProfile) {
        self.config.link = link;
        self.channel = MeteredChannel::new(link);
        if let Some(plan) = &self.fault_plan {
            self.channel.set_fault_plan(plan.clone());
        }
        if self.obs.is_enabled() {
            self.channel.attach_obs(self.obs.clone());
        }
        if let Some(ctx) = self.tracing.as_ref().and_then(|t| t.current) {
            self.channel.set_trace_context(Some(ctx));
        }
    }

    /// Accumulated traffic since the last reset.
    pub fn stats(&self) -> &TrafficStats {
        self.channel.stats()
    }

    /// Virtual seconds elapsed since the last reset.
    pub fn elapsed(&self) -> f64 {
        self.channel.elapsed()
    }

    /// Clear metering before a new measured action.
    pub fn reset_metering(&mut self) {
        self.channel.reset();
    }

    pub(crate) fn channel_mut(&mut self) -> &mut MeteredChannel {
        &mut self.channel
    }

    /// Record a per-exchange timeline for subsequent actions (analysis of
    /// where the seconds go; see [`pdm_net::Trace`]).
    pub fn enable_trace(&mut self) {
        self.channel.enable_trace();
    }

    /// The recorded timeline, if tracing was enabled.
    pub fn trace(&self) -> Option<&pdm_net::Trace> {
        self.channel.trace()
    }

    fn modificator(&self, action: ActionKind) -> Modificator<'_> {
        Modificator::new(&self.rules, &self.config.user, action, &self.view_names)
    }

    /// Ship a query over the WAN and return its result (one metered round
    /// trip: request = SQL text, response = result rows).
    ///
    /// With no fault plan installed this is the reliable path the paper
    /// models. With one installed, the exchange becomes fallible and is
    /// retried per [`RetryPolicy`]: queries are idempotent reads, so any
    /// failure — even a lost response, after which the server *did* run the
    /// query — is safe to replay.
    fn metered_query(&mut self, sql: &str) -> SessionResult<ResultSet> {
        let _permit = self.admit(crate::overload::Priority::Interactive)?;
        if self.channel.fault_plan().is_none() {
            // Deadline propagation on the reliable path too: a doomed
            // dispatch (deadline already spent by earlier work in this
            // action) is abandoned before the server does anything. A
            // no-deadline policy makes this a free no-op.
            self.check_deadline(1)?;
            let rs = self
                .server
                .shared()
                .query_cached_deadline_obs(sql, self.lock_deadline(), &self.obs)
                .map(|r| (*r).clone())?;
            self.channel.round_trip(sql.len(), rs.wire_size());
            return Ok(rs);
        }
        let mut attempt = 1u32;
        loop {
            self.check_deadline(attempt)?;
            let failure = match self.channel.try_send_request(sql.len()) {
                Ok(pending) => {
                    let rs = self.server.query_obs(sql, &self.obs)?;
                    match self.channel.try_receive_response(pending, rs.wire_size()) {
                        Ok(_) => return Ok(rs),
                        Err(e) => e,
                    }
                }
                Err(e) => e,
            };
            self.back_off_or_fail(attempt, failure)?;
            attempt += 1;
        }
    }

    /// The action's deadline is a hard gate on *starting* attempts: once the
    /// virtual clock (reset at action start) has crossed it, no further
    /// timeout budget may be burned — important when a fallback path runs
    /// after the primary path already ate the whole deadline.
    pub(crate) fn check_deadline(&mut self, attempt: u32) -> SessionResult<()> {
        if self.channel.elapsed() >= self.retry.deadline {
            return Err(SessionError::Timeout {
                attempts: attempt.saturating_sub(1),
                elapsed: self.channel.elapsed(),
                context: FlightDump::at("net.exchange").with_events(&self.obs),
            });
        }
        Ok(())
    }

    /// After a failed attempt: either burn the backoff on the virtual clock
    /// and let the caller retry, or give up with a classified error. Shared
    /// by the query and check-out retry loops.
    pub(crate) fn back_off_or_fail(
        &mut self,
        attempt: u32,
        failure: LinkError,
    ) -> SessionResult<()> {
        if attempt >= self.retry.max_attempts {
            return Err(SessionError::from_link(
                failure,
                attempt,
                self.channel.elapsed(),
                &self.obs,
            ));
        }
        // Retry budget: a retry may only proceed out of the leaky bucket.
        // An exhausted budget surfaces the underlying failure immediately —
        // under a brown-out this is what keeps aggregate offered load
        // converging instead of amplifying (DESIGN.md §14).
        if let Some(budget) = &mut self.retry_budget {
            if !budget.try_spend() {
                self.channel.note_budget_denied();
                return Err(SessionError::from_link(
                    failure,
                    attempt,
                    self.channel.elapsed(),
                    &self.obs,
                ));
            }
        }
        let mut wait = self
            .retry
            .backoff(attempt, self.channel.exchanges_attempted());
        if let LinkError::Outage { until, .. } = failure {
            // no point probing again before the scheduled window ends
            wait = wait.max(until - self.channel.elapsed());
        }
        if self.channel.elapsed() + wait > self.retry.deadline {
            return Err(SessionError::Timeout {
                attempts: attempt,
                elapsed: self.channel.elapsed(),
                context: FlightDump::at("net.exchange").with_events(&self.obs),
            });
        }
        self.channel.wait(wait);
        Ok(())
    }

    /// Fetch the root object without metering: the paper's footnote 4 —
    /// "the root object is considered to be already at the client".
    pub fn fetch_root_cached(&mut self, root: ObjectId) -> SessionResult<ProductNode> {
        let q = navigational::fetch_node_query(root);
        let rs = self.server.query(&q.to_string())?;
        let row = rs.rows.first().ok_or(SessionError::RootNotFound(root))?;
        let attrs = client::row_attrs(&rs, row);
        Ok(node_from_attrs(attrs, None))
    }

    // ---------------------------------------------------------------------
    // Actions
    // ---------------------------------------------------------------------

    /// Single-level expand: the direct children of `parent`.
    pub fn single_level_expand(&mut self, parent: ObjectId) -> SessionResult<ExpandOutcome> {
        let action = self.begin_action("single_level_expand");
        let result = self.single_level_expand_inner(parent);
        drop(action);
        self.fold_traffic();
        self.trace_result(result)
    }

    fn single_level_expand_inner(&mut self, parent: ObjectId) -> SessionResult<ExpandOutcome> {
        let root_node = self.fetch_root_cached(parent)?;
        let mut tree = ProductTree::new();
        tree.insert(root_node);
        self.expand_one_level(parent, &mut tree, ActionKind::Expand)?;
        Ok(ExpandOutcome {
            tree,
            stats: self.channel.stats().clone(),
            degraded: false,
        })
    }

    /// Multi-level expand of the subtree rooted at `root`, using the
    /// session's strategy.
    ///
    /// On a faulty link the recursive strategy is guarded by the
    /// [`DegradationController`]: when the single big recursive query keeps
    /// failing (it is the most exposed exchange — one timeout loses the
    /// whole action), the session degrades to the level-batched
    /// navigational expansion, whose smaller per-level exchanges ride out
    /// loss with cheap retries. The outcome is flagged `degraded`.
    pub fn multi_level_expand(&mut self, root: ObjectId) -> SessionResult<ExpandOutcome> {
        let action = self.begin_action("multi_level_expand");
        let result = self.multi_level_expand_inner(root);
        drop(action);
        self.fold_traffic();
        self.trace_result(result)
    }

    fn multi_level_expand_inner(&mut self, root: ObjectId) -> SessionResult<ExpandOutcome> {
        let root_node = self.fetch_root_cached(root)?;
        let mut tree = ProductTree::new();
        tree.insert(root_node);
        let mut degraded = false;

        match self.config.strategy {
            Strategy::LateEval | Strategy::EarlyEval => {
                // Navigational: touch every visible node, including leaves
                // (their childlessness must be discovered), one query each.
                let mut queue: VecDeque<ObjectId> = VecDeque::new();
                queue.push_back(root);
                while let Some(parent) = queue.pop_front() {
                    let children =
                        self.expand_one_level(parent, &mut tree, ActionKind::MultiLevelExpand)?;
                    queue.extend(children);
                }
            }
            Strategy::Recursive => {
                if self.degradation.should_degrade() {
                    self.batched_levels(root, &mut tree)?;
                    degraded = true;
                } else {
                    match self.recursive_expand_into(root, &mut tree) {
                        Ok(()) => self.degradation.record_success(),
                        Err(e) if e.is_link_failure() => {
                            // The failed attempts' wait time stays on the
                            // meter; serve this action degraded.
                            self.degradation.record_failure();
                            self.batched_levels(root, &mut tree)?;
                            degraded = true;
                        }
                        Err(e) => return Err(e),
                    }
                }
            }
        }
        Ok(ExpandOutcome {
            tree,
            stats: self.channel.stats().clone(),
            degraded,
        })
    }

    /// The recursive strategy's single big query, inserting all visible
    /// descendants of `root` into `tree`.
    fn recursive_expand_into(
        &mut self,
        root: ObjectId,
        tree: &mut ProductTree,
    ) -> SessionResult<()> {
        let mut q = recursive::mle_query_in(root, &self.structure_table, false);
        {
            let span = self.obs.span(kinds::QUERY_MODIFY, "recursive");
            self.modificator(ActionKind::MultiLevelExpand)
                .modify_recursive(&mut q)?;
            drop(span);
        }
        let sql = q.to_string();
        let rs = self.metered_query(&sql)?;
        for row in &rs.rows {
            let attrs = client::row_attrs(&rs, row);
            let parent = attrs.get("parent").and_then(as_id);
            tree.insert(node_from_attrs(attrs, parent));
        }
        Ok(())
    }

    /// Level-batched multi-level expand: one query per tree *level*, using
    /// an IN-list over the whole frontier — the data-shipping middle ground
    /// between per-node navigation (one query per node) and recursion (one
    /// query total). Round trips shrink from `1 + n_v` to `depth + 1`; the
    /// request size grows with the frontier, exercising the §5.4 multi-
    /// packet effect. Rules follow the session strategy: early strategies
    /// inject them, late evaluation filters after transfer.
    pub fn multi_level_expand_batched(&mut self, root: ObjectId) -> SessionResult<ExpandOutcome> {
        let action = self.begin_action("multi_level_expand_batched");
        let result = self.multi_level_expand_batched_inner(root);
        drop(action);
        self.fold_traffic();
        self.trace_result(result)
    }

    fn multi_level_expand_batched_inner(&mut self, root: ObjectId) -> SessionResult<ExpandOutcome> {
        let root_node = self.fetch_root_cached(root)?;
        let mut tree = ProductTree::new();
        tree.insert(root_node);
        self.batched_levels(root, &mut tree)?;
        Ok(ExpandOutcome {
            tree,
            stats: self.channel.stats().clone(),
            degraded: false,
        })
    }

    /// The level-batched frontier loop shared by
    /// [`Session::multi_level_expand_batched`] and the degraded recursive
    /// path: one IN-list query per tree level.
    fn batched_levels(&mut self, root: ObjectId, tree: &mut ProductTree) -> SessionResult<()> {
        let structure_table = self.structure_table.clone();
        let rules = self.rules.clone();
        let lookup = self.obs.span(kinds::RULE_LOOKUP, "permission_groups");
        let groups = client::permission_groups(
            &rules,
            &self.config.user,
            ActionKind::MultiLevelExpand,
            &[
                structure_table.as_str(),
                crate::query::T_ASSY,
                crate::query::T_COMP,
            ],
        );
        drop(lookup);

        let mut frontier: Vec<ObjectId> = vec![root];
        while !frontier.is_empty() {
            let mut q = navigational::expand_many_query(&frontier, &structure_table);
            if self.config.strategy.early_rules() {
                let span = self.obs.span(kinds::QUERY_MODIFY, "navigational");
                self.modificator(ActionKind::MultiLevelExpand)
                    .modify_navigational(&mut q)?;
                drop(span);
            }
            let sql = q.to_string();
            let rs = self.metered_query(&sql)?;
            let late = self.late_filter_span("batched_level");
            let transferred = rs.len() as u64;
            let mut next = Vec::with_capacity(rs.len());
            for row in &rs.rows {
                let attrs = client::row_attrs(&rs, row);
                if !self.config.strategy.early_rules()
                    && !client::permitted(&attrs, &groups, &self.funcs)
                {
                    continue;
                }
                let node = node_from_attrs(attrs, None);
                next.push(node.obid);
                tree.insert(node);
            }
            self.close_late_filter(late, transferred, next.len() as u64);
            frontier = next;
        }
        Ok(())
    }

    /// Open a late-filter span when this session filters rules client-side
    /// (late evaluation); `None` under early strategies, which never filter
    /// after transfer.
    fn late_filter_span(&self, label: &'static str) -> Option<SpanGuard> {
        if self.config.strategy.early_rules() {
            None
        } else {
            Some(self.obs.span(kinds::LATE_FILTER, label))
        }
    }

    /// Close a late-filter span with the rows it saw, and account the
    /// paper's γ split: how many transferred rows the client kept vs threw
    /// away after paying for their transfer.
    fn close_late_filter(&self, span: Option<SpanGuard>, transferred: u64, kept: u64) {
        let Some(span) = span else { return };
        span.set_rows(transferred, kept);
        drop(span);
        self.metrics.counter("session.rows_kept").add(kept);
        self.metrics
            .counter("session.rows_filtered_late")
            .add(transferred.saturating_sub(kept));
    }

    /// One standalone metered DML statement as its own measured action
    /// (retried per the session's policy like any other exchange). The
    /// write path replicated clusters forward to the primary.
    pub fn execute_update(&mut self, sql: &str) -> SessionResult<usize> {
        let action = self.begin_action("execute_update");
        let result = self.metered_update_public(sql);
        drop(action);
        self.fold_traffic();
        self.trace_result(result)
    }

    /// The set-oriented Query action: all (visible) nodes of the product,
    /// without structure information, in one query.
    pub fn query_all(&mut self, root: ObjectId) -> SessionResult<QueryOutcome> {
        let action = self.begin_action("query_all");
        let result = self.query_all_inner(root);
        drop(action);
        self.fold_traffic();
        self.trace_result(result)
    }

    fn query_all_inner(&mut self, root: ObjectId) -> SessionResult<QueryOutcome> {
        let mut q = navigational::query_all_query(root);
        if self.config.strategy.early_rules() {
            let span = self.obs.span(kinds::QUERY_MODIFY, "navigational");
            self.modificator(ActionKind::Query)
                .modify_navigational(&mut q)?;
            drop(span);
        }
        let sql = q.to_string();
        let rs = self.metered_query(&sql)?;

        let lookup = self.obs.span(kinds::RULE_LOOKUP, "permission_groups");
        let groups = client::permission_groups(
            &self.rules,
            &self.config.user,
            ActionKind::Query,
            &[crate::query::T_ASSY, crate::query::T_COMP],
        );
        drop(lookup);
        let late = self.late_filter_span("query_all");
        let transferred = rs.len() as u64;
        let mut nodes = Vec::with_capacity(rs.len());
        for row in &rs.rows {
            let attrs = client::row_attrs(&rs, row);
            if !self.config.strategy.early_rules()
                && !client::permitted(&attrs, &groups, &self.funcs)
            {
                continue;
            }
            nodes.push(node_from_attrs(attrs, None));
        }
        self.close_late_filter(late, transferred, nodes.len() as u64);
        Ok(QueryOutcome {
            nodes,
            stats: self.channel.stats().clone(),
        })
    }

    /// Issue one expand query for `parent`, insert permitted children into
    /// `tree`, and return their ids (the nodes the traversal recurses into).
    fn expand_one_level(
        &mut self,
        parent: ObjectId,
        tree: &mut ProductTree,
        action: ActionKind,
    ) -> SessionResult<Vec<ObjectId>> {
        let mut q = navigational::expand_query_in(parent, &self.structure_table);
        if self.config.strategy.early_rules() {
            let span = self.obs.span(kinds::QUERY_MODIFY, "navigational");
            self.modificator(action).modify_navigational(&mut q)?;
            drop(span);
        }
        let sql = q.to_string();
        let rs = self.metered_query(&sql)?;

        // Late evaluation filters after transfer: link rules plus node
        // rules, evaluated on the transferred attributes.
        let structure_table = self.structure_table.clone();
        let lookup = self.obs.span(kinds::RULE_LOOKUP, "permission_groups");
        let groups = client::permission_groups(
            &self.rules,
            &self.config.user,
            action,
            &[
                structure_table.as_str(),
                crate::query::T_ASSY,
                crate::query::T_COMP,
            ],
        );
        drop(lookup);

        let late = self.late_filter_span("expand");
        let transferred = rs.len() as u64;
        let mut children = Vec::with_capacity(rs.len());
        for row in &rs.rows {
            let attrs = client::row_attrs(&rs, row);
            if !self.config.strategy.early_rules()
                && !client::permitted(&attrs, &groups, &self.funcs)
            {
                continue;
            }
            let node = node_from_attrs(attrs, Some(parent));
            children.push(node.obid);
            tree.insert(node);
        }
        self.close_late_filter(late, transferred, children.len() as u64);
        Ok(children)
    }
}

// Sessions are moved into worker threads of the shared-server harness.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<Session>();
};

/// Interpret a homogenized result row as a product node.
pub(crate) fn node_from_attrs(
    attrs: HashMap<String, Value>,
    parent: Option<ObjectId>,
) -> ProductNode {
    let obid = attrs.get("obid").and_then(as_id).unwrap_or_default();
    let type_name = match attrs.get("type") {
        Some(Value::Text(t)) => t.clone(),
        _ => String::new(),
    };
    let name = match attrs.get("name") {
        Some(Value::Text(n)) => n.clone(),
        _ => String::new(),
    };
    let parent = parent.or_else(|| attrs.get("parent").and_then(as_id));
    ProductNode {
        obid,
        parent,
        type_name,
        name,
        attrs,
    }
}

fn as_id(v: &Value) -> Option<ObjectId> {
    match v {
        Value::Int(i) => Some(*i),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::condition::{CmpOp, Condition, RowPredicate};
    use crate::rules::Rule;
    use pdm_workload::{build_database, TreeSpec};

    /// Visibility rules: the simulated user sees only OPTA links/nodes.
    pub(crate) fn visibility_rules() -> RuleTable {
        let mut t = RuleTable::new();
        for table in ["link", "assy", "comp"] {
            t.add(Rule::for_all_users(
                ActionKind::Access,
                table,
                Condition::Row(RowPredicate::compare("strc_opt", CmpOp::Eq, "OPTA")),
            ));
        }
        t
    }

    fn session(strategy: Strategy, gamma: f64) -> Session {
        let spec = TreeSpec::new(3, 5, gamma).with_node_size(256);
        let (db, _) = build_database(&spec).unwrap();
        Session::new(
            db,
            SessionConfig::new("scott", strategy, LinkProfile::wan_256()),
            visibility_rules(),
        )
    }

    #[test]
    fn all_three_strategies_return_same_tree() {
        // γβ = 3 exactly (deterministic visibility): all strategies must
        // agree on the visible tree.
        let mut late = session(Strategy::LateEval, 0.6);
        let mut early = session(Strategy::EarlyEval, 0.6);
        let mut rec = session(Strategy::Recursive, 0.6);

        let t1 = late.multi_level_expand(1).unwrap();
        let t2 = early.multi_level_expand(1).unwrap();
        let t3 = rec.multi_level_expand(1).unwrap();

        let ids = |o: &ExpandOutcome| o.tree.node_ids().collect::<Vec<_>>();
        assert_eq!(ids(&t1), ids(&t2));
        assert_eq!(ids(&t1), ids(&t3));
        // visible: root + 3 + 9 + 27
        assert_eq!(t1.tree.len(), 1 + 3 + 9 + 27);
        assert_eq!(t1.tree.reachable_from_root(), t1.tree.len());
    }

    #[test]
    fn query_counts_match_the_cost_model() {
        // Navigational MLE touches root + every visible node: 1 + 39.
        let mut late = session(Strategy::LateEval, 0.6);
        let out = late.multi_level_expand(1).unwrap();
        assert_eq!(out.stats.queries, 40);
        assert_eq!(out.stats.communications, 80);

        // Recursive MLE: exactly one query, two communications.
        let mut rec = session(Strategy::Recursive, 0.6);
        let out = rec.multi_level_expand(1).unwrap();
        assert_eq!(out.stats.queries, 1);
        assert_eq!(out.stats.communications, 2);
    }

    #[test]
    fn early_eval_transfers_less_than_late() {
        let mut late = session(Strategy::LateEval, 0.6);
        let mut early = session(Strategy::EarlyEval, 0.6);
        let l = late.multi_level_expand(1).unwrap();
        let e = early.multi_level_expand(1).unwrap();
        assert_eq!(l.tree.len(), e.tree.len());
        assert!(
            e.stats.response_payload_bytes < l.stats.response_payload_bytes,
            "early {} vs late {}",
            e.stats.response_payload_bytes,
            l.stats.response_payload_bytes
        );
        // but the same number of queries — early evaluation alone does not
        // reduce round trips (§4.2's conclusion)
        assert_eq!(l.stats.queries, e.stats.queries);
    }

    #[test]
    fn recursive_beats_navigational_response_time() {
        let mut late = session(Strategy::LateEval, 0.6);
        let mut rec = session(Strategy::Recursive, 0.6);
        let l = late.multi_level_expand(1).unwrap();
        let r = rec.multi_level_expand(1).unwrap();
        let saving = 1.0 - r.stats.response_time() / l.stats.response_time();
        assert!(saving > 0.9, "saving was {saving}");
    }

    #[test]
    fn query_all_respects_visibility() {
        let mut late = session(Strategy::LateEval, 0.6);
        let mut early = session(Strategy::EarlyEval, 0.6);
        let l = late.query_all(1).unwrap();
        let e = early.query_all(1).unwrap();
        // both see the 39 visible non-root nodes
        assert_eq!(l.nodes.len(), 39);
        assert_eq!(e.nodes.len(), 39);
        // late shipped all 155 non-root nodes, early only 39
        assert!(l.stats.response_payload_bytes > 3 * e.stats.response_payload_bytes);
        // both were single queries
        assert_eq!(l.stats.queries, 1);
        assert_eq!(e.stats.queries, 1);
    }

    #[test]
    fn single_level_expand_one_query() {
        let mut s = session(Strategy::EarlyEval, 0.6);
        let out = s.single_level_expand(1).unwrap();
        assert_eq!(out.stats.queries, 1);
        assert_eq!(out.tree.len(), 1 + 3); // root + visible children
    }

    #[test]
    fn unknown_root_is_reported() {
        let mut s = session(Strategy::Recursive, 1.0);
        match s.multi_level_expand(999_999) {
            Err(SessionError::RootNotFound(999_999)) => {}
            other => panic!("expected RootNotFound, got {other:?}"),
        }
    }

    #[test]
    fn gamma_one_everything_transferred_everywhere() {
        let mut late = session(Strategy::LateEval, 1.0);
        let mut rec = session(Strategy::Recursive, 1.0);
        let l = late.multi_level_expand(1).unwrap();
        let r = rec.multi_level_expand(1).unwrap();
        assert_eq!(l.tree.len(), 1 + 5 + 25 + 125);
        assert_eq!(r.tree.len(), l.tree.len());
        // with γ=1 early==late volumes; recursive still wins on latency
        assert!(r.stats.latency_time < l.stats.latency_time / 10.0);
    }
}
