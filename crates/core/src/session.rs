//! End-to-end sessions: a PDM client talking to the database server over a
//! metered WAN. This is where the paper's three system variants become
//! executable — every user action runs real SQL and every byte crosses the
//! simulated link.

use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;

use pdm_net::{LinkProfile, MeteredChannel, TrafficStats};
use pdm_sql::functions::FunctionRegistry;
use pdm_sql::{Database, ResultSet, Value};

use crate::client::{self, Strategy};
use crate::product::{ObjectId, ProductNode, ProductTree};
use crate::query::modificator::{ModError, Modificator};
use crate::query::{navigational, recursive};
use crate::rules::table::RuleTable;
use crate::rules::ActionKind;
use crate::server::PdmServer;

/// Errors surfaced by session actions.
#[derive(Debug)]
pub enum SessionError {
    Sql(pdm_sql::Error),
    Modification(ModError),
    /// The requested root object does not exist.
    RootNotFound(ObjectId),
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::Sql(e) => write!(f, "database error: {e}"),
            SessionError::Modification(e) => write!(f, "query modification failed: {e}"),
            SessionError::RootNotFound(id) => write!(f, "no object with obid {id}"),
        }
    }
}

impl std::error::Error for SessionError {}

impl From<pdm_sql::Error> for SessionError {
    fn from(e: pdm_sql::Error) -> Self {
        SessionError::Sql(e)
    }
}

impl From<ModError> for SessionError {
    fn from(e: ModError) -> Self {
        SessionError::Modification(e)
    }
}

pub type SessionResult<T> = Result<T, SessionError>;

/// Who is acting, how, and over which link.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    pub user: String,
    pub strategy: Strategy,
    pub link: LinkProfile,
}

impl SessionConfig {
    pub fn new(user: impl Into<String>, strategy: Strategy, link: LinkProfile) -> Self {
        SessionConfig { user: user.into(), strategy, link }
    }
}

/// Result of a tree-retrieving action.
#[derive(Debug, Clone)]
pub struct ExpandOutcome {
    pub tree: ProductTree,
    /// Traffic of this action only.
    pub stats: TrafficStats,
}

/// Result of the set-oriented Query action (no structure information).
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    pub nodes: Vec<ProductNode>,
    pub stats: TrafficStats,
}

/// A PDM client session bound to a server and a WAN profile.
pub struct Session {
    server: PdmServer,
    channel: MeteredChannel,
    config: SessionConfig,
    rules: RuleTable,
    funcs: FunctionRegistry,
    view_names: HashSet<String>,
    /// Link table of the hierarchical view being navigated ("link" = the
    /// physical product structure; alternative views are additional link
    /// tables over the same objects, §1 footnote 1).
    structure_table: String,
}

impl Session {
    /// Open a session on a populated database.
    pub fn new(db: Database, config: SessionConfig, rules: RuleTable) -> Self {
        let server = PdmServer::new(db);
        let view_names = server.view_names();
        Session {
            channel: MeteredChannel::new(config.link),
            server,
            config,
            rules,
            funcs: crate::functions::client_registry(),
            view_names,
            structure_table: crate::query::T_LINK.to_string(),
        }
    }

    /// Navigate an alternative hierarchical view: expansions traverse the
    /// given link table over the same objects. Relation rules apply per
    /// table name, so a view can carry its own access rules.
    pub fn set_structure_view(&mut self, link_table: impl Into<String>) {
        self.structure_table = link_table.into().to_ascii_lowercase();
    }

    /// The link table currently navigated.
    pub fn structure_view(&self) -> &str {
        &self.structure_table
    }

    pub fn server(&self) -> &PdmServer {
        &self.server
    }

    pub fn server_mut(&mut self) -> &mut PdmServer {
        &mut self.server
    }

    pub fn config(&self) -> &SessionConfig {
        &self.config
    }

    pub fn rules(&self) -> &RuleTable {
        &self.rules
    }

    pub fn set_strategy(&mut self, strategy: Strategy) {
        self.config.strategy = strategy;
    }

    /// Re-point the session at a different WAN profile (fresh channel and
    /// metering). Lets benches sweep network settings without rebuilding
    /// the database.
    pub fn set_link(&mut self, link: LinkProfile) {
        self.config.link = link;
        self.channel = MeteredChannel::new(link);
    }

    /// Accumulated traffic since the last reset.
    pub fn stats(&self) -> &TrafficStats {
        self.channel.stats()
    }

    /// Virtual seconds elapsed since the last reset.
    pub fn elapsed(&self) -> f64 {
        self.channel.elapsed()
    }

    /// Clear metering before a new measured action.
    pub fn reset_metering(&mut self) {
        self.channel.reset();
    }

    pub(crate) fn channel_mut(&mut self) -> &mut MeteredChannel {
        &mut self.channel
    }

    /// Record a per-exchange timeline for subsequent actions (analysis of
    /// where the seconds go; see [`pdm_net::Trace`]).
    pub fn enable_trace(&mut self) {
        self.channel.enable_trace();
    }

    /// The recorded timeline, if tracing was enabled.
    pub fn trace(&self) -> Option<&pdm_net::Trace> {
        self.channel.trace()
    }

    fn modificator(&self, action: ActionKind) -> Modificator<'_> {
        Modificator::new(&self.rules, &self.config.user, action, &self.view_names)
    }

    /// Ship a query over the WAN and return its result (one metered round
    /// trip: request = SQL text, response = result rows).
    fn metered_query(&mut self, sql: &str) -> SessionResult<ResultSet> {
        let rs = self.server.query(sql)?;
        self.channel.round_trip(sql.len(), rs.wire_size());
        Ok(rs)
    }

    /// Fetch the root object without metering: the paper's footnote 4 —
    /// "the root object is considered to be already at the client".
    pub fn fetch_root_cached(&mut self, root: ObjectId) -> SessionResult<ProductNode> {
        let q = navigational::fetch_node_query(root);
        let rs = self.server.query(&q.to_string())?;
        let row = rs.rows.first().ok_or(SessionError::RootNotFound(root))?;
        let attrs = client::row_attrs(&rs, row);
        Ok(node_from_attrs(attrs, None))
    }

    // ---------------------------------------------------------------------
    // Actions
    // ---------------------------------------------------------------------

    /// Single-level expand: the direct children of `parent`.
    pub fn single_level_expand(&mut self, parent: ObjectId) -> SessionResult<ExpandOutcome> {
        self.reset_metering();
        let root_node = self.fetch_root_cached(parent)?;
        let mut tree = ProductTree::new();
        tree.insert(root_node);
        self.expand_one_level(parent, &mut tree, ActionKind::Expand)?;
        Ok(ExpandOutcome { tree, stats: self.channel.stats().clone() })
    }

    /// Multi-level expand of the subtree rooted at `root`, using the
    /// session's strategy.
    pub fn multi_level_expand(&mut self, root: ObjectId) -> SessionResult<ExpandOutcome> {
        self.reset_metering();
        let root_node = self.fetch_root_cached(root)?;
        let mut tree = ProductTree::new();
        tree.insert(root_node);

        match self.config.strategy {
            Strategy::LateEval | Strategy::EarlyEval => {
                // Navigational: touch every visible node, including leaves
                // (their childlessness must be discovered), one query each.
                let mut queue: VecDeque<ObjectId> = VecDeque::new();
                queue.push_back(root);
                while let Some(parent) = queue.pop_front() {
                    let children =
                        self.expand_one_level(parent, &mut tree, ActionKind::MultiLevelExpand)?;
                    queue.extend(children);
                }
            }
            Strategy::Recursive => {
                let mut q = recursive::mle_query_in(root, &self.structure_table, false);
                self.modificator(ActionKind::MultiLevelExpand)
                    .modify_recursive(&mut q)?;
                let sql = q.to_string();
                let rs = self.metered_query(&sql)?;
                for row in &rs.rows {
                    let attrs = client::row_attrs(&rs, row);
                    let parent = attrs.get("parent").and_then(as_id);
                    tree.insert(node_from_attrs(attrs, parent));
                }
            }
        }
        Ok(ExpandOutcome { tree, stats: self.channel.stats().clone() })
    }

    /// Level-batched multi-level expand: one query per tree *level*, using
    /// an IN-list over the whole frontier — the data-shipping middle ground
    /// between per-node navigation (one query per node) and recursion (one
    /// query total). Round trips shrink from `1 + n_v` to `depth + 1`; the
    /// request size grows with the frontier, exercising the §5.4 multi-
    /// packet effect. Rules follow the session strategy: early strategies
    /// inject them, late evaluation filters after transfer.
    pub fn multi_level_expand_batched(&mut self, root: ObjectId) -> SessionResult<ExpandOutcome> {
        self.reset_metering();
        let root_node = self.fetch_root_cached(root)?;
        let mut tree = ProductTree::new();
        tree.insert(root_node);

        let structure_table = self.structure_table.clone();
        let rules = self.rules.clone();
        let groups = client::permission_groups(
            &rules,
            &self.config.user,
            ActionKind::MultiLevelExpand,
            &[
                structure_table.as_str(),
                crate::query::T_ASSY,
                crate::query::T_COMP,
            ],
        );

        let mut frontier: Vec<ObjectId> = vec![root];
        while !frontier.is_empty() {
            let mut q = navigational::expand_many_query(&frontier, &structure_table);
            if self.config.strategy.early_rules() {
                self.modificator(ActionKind::MultiLevelExpand)
                    .modify_navigational(&mut q)?;
            }
            let sql = q.to_string();
            let rs = self.metered_query(&sql)?;
            let mut next = Vec::with_capacity(rs.len());
            for row in &rs.rows {
                let attrs = client::row_attrs(&rs, row);
                if !self.config.strategy.early_rules()
                    && !client::permitted(&attrs, &groups, &self.funcs)
                {
                    continue;
                }
                let node = node_from_attrs(attrs, None);
                next.push(node.obid);
                tree.insert(node);
            }
            frontier = next;
        }
        Ok(ExpandOutcome { tree, stats: self.channel.stats().clone() })
    }

    /// The set-oriented Query action: all (visible) nodes of the product,
    /// without structure information, in one query.
    pub fn query_all(&mut self, root: ObjectId) -> SessionResult<QueryOutcome> {
        self.reset_metering();
        let mut q = navigational::query_all_query(root);
        if self.config.strategy.early_rules() {
            self.modificator(ActionKind::Query).modify_navigational(&mut q)?;
        }
        let sql = q.to_string();
        let rs = self.metered_query(&sql)?;

        let groups = client::permission_groups(
            &self.rules,
            &self.config.user,
            ActionKind::Query,
            &[crate::query::T_ASSY, crate::query::T_COMP],
        );
        let mut nodes = Vec::with_capacity(rs.len());
        for row in &rs.rows {
            let attrs = client::row_attrs(&rs, row);
            if !self.config.strategy.early_rules()
                && !client::permitted(&attrs, &groups, &self.funcs)
            {
                continue;
            }
            nodes.push(node_from_attrs(attrs, None));
        }
        Ok(QueryOutcome { nodes, stats: self.channel.stats().clone() })
    }

    /// Issue one expand query for `parent`, insert permitted children into
    /// `tree`, and return their ids (the nodes the traversal recurses into).
    fn expand_one_level(
        &mut self,
        parent: ObjectId,
        tree: &mut ProductTree,
        action: ActionKind,
    ) -> SessionResult<Vec<ObjectId>> {
        let mut q = navigational::expand_query_in(parent, &self.structure_table);
        if self.config.strategy.early_rules() {
            self.modificator(action).modify_navigational(&mut q)?;
        }
        let sql = q.to_string();
        let rs = self.metered_query(&sql)?;

        // Late evaluation filters after transfer: link rules plus node
        // rules, evaluated on the transferred attributes.
        let structure_table = self.structure_table.clone();
        let groups = client::permission_groups(
            &self.rules,
            &self.config.user,
            action,
            &[
                structure_table.as_str(),
                crate::query::T_ASSY,
                crate::query::T_COMP,
            ],
        );

        let mut children = Vec::with_capacity(rs.len());
        for row in &rs.rows {
            let attrs = client::row_attrs(&rs, row);
            if !self.config.strategy.early_rules()
                && !client::permitted(&attrs, &groups, &self.funcs)
            {
                continue;
            }
            let node = node_from_attrs(attrs, Some(parent));
            children.push(node.obid);
            tree.insert(node);
        }
        Ok(children)
    }
}

/// Interpret a homogenized result row as a product node.
pub(crate) fn node_from_attrs(attrs: HashMap<String, Value>, parent: Option<ObjectId>) -> ProductNode {
    let obid = attrs.get("obid").and_then(as_id).unwrap_or_default();
    let type_name = match attrs.get("type") {
        Some(Value::Text(t)) => t.clone(),
        _ => String::new(),
    };
    let name = match attrs.get("name") {
        Some(Value::Text(n)) => n.clone(),
        _ => String::new(),
    };
    let parent = parent.or_else(|| attrs.get("parent").and_then(as_id));
    ProductNode { obid, parent, type_name, name, attrs }
}

fn as_id(v: &Value) -> Option<ObjectId> {
    match v {
        Value::Int(i) => Some(*i),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::condition::{CmpOp, Condition, RowPredicate};
    use crate::rules::Rule;
    use pdm_workload::{build_database, TreeSpec};

    /// Visibility rules: the simulated user sees only OPTA links/nodes.
    pub(crate) fn visibility_rules() -> RuleTable {
        let mut t = RuleTable::new();
        for table in ["link", "assy", "comp"] {
            t.add(Rule::for_all_users(
                ActionKind::Access,
                table,
                Condition::Row(RowPredicate::compare("strc_opt", CmpOp::Eq, "OPTA")),
            ));
        }
        t
    }

    fn session(strategy: Strategy, gamma: f64) -> Session {
        let spec = TreeSpec::new(3, 5, gamma).with_node_size(256);
        let (db, _) = build_database(&spec).unwrap();
        Session::new(
            db,
            SessionConfig::new("scott", strategy, LinkProfile::wan_256()),
            visibility_rules(),
        )
    }

    #[test]
    fn all_three_strategies_return_same_tree() {
        // γβ = 3 exactly (deterministic visibility): all strategies must
        // agree on the visible tree.
        let mut late = session(Strategy::LateEval, 0.6);
        let mut early = session(Strategy::EarlyEval, 0.6);
        let mut rec = session(Strategy::Recursive, 0.6);

        let t1 = late.multi_level_expand(1).unwrap();
        let t2 = early.multi_level_expand(1).unwrap();
        let t3 = rec.multi_level_expand(1).unwrap();

        let ids = |o: &ExpandOutcome| o.tree.node_ids().collect::<Vec<_>>();
        assert_eq!(ids(&t1), ids(&t2));
        assert_eq!(ids(&t1), ids(&t3));
        // visible: root + 3 + 9 + 27
        assert_eq!(t1.tree.len(), 1 + 3 + 9 + 27);
        assert_eq!(t1.tree.reachable_from_root(), t1.tree.len());
    }

    #[test]
    fn query_counts_match_the_cost_model() {
        // Navigational MLE touches root + every visible node: 1 + 39.
        let mut late = session(Strategy::LateEval, 0.6);
        let out = late.multi_level_expand(1).unwrap();
        assert_eq!(out.stats.queries, 40);
        assert_eq!(out.stats.communications, 80);

        // Recursive MLE: exactly one query, two communications.
        let mut rec = session(Strategy::Recursive, 0.6);
        let out = rec.multi_level_expand(1).unwrap();
        assert_eq!(out.stats.queries, 1);
        assert_eq!(out.stats.communications, 2);
    }

    #[test]
    fn early_eval_transfers_less_than_late() {
        let mut late = session(Strategy::LateEval, 0.6);
        let mut early = session(Strategy::EarlyEval, 0.6);
        let l = late.multi_level_expand(1).unwrap();
        let e = early.multi_level_expand(1).unwrap();
        assert_eq!(l.tree.len(), e.tree.len());
        assert!(
            e.stats.response_payload_bytes < l.stats.response_payload_bytes,
            "early {} vs late {}",
            e.stats.response_payload_bytes,
            l.stats.response_payload_bytes
        );
        // but the same number of queries — early evaluation alone does not
        // reduce round trips (§4.2's conclusion)
        assert_eq!(l.stats.queries, e.stats.queries);
    }

    #[test]
    fn recursive_beats_navigational_response_time() {
        let mut late = session(Strategy::LateEval, 0.6);
        let mut rec = session(Strategy::Recursive, 0.6);
        let l = late.multi_level_expand(1).unwrap();
        let r = rec.multi_level_expand(1).unwrap();
        let saving = 1.0 - r.stats.response_time() / l.stats.response_time();
        assert!(saving > 0.9, "saving was {saving}");
    }

    #[test]
    fn query_all_respects_visibility() {
        let mut late = session(Strategy::LateEval, 0.6);
        let mut early = session(Strategy::EarlyEval, 0.6);
        let l = late.query_all(1).unwrap();
        let e = early.query_all(1).unwrap();
        // both see the 39 visible non-root nodes
        assert_eq!(l.nodes.len(), 39);
        assert_eq!(e.nodes.len(), 39);
        // late shipped all 155 non-root nodes, early only 39
        assert!(l.stats.response_payload_bytes > 3 * e.stats.response_payload_bytes);
        // both were single queries
        assert_eq!(l.stats.queries, 1);
        assert_eq!(e.stats.queries, 1);
    }

    #[test]
    fn single_level_expand_one_query() {
        let mut s = session(Strategy::EarlyEval, 0.6);
        let out = s.single_level_expand(1).unwrap();
        assert_eq!(out.stats.queries, 1);
        assert_eq!(out.tree.len(), 1 + 3); // root + visible children
    }

    #[test]
    fn unknown_root_is_reported() {
        let mut s = session(Strategy::Recursive, 1.0);
        match s.multi_level_expand(999_999) {
            Err(SessionError::RootNotFound(999_999)) => {}
            other => panic!("expected RootNotFound, got {other:?}"),
        }
    }

    #[test]
    fn gamma_one_everything_transferred_everywhere() {
        let mut late = session(Strategy::LateEval, 1.0);
        let mut rec = session(Strategy::Recursive, 1.0);
        let l = late.multi_level_expand(1).unwrap();
        let r = rec.multi_level_expand(1).unwrap();
        assert_eq!(l.tree.len(), 1 + 5 + 25 + 125);
        assert_eq!(r.tree.len(), l.tree.len());
        // with γ=1 early==late volumes; recursive still wins on latency
        assert!(r.stats.latency_time < l.stats.latency_time / 10.0);
    }
}
