//! Multi-server PDM (the paper's §7 outlook): "multi-server environments in
//! conjunction with distributed data management ... have to be taken into
//! consideration".
//!
//! A federation spreads the product structure over several database sites;
//! links live with their parent's site, so a cross-site edge is a **mount
//! point** where any server-side traversal necessarily stops. The client
//! keeps the placement directory and the mount metadata (realistic: PDM
//! "distributed vault" catalogs are client/middleware metadata) and
//! continues the expansion at the owning site.
//!
// lint:allow-file(unchecked-index): `self.sites[site]` throughout — a
// site id is a handle validated at federation construction; panicking on
// a forged id is the intended contract, as with slice indexing.
//
//! The interesting measured consequence: the recursive strategy degrades
//! from 1 round trip to *one round trip per visited site* — still orders of
//! magnitude below navigational access, but no longer constant. The
//! `federation` bench binary quantifies this.

use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};

use pdm_net::{FaultPlan, LinkError, LinkProfile, MeteredChannel, TrafficStats};
use pdm_sql::functions::FunctionRegistry;
use pdm_sql::{Database, ResultSet, Value};

use crate::client::{self, Strategy};
use crate::product::{ObjectId, ProductTree};
use crate::query::modificator::Modificator;
use crate::query::{navigational, recursive};
use crate::resilience::RetryPolicy;
use crate::rules::table::RuleTable;
use crate::rules::ActionKind;
use crate::server::PdmServer;
use crate::session::{node_from_attrs, SessionError, SessionResult};

/// A cross-site edge as the client sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MountPoint {
    pub parent: ObjectId,
    pub child: ObjectId,
    pub child_site: usize,
    /// The connecting link carries the user's structure option.
    pub visible: bool,
}

/// One database site of the federation.
pub struct FederatedSite {
    pub name: String,
    server: PdmServer,
    channel: MeteredChannel,
    view_names: HashSet<String>,
}

impl FederatedSite {
    pub fn stats(&self) -> &TrafficStats {
        self.channel.stats()
    }

    pub fn elapsed(&self) -> f64 {
        self.channel.elapsed()
    }
}

/// Result of a federated expand.
#[derive(Debug, Clone)]
pub struct FederatedOutcome {
    pub tree: ProductTree,
    /// Traffic per site, in site order.
    pub per_site: Vec<TrafficStats>,
    /// Number of distinct sites the traversal touched.
    pub sites_visited: usize,
    /// `true` when at least one site could not be reached and its subtrees
    /// are missing from `tree` — the result is explicitly partial, never
    /// silently truncated.
    pub partial: bool,
    /// Names of the sites that stayed unreachable after retries.
    pub unreachable_sites: Vec<String>,
}

impl FederatedOutcome {
    /// Total response time of the (sequential) client: the sum of all
    /// per-site delays.
    pub fn response_time(&self) -> f64 {
        self.per_site.iter().map(TrafficStats::response_time).sum()
    }

    pub fn total_queries(&self) -> usize {
        self.per_site.iter().map(|s| s.queries).sum()
    }
}

/// A PDM client connected to several database sites.
pub struct Federation {
    sites: Vec<FederatedSite>,
    directory: HashMap<ObjectId, usize>,
    mounts_by_parent: HashMap<ObjectId, Vec<MountPoint>>,
    rules: RuleTable,
    user: String,
    strategy: Strategy,
    funcs: FunctionRegistry,
    retry: RetryPolicy,
}

impl Federation {
    /// Assemble a federation. `databases` and `links` are parallel: one
    /// populated database and one WAN profile per site. `directory` maps
    /// every object to its site.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        databases: Vec<Database>,
        links: Vec<LinkProfile>,
        site_names: Vec<String>,
        directory: HashMap<ObjectId, usize>,
        mounts: Vec<MountPoint>,
        user: impl Into<String>,
        strategy: Strategy,
        rules: RuleTable,
    ) -> Self {
        assert_eq!(databases.len(), links.len());
        assert_eq!(databases.len(), site_names.len());
        let sites = databases
            .into_iter()
            .zip(links)
            .zip(site_names)
            .map(|((db, link), name)| {
                let server = PdmServer::new(db);
                let view_names = server.view_names();
                FederatedSite {
                    name,
                    server,
                    channel: MeteredChannel::new(link),
                    view_names,
                }
            })
            .collect();
        let mut mounts_by_parent: HashMap<ObjectId, Vec<MountPoint>> = HashMap::new();
        for m in mounts {
            mounts_by_parent.entry(m.parent).or_default().push(m);
        }
        Federation {
            sites,
            directory,
            mounts_by_parent,
            rules,
            user: user.into(),
            strategy,
            funcs: crate::functions::client_registry(),
            retry: RetryPolicy::none(),
        }
    }

    pub fn sites(&self) -> &[FederatedSite] {
        &self.sites
    }

    /// Install a fault plan on one site's link. Like
    /// [`crate::Session::set_fault_plan`], a first install upgrades a
    /// no-retry policy to [`RetryPolicy::default_wan`].
    pub fn set_site_fault_plan(&mut self, site: usize, plan: FaultPlan) {
        self.sites[site].channel.set_fault_plan(plan);
        if self.retry == RetryPolicy::none() {
            self.retry = RetryPolicy::default_wan();
        }
    }

    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        self.retry = policy;
    }

    pub fn set_strategy(&mut self, strategy: Strategy) {
        self.strategy = strategy;
    }

    pub fn reset_metering(&mut self) {
        for s in &mut self.sites {
            s.channel.reset();
        }
    }

    fn site_of(&self, obid: ObjectId) -> SessionResult<usize> {
        self.directory
            .get(&obid)
            .copied()
            .ok_or(SessionError::RootNotFound(obid))
    }

    /// One metered query against a site, resilient when that site has a
    /// fault plan installed (expand queries are idempotent reads — safe to
    /// replay on any failure, including a lost response).
    fn metered_query(&mut self, site: usize, sql: &str) -> SessionResult<ResultSet> {
        if self.sites[site].channel.fault_plan().is_none() {
            let rs = self.sites[site].server.query(sql)?;
            self.sites[site]
                .channel
                .round_trip(sql.len(), rs.wire_size());
            return Ok(rs);
        }
        let mut attempt = 1u32;
        loop {
            {
                let ch = &self.sites[site].channel;
                if ch.elapsed() >= self.retry.deadline {
                    return Err(SessionError::Timeout {
                        attempts: attempt.saturating_sub(1),
                        elapsed: ch.elapsed(),
                        context: pdm_obs::FlightDump::at("net.exchange"),
                    });
                }
            }
            let failure = match self.sites[site].channel.try_send_request(sql.len()) {
                Ok(pending) => {
                    let rs = self.sites[site].server.query(sql)?;
                    match self.sites[site]
                        .channel
                        .try_receive_response(pending, rs.wire_size())
                    {
                        Ok(_) => return Ok(rs),
                        Err(e) => e,
                    }
                }
                Err(e) => e,
            };
            let ch = &mut self.sites[site].channel;
            if attempt >= self.retry.max_attempts {
                return Err(SessionError::from_link(
                    failure,
                    attempt,
                    ch.elapsed(),
                    &pdm_obs::Recorder::disabled(),
                ));
            }
            let mut wait = self.retry.backoff(attempt, ch.exchanges_attempted());
            if let LinkError::Outage { until, .. } = failure {
                wait = wait.max(until - ch.elapsed());
            }
            if ch.elapsed() + wait > self.retry.deadline {
                return Err(SessionError::Timeout {
                    attempts: attempt,
                    elapsed: ch.elapsed(),
                    context: pdm_obs::FlightDump::at("net.exchange"),
                });
            }
            ch.wait(wait);
            attempt += 1;
        }
    }

    /// Does the mount's connecting link pass the relation rules? Evaluated
    /// client-side from the mount metadata — no site holds both ends.
    fn mount_permitted(&self, mount: &MountPoint) -> bool {
        let attrs: HashMap<String, Value> = [(
            "strc_opt".to_string(),
            Value::from(if mount.visible {
                pdm_workload_user_option()
            } else {
                "NONE"
            }),
        )]
        .into_iter()
        .collect();
        let groups = client::permission_groups(
            &self.rules,
            &self.user,
            ActionKind::MultiLevelExpand,
            &[crate::query::T_LINK],
        );
        client::permitted(&attrs, &groups, &self.funcs)
    }

    /// Federated multi-level expand of the subtree rooted at `root`.
    ///
    /// On faulty links, a site that stays unreachable after retries is
    /// skipped: its subtrees are missing from the result, which comes back
    /// explicitly marked `partial` with the site names listed — degraded
    /// but honest service instead of failing the whole action. Failing the
    /// *root's* site still fails the action (there is nothing to return).
    pub fn multi_level_expand(&mut self, root: ObjectId) -> SessionResult<FederatedOutcome> {
        self.reset_metering();
        let root_site = self.site_of(root)?;
        let mut unreachable: BTreeSet<usize> = BTreeSet::new();

        // Root is client-cached (footnote 4): fetch unmetered.
        let root_node = {
            let q = navigational::fetch_node_query(root);
            let rs = self.sites[root_site].server.query(&q.to_string())?;
            let row = rs.rows.first().ok_or(SessionError::RootNotFound(root))?;
            node_from_attrs(client::row_attrs(&rs, row), None)
        };
        let mut tree = ProductTree::new();
        tree.insert(root_node);

        match self.strategy {
            Strategy::Recursive => {
                // One recursive query per visited partition.
                let mut visited_sites: HashSet<usize> = HashSet::new();
                // (subtree root, its site, parent to attach it to — None for
                // the federation root which is already in the tree)
                let mut queue: VecDeque<(ObjectId, usize, Option<ObjectId>)> = VecDeque::new();
                queue.push_back((root, root_site, None));
                while let Some((r, site, attach_to)) = queue.pop_front() {
                    if unreachable.contains(&site) {
                        continue;
                    }
                    visited_sites.insert(site);
                    let include_root = attach_to.is_some();
                    let mut q = recursive::mle_query_with_root(r, include_root);
                    let rules = self.rules.clone();
                    let user = self.user.clone();
                    let m = Modificator::new(
                        &rules,
                        &user,
                        ActionKind::MultiLevelExpand,
                        &self.sites[site].view_names,
                    );
                    m.modify_recursive(&mut q)?;
                    let sql = q.to_string();
                    let rs = match self.metered_query(site, &sql) {
                        Ok(rs) => rs,
                        Err(e) if e.is_link_failure() && site != root_site => {
                            unreachable.insert(site);
                            continue;
                        }
                        Err(e) => return Err(e),
                    };
                    for row in &rs.rows {
                        let attrs = client::row_attrs(&rs, row);
                        let obid = match attrs.get("obid") {
                            Some(Value::Int(i)) => *i,
                            _ => continue,
                        };
                        let parent = if obid == r { attach_to } else { None };
                        let node = node_from_attrs(attrs, parent);
                        tree.insert(node);
                    }
                    // Continue at mounts whose parent made it into the tree.
                    self.enqueue_mounts(r, &tree, &rs, &mut queue)?;
                }
                Ok(self.outcome(tree, visited_sites.len(), &unreachable))
            }
            Strategy::LateEval | Strategy::EarlyEval => {
                // Navigational: every expand query routed to the owning
                // site; mount children fetched from theirs.
                let mut visited_sites: HashSet<usize> = HashSet::new();
                let mut queue: VecDeque<ObjectId> = VecDeque::new();
                queue.push_back(root);
                while let Some(parent) = queue.pop_front() {
                    let site = self.site_of(parent)?;
                    if unreachable.contains(&site) {
                        continue;
                    }
                    visited_sites.insert(site);
                    let mut q = navigational::expand_query(parent);
                    if self.strategy.early_rules() {
                        let rules = self.rules.clone();
                        let user = self.user.clone();
                        Modificator::new(
                            &rules,
                            &user,
                            ActionKind::MultiLevelExpand,
                            &self.sites[site].view_names,
                        )
                        .modify_navigational(&mut q)?;
                    }
                    let sql = q.to_string();
                    let rs = match self.metered_query(site, &sql) {
                        Ok(rs) => rs,
                        Err(e) if e.is_link_failure() && site != root_site => {
                            unreachable.insert(site);
                            continue;
                        }
                        Err(e) => return Err(e),
                    };
                    let groups = client::permission_groups(
                        &self.rules,
                        &self.user,
                        ActionKind::MultiLevelExpand,
                        &[
                            crate::query::T_LINK,
                            crate::query::T_ASSY,
                            crate::query::T_COMP,
                        ],
                    );
                    for row in &rs.rows {
                        let attrs = client::row_attrs(&rs, row);
                        if !self.strategy.early_rules()
                            && !client::permitted(&attrs, &groups, &self.funcs)
                        {
                            continue;
                        }
                        let node = node_from_attrs(attrs, Some(parent));
                        queue.push_back(node.obid);
                        tree.insert(node);
                    }
                    // Mount children: fetch their row from the remote site,
                    // apply node rules client-side, continue expanding.
                    if let Some(mounts) = self.mounts_by_parent.get(&parent).cloned() {
                        for mount in mounts {
                            if !self.mount_permitted(&mount)
                                || unreachable.contains(&mount.child_site)
                            {
                                continue;
                            }
                            let fq = navigational::fetch_node_query(mount.child);
                            let rs = match self.metered_query(mount.child_site, &fq.to_string()) {
                                Ok(rs) => rs,
                                Err(e) if e.is_link_failure() => {
                                    unreachable.insert(mount.child_site);
                                    continue;
                                }
                                Err(e) => return Err(e),
                            };
                            visited_sites.insert(mount.child_site);
                            let Some(row) = rs.rows.first() else { continue };
                            let attrs = client::row_attrs(&rs, row);
                            let node_groups = client::permission_groups(
                                &self.rules,
                                &self.user,
                                ActionKind::MultiLevelExpand,
                                &[crate::query::T_ASSY, crate::query::T_COMP],
                            );
                            if !client::permitted(&attrs, &node_groups, &self.funcs) {
                                continue;
                            }
                            let node = node_from_attrs(attrs, Some(parent));
                            queue.push_back(node.obid);
                            tree.insert(node);
                        }
                    }
                }
                Ok(self.outcome(tree, visited_sites.len(), &unreachable))
            }
        }
    }

    fn outcome(
        &self,
        tree: ProductTree,
        sites_visited: usize,
        unreachable: &BTreeSet<usize>,
    ) -> FederatedOutcome {
        let per_site = self
            .sites
            .iter()
            .map(|s| s.channel.stats().clone())
            .collect();
        FederatedOutcome {
            tree,
            per_site,
            sites_visited,
            partial: !unreachable.is_empty(),
            unreachable_sites: unreachable
                .iter()
                .map(|&i| self.sites[i].name.clone())
                .collect(),
        }
    }

    /// After a partition's recursive result landed in `tree`, queue remote
    /// subtrees for every permitted mount whose parent was retrieved —
    /// including mounts owned by the traversal root itself, whose row may
    /// not appear in the partition result.
    fn enqueue_mounts(
        &self,
        traversal_root: ObjectId,
        tree: &ProductTree,
        partition_result: &ResultSet,
        queue: &mut VecDeque<(ObjectId, usize, Option<ObjectId>)>,
    ) -> SessionResult<()> {
        let obid_idx = partition_result.schema.require("obid")?;
        let mut parents: Vec<ObjectId> = vec![traversal_root];
        for row in &partition_result.rows {
            if let Value::Int(obid) = row.get(obid_idx) {
                parents.push(*obid);
            }
        }
        for parent in parents {
            let Some(mounts) = self.mounts_by_parent.get(&parent) else {
                continue;
            };
            for mount in mounts {
                if tree.contains(mount.parent)
                    && self.mount_permitted(mount)
                    && !tree.contains(mount.child)
                    && !queue.iter().any(|(c, _, _)| *c == mount.child)
                {
                    queue.push_back((mount.child, mount.child_site, Some(mount.parent)));
                }
            }
        }
        Ok(())
    }
}

/// The user's structure option literal (kept in sync with the workload
/// generator's marking without a crate dependency).
fn pdm_workload_user_option() -> &'static str {
    "OPTA"
}
