//! Check-out / check-in (§6).
//!
//! The paper's point: a check-out "cannot be represented in one single
//! query" — the retrieval can be one recursive query, but setting the
//! checked-out flags is an UPDATE that costs a *separate* WAN communication.
//! The remedy it sketches is function shipping: install the whole action at
//! the server. Both variants are implemented here so the benches can
//! measure the difference.

use pdm_net::TrafficStats;

use crate::product::{ObjectId, ProductTree};
use crate::query::recursive;
use crate::rules::classify::ConditionClass;
use crate::rules::condition::Condition;
use crate::rules::ActionKind;
use crate::server::id_list;
use crate::session::{Session, SessionError, SessionResult};

/// Result of a check-out attempt.
#[derive(Debug, Clone)]
pub struct CheckoutOutcome {
    /// The checked-out subtree, or `None` if the ∀rows condition failed
    /// (some object was already checked out).
    pub tree: Option<ProductTree>,
    pub stats: TrafficStats,
    /// Round trips spent on the UPDATE phase (0 for function shipping).
    pub update_round_trips: usize,
}

impl Session {
    /// Check out the subtree rooted at `root`: retrieve it (per the
    /// session's strategy), verify that no object in it is already checked
    /// out (the paper's example-2 ∀rows condition), then flag every
    /// retrieved object in separate UPDATE round trips.
    pub fn check_out(&mut self, root: ObjectId) -> SessionResult<CheckoutOutcome> {
        // Phase 1: retrieval (meters its own traffic, resets metering, and
        // folds its own traffic into the registry as its own action).
        let expand = self.multi_level_expand(root)?;
        let mut stats = expand.stats.clone();
        let tree = expand.tree;

        // Phase 2: the ∀rows condition. Under the recursive strategy a
        // checked-out node inside the subtree would have emptied the result
        // via the injected NOT EXISTS — here we also re-check client-side
        // (covers the navigational strategies, which cannot evaluate tree
        // conditions in their queries, §4.1).
        let violated = self.checkout_forall_violated(&tree);
        if violated {
            return Ok(CheckoutOutcome {
                tree: None,
                stats,
                update_round_trips: 0,
            });
        }

        // Phase 3: separate UPDATE communications (§6).
        let mut assy_ids: Vec<ObjectId> = Vec::new();
        let mut comp_ids: Vec<ObjectId> = Vec::new();
        for node in tree.nodes() {
            match node.type_name.as_str() {
                "assy" => assy_ids.push(node.obid),
                "comp" => comp_ids.push(node.obid),
                _ => {}
            }
        }
        self.reset_metering();
        let mut update_round_trips = 0;
        for (table, ids) in [("assy", &assy_ids), ("comp", &comp_ids)] {
            if ids.is_empty() {
                continue;
            }
            let sql = format!(
                "UPDATE {table} SET checkedout = TRUE WHERE obid IN ({})",
                id_list(ids)
            );
            self.metered_update_public(&sql)?;
            update_round_trips += 1;
        }
        // Fold ONLY the post-reset UPDATE-phase traffic: phase 1 already
        // folded itself inside multi_level_expand, and the absorbed total
        // below is for the caller's outcome, not the registry.
        self.fold_traffic();
        stats.absorb(self.stats());

        Ok(CheckoutOutcome {
            tree: Some(tree),
            stats,
            update_round_trips,
        })
    }

    /// Function-shipping check-out (§6's remedy): ship ONE procedure call;
    /// the server runs the (rule-modified) recursive query, verifies the
    /// condition, and flips the flags locally. One round trip total.
    ///
    /// The call carries an idempotency token, which makes it failure-atomic
    /// on a faulty link: if the confirmation is lost *after* the server
    /// flipped the flags, the retry replays the same token and the server
    /// returns the recorded outcome instead of refusing its own check-out —
    /// the flags are never left half-flipped behind the client's back.
    pub fn check_out_function_shipping(
        &mut self,
        root: ObjectId,
    ) -> SessionResult<CheckoutOutcome> {
        let action = self.begin_action("check_out_function_shipping");
        let result = self.check_out_function_shipping_inner(root);
        drop(action);
        self.fold_traffic();
        self.trace_result(result)
    }

    fn check_out_function_shipping_inner(
        &mut self,
        root: ObjectId,
    ) -> SessionResult<CheckoutOutcome> {
        // Admission control: a check-out holds a lock-table slot and a WAL
        // append, so it rides the Checkout priority class (sheds before
        // interactive queries as the token bucket drains).
        let _permit = self.admit(crate::overload::Priority::Checkout)?;
        let mut q = recursive::mle_query(root);
        {
            let rules = self.rules().clone();
            let user = self.config().user.clone();
            let views = self.server().view_names();
            let lookup = self
                .recorder()
                .span(pdm_obs::kinds::RULE_LOOKUP, "checkout_rules");
            let m = crate::query::modificator::Modificator::new(
                &rules,
                &user,
                ActionKind::CheckOut,
                &views,
            );
            drop(lookup);
            let span = self
                .recorder()
                .span(pdm_obs::kinds::QUERY_MODIFY, "recursive");
            m.modify_recursive(&mut q)?;
            drop(span);
        }
        let sql = q.to_string();
        let token = self.next_checkout_token();
        let request_bytes = sql.len() + 32; // procedure-call framing

        // A conflicting check-out that is mid-procedure on another session's
        // thread makes the server-side call WAIT; the session's per-action
        // deadline bounds that wait and surfaces as a Timeout.
        let lock_deadline = self.lock_deadline();
        let obs = self.recorder().clone();
        let result = if self.channel_mut().fault_plan().is_none() {
            let elapsed = self.elapsed();
            let result = self
                .server()
                .checkout_procedure_with_deadline_obs(root, &sql, token, lock_deadline, &obs)
                .map_err(|e| SessionError::from_shared(e, elapsed, &obs))?;
            let response = procedure_response_size(&result);
            self.meter_round_trip(request_bytes, response);
            result
        } else {
            let mut attempt = 1u32;
            loop {
                self.check_deadline(attempt)?;
                let failure = match self.channel_mut().try_send_request(request_bytes) {
                    Ok(pending) => {
                        let elapsed = self.elapsed();
                        let result = self
                            .server()
                            .checkout_procedure_with_deadline_obs(
                                root,
                                &sql,
                                token,
                                lock_deadline,
                                &obs,
                            )
                            .map_err(|e| SessionError::from_shared(e, elapsed, &obs))?;
                        let response = procedure_response_size(&result);
                        match self.channel_mut().try_receive_response(pending, response) {
                            Ok(_) => break result,
                            // The confirmation was lost after the server
                            // committed: replaying the SAME token returns
                            // the recorded outcome without re-flipping.
                            Err(e) => e,
                        }
                    }
                    // Request never reached the server — nothing happened.
                    Err(e) => e,
                };
                self.back_off_or_fail(attempt, failure)?;
                attempt += 1;
            }
        };

        match result.rows {
            None => Ok(CheckoutOutcome {
                tree: None,
                stats: self.stats().clone(),
                update_round_trips: 0,
            }),
            Some(rows) => {
                let mut tree = ProductTree::new();
                let root_node = self.fetch_root_cached(root)?;
                tree.insert(root_node);
                for row in &rows.rows {
                    let attrs = crate::client::row_attrs(&rows, row);
                    let parent = attrs.get("parent").and_then(|v| match v {
                        pdm_sql::Value::Int(i) => Some(*i),
                        _ => None,
                    });
                    let node = crate::session::node_from_attrs(attrs, parent);
                    tree.insert(node);
                }
                Ok(CheckoutOutcome {
                    tree: Some(tree),
                    stats: self.stats().clone(),
                    update_round_trips: 0,
                })
            }
        }
    }

    /// Check a previously retrieved subtree back in (one UPDATE round trip
    /// per affected table).
    pub fn check_in(&mut self, tree: &ProductTree) -> SessionResult<usize> {
        let action = self.begin_action("check_in");
        let result = self.check_in_inner(tree);
        drop(action);
        self.fold_traffic();
        self.trace_result(result)
    }

    fn check_in_inner(&mut self, tree: &ProductTree) -> SessionResult<usize> {
        let mut assy_ids = Vec::new();
        let mut comp_ids = Vec::new();
        for node in tree.nodes() {
            match node.type_name.as_str() {
                "assy" => assy_ids.push(node.obid),
                "comp" => comp_ids.push(node.obid),
                _ => {}
            }
        }
        let mut n = 0;
        for (table, ids) in [("assy", &assy_ids), ("comp", &comp_ids)] {
            if ids.is_empty() {
                continue;
            }
            let sql = format!(
                "UPDATE {table} SET checkedout = FALSE WHERE obid IN ({})",
                id_list(ids)
            );
            n += self.metered_update_public(&sql)?;
        }
        // Release the lock-table entries a function-shipping check-out of
        // this tree registered (no-op for classically checked-out trees).
        let mut all_ids = assy_ids;
        all_ids.extend(comp_ids);
        self.server().shared().lock_table().release(&all_ids);
        Ok(n)
    }

    /// Does the retrieved tree violate a relevant ∀rows check-out rule?
    /// Evaluated client-side over the transferred attributes (the
    /// homogenized result carries the `checkedout` flag); under the
    /// recursive strategy the injected NOT EXISTS has already enforced this
    /// at the server, so this re-check is a no-op there.
    fn checkout_forall_violated(&mut self, tree: &ProductTree) -> bool {
        let funcs = crate::functions::client_registry();
        let forall_rules = self.rules().relevant_of_class(
            &self.config().user,
            ActionKind::CheckOut,
            ConditionClass::ForAllRows,
        );
        for rule in forall_rules {
            let Condition::ForAllRows {
                object_type,
                predicate,
            } = &rule.condition
            else {
                continue;
            };
            for node in tree.nodes() {
                if let Some(t) = object_type {
                    if &node.type_name != t {
                        continue;
                    }
                }
                if !predicate.eval(&node.attrs, &funcs) {
                    return true;
                }
            }
        }
        false
    }
}

/// Wire size of a procedure result: real rows, or a small refusal message.
fn procedure_response_size(result: &crate::server::CheckoutProcedureResult) -> usize {
    match &result.rows {
        None => 32,
        Some(rows) => rows.wire_size(),
    }
}

// Helper re-exports used by checkout (kept out of the public session API).
impl Session {
    /// One metered UPDATE exchange. The check-out/check-in flag updates are
    /// idempotent (`SET checkedout = <const>` over a fixed id set), so on a
    /// faulty link every failure mode — including a lost confirmation after
    /// the server applied the update — is safe to replay.
    pub(crate) fn metered_update_public(&mut self, sql: &str) -> SessionResult<usize> {
        let _permit = self.admit(crate::overload::Priority::Checkout)?;
        let obs = self.recorder().clone();
        if self.channel_mut().fault_plan().is_none() {
            self.check_deadline(1)?;
            let deadline = self.lock_deadline();
            let elapsed = self.elapsed();
            let out = self
                .server()
                .shared()
                .execute_deadline_obs(sql, deadline, &obs)
                .map_err(|e| SessionError::from_shared(e, elapsed, &obs))?;
            self.meter_round_trip(sql.len(), 16);
            return Ok(updated_rows(out));
        }
        let mut attempt = 1u32;
        loop {
            self.check_deadline(attempt)?;
            let failure = match self.channel_mut().try_send_request(sql.len()) {
                Ok(pending) => {
                    let out = self.server().execute_obs(sql, &obs)?;
                    match self.channel_mut().try_receive_response(pending, 16) {
                        Ok(_) => return Ok(updated_rows(out)),
                        Err(e) => e,
                    }
                }
                Err(e) => e,
            };
            self.back_off_or_fail(attempt, failure)?;
            attempt += 1;
        }
    }

    fn meter_round_trip(&mut self, request: usize, response: usize) {
        self.channel_mut().round_trip(request, response);
    }
}

fn updated_rows(out: pdm_sql::ExecOutcome) -> usize {
    match out {
        pdm_sql::ExecOutcome::Dml(pdm_sql::DmlOutcome::Updated(n)) => n,
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::condition::{CmpOp, RowPredicate};
    use crate::rules::Rule;
    use crate::session::SessionConfig;
    use crate::Strategy;
    use pdm_net::LinkProfile;
    use pdm_workload::{build_database, TreeSpec};

    fn rules_with_checkout() -> crate::rules::table::RuleTable {
        let mut t = crate::rules::table::RuleTable::new();
        for table in ["link", "assy", "comp"] {
            t.add(Rule::for_all_users(
                ActionKind::Access,
                table,
                Condition::Row(RowPredicate::compare("strc_opt", CmpOp::Eq, "OPTA")),
            ));
        }
        t.add(Rule::for_all_users(
            ActionKind::CheckOut,
            "assy",
            Condition::ForAllRows {
                object_type: None,
                predicate: RowPredicate::compare("checkedout", CmpOp::Eq, false),
            },
        ));
        t
    }

    fn session(strategy: Strategy) -> Session {
        let spec = TreeSpec::new(2, 3, 1.0).with_node_size(256);
        let (db, _) = build_database(&spec).unwrap();
        Session::new(
            db,
            SessionConfig::new("scott", strategy, LinkProfile::wan_256()),
            rules_with_checkout(),
        )
    }

    #[test]
    fn checkout_retrieves_flags_and_blocks_second_attempt() {
        let mut s = session(Strategy::Recursive);
        let out = s.check_out(1).unwrap();
        let tree = out.tree.expect("first check-out succeeds");
        assert_eq!(tree.len(), 1 + 3 + 9);
        assert!(out.update_round_trips >= 1);

        // second attempt must fail the ∀rows condition
        let out2 = s.check_out(1).unwrap();
        assert!(out2.tree.is_none());
    }

    #[test]
    fn checkin_releases() {
        let mut s = session(Strategy::Recursive);
        let out = s.check_out(1).unwrap();
        let tree = out.tree.unwrap();
        let n = s.check_in(&tree).unwrap();
        assert_eq!(n, tree.len());
        // and a fresh check-out succeeds again
        assert!(s.check_out(1).unwrap().tree.is_some());
    }

    #[test]
    fn function_shipping_uses_single_round_trip() {
        let mut s = session(Strategy::Recursive);
        let out = s.check_out_function_shipping(1).unwrap();
        assert!(out.tree.is_some());
        assert_eq!(out.stats.queries, 1);
        assert_eq!(out.update_round_trips, 0);

        // classic check-out needs strictly more communications
        let mut s2 = session(Strategy::Recursive);
        let classic = s2.check_out(1).unwrap();
        assert!(classic.stats.communications > out.stats.communications);
    }

    #[test]
    fn function_shipping_refusal_is_cheap() {
        let mut s = session(Strategy::Recursive);
        s.check_out_function_shipping(1).unwrap();
        let denied = s.check_out_function_shipping(1).unwrap();
        assert!(denied.tree.is_none());
        // refusal response is tiny
        assert!(denied.stats.response_payload_bytes < 100);
    }

    #[test]
    fn navigational_checkout_works_too() {
        let mut s = session(Strategy::EarlyEval);
        let out = s.check_out(1).unwrap();
        assert!(out.tree.is_some());
        assert!(out.stats.queries > 2); // per-node queries + checks + updates
    }
}
