//! The shared, concurrently queryable PDM server.
//!
//! The paper's deployment (§1, Fig. 1) is many worldwide clients against
//! ONE central PDM database. [`SharedServer`] is that central object: every
//! [`crate::Session`] holds an `Arc<SharedServer>`, reads run lock-free on
//! immutable storage snapshots ([`pdm_sql::SharedDatabase`]), and the
//! server adds the three pieces of cross-session state a real PDM server
//! needs:
//!
//! * a **check-out lock table** (§6 semantics): conflicting concurrent
//!   check-outs of the same object serialize — an in-flight check-out makes
//!   competitors *wait* (bounded by the caller's deadline), a completed one
//!   makes them *refuse*, and check-in releases the entry;
//! * a **cross-session query-result cache** keyed by canonical SQL text +
//!   storage version. Any DML bumps the version (the cache epoch), so a
//!   stale read is impossible by construction — a cached result is only
//!   returned while the storage it was computed from is still current;
//! * an **idempotency log** for failure-atomic check-outs (PR 1), now
//!   shared so tokens are unique across sessions, plus an optional
//!   **operation journal** the deterministic concurrency tests replay.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

use pdm_obs::{kinds, Counter, Histogram, MetricsRegistry, Recorder};
use pdm_sql::{Database, ExecOutcome, ResultSet, SharedDatabase, Statement};

use crate::durability::{Durability, DurabilityConfig};
use crate::overload::{OverloadConfig, OverloadGate};
use crate::product::ObjectId;
use crate::server::{id_list, split_ids, CheckoutProcedureResult};

/// Lock a mutex, treating poison as "the panicking thread is gone, the data
/// is still consistent" (every critical section here is short and
/// non-panicking in release paths).
fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Errors surfaced by the shared server itself (the session layer maps
/// these onto [`crate::SessionError`]).
#[derive(Debug)]
pub enum SharedServerError {
    Sql(pdm_sql::Error),
    /// A conflicting check-out was in flight and the lock wait exceeded the
    /// caller's deadline.
    LockTimeout {
        waited: Duration,
    },
    /// The bounded lock wait queue is at capacity — the server sheds the
    /// waiter instead of queuing unboundedly (DESIGN.md §14).
    QueueFull {
        depth: usize,
    },
    /// The caller's propagated deadline was already spent when the work
    /// reached this blocking point; the doomed work was abandoned instead
    /// of completed uselessly.
    DeadlineExpired {
        waited: Duration,
    },
}

impl std::fmt::Display for SharedServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SharedServerError::Sql(e) => write!(f, "database error: {e}"),
            SharedServerError::LockTimeout { waited } => {
                write!(f, "lock wait timed out after {waited:?}")
            }
            SharedServerError::QueueFull { depth } => {
                write!(f, "lock wait queue full ({depth} waiters)")
            }
            SharedServerError::DeadlineExpired { waited } => {
                write!(f, "deadline expired after {waited:?}; work abandoned")
            }
        }
    }
}

impl std::error::Error for SharedServerError {}

impl From<pdm_sql::Error> for SharedServerError {
    fn from(e: pdm_sql::Error) -> Self {
        SharedServerError::Sql(e)
    }
}

// ---------------------------------------------------------------------------
// Lock table
// ---------------------------------------------------------------------------

/// State of one object's check-out lock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LockState {
    /// A check-out holding this object is mid-procedure; competitors wait.
    InFlight(u64),
    /// A completed check-out holds this object until check-in; competitors
    /// refuse (the paper's ∀rows condition).
    Held(u64),
}

/// Outcome of an all-or-nothing in-flight acquisition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Acquire {
    /// All objects marked in-flight for this token.
    Granted,
    /// At least one object is held by a completed check-out — the check-out
    /// must refuse (not wait).
    Busy,
}

/// Events recorded by the lock table when journaling is on. The
/// concurrency tests assert overlap-safety on this sequence: between a
/// granted check-out of object X and the next check-in covering X, no other
/// grant may mention X.
#[derive(Debug, Clone)]
pub enum LockEvent {
    Granted { token: u64, ids: Vec<ObjectId> },
    Refused { token: u64, ids: Vec<ObjectId> },
    Released { ids: Vec<ObjectId> },
}

/// One queued lock waiter. Tickets are granted in `seq` (arrival) order
/// *per conflict class*: a ticket only yields to earlier tickets whose id
/// sets intersect its own, so disjoint check-outs never head-of-line
/// block each other while same-object contenders are served strictly
/// FIFO — the starvation fix over the old unordered condvar wakeup.
#[derive(Debug)]
struct Ticket {
    seq: u64,
    token: u64,
    ids: Vec<ObjectId>,
}

#[derive(Debug, Default)]
struct LockTableState {
    locks: HashMap<ObjectId, LockState>,
    /// FIFO wait queue of blocked acquisitions (see [`Ticket`]).
    queue: VecDeque<Ticket>,
    next_seq: u64,
    /// Lock-event journal (only appended when journaling is enabled).
    /// Appended inside the same critical section that mutates `locks`, so
    /// the recorded order IS the serialization order.
    events: Vec<LockEvent>,
}

/// Waiters sleep in bounded slices even with no deadline, so a missed
/// wakeup can only cost one slice, never a hang.
const WAIT_SLICE: Duration = Duration::from_millis(25);

/// The check-out lock table: object id → lock state, with a ticketed
/// FIFO wait queue for in-flight conflicts (bounded depth, arrival-order
/// grants per conflict class).
#[derive(Debug)]
pub struct LockTable {
    state: Mutex<LockTableState>,
    cv: Condvar,
    journal: AtomicBool,
    /// Maximum queued waiters; past it new waiters are rejected with
    /// [`SharedServerError::QueueFull`] instead of queuing unboundedly.
    queue_bound: AtomicUsize,
    /// Count of queue-full rejections (registered as
    /// `overload.lock_queue_rejections` when owned by a server).
    rejections: Counter,
}

impl Default for LockTable {
    fn default() -> Self {
        LockTable {
            state: Mutex::new(LockTableState::default()),
            cv: Condvar::new(),
            journal: AtomicBool::new(false),
            queue_bound: AtomicUsize::new(usize::MAX),
            rejections: Counter::new(),
        }
    }
}

impl LockTable {
    /// Any id held by a completed check-out of another token?
    fn is_busy(state: &LockTableState, ids: &[ObjectId], token: u64) -> bool {
        ids.iter().any(
            |id| matches!(state.locks.get(id), Some(LockState::Held(owner)) if *owner != token),
        )
    }

    /// Any id in flight for another token?
    fn is_blocked(state: &LockTableState, ids: &[ObjectId], token: u64) -> bool {
        ids.iter().any(
            |id| matches!(state.locks.get(id), Some(LockState::InFlight(owner)) if *owner != token),
        )
    }

    /// Any *earlier* queued ticket (strictly before `before_seq`, or any
    /// ticket when `None`) of another token whose ids intersect ours?
    fn queue_conflicts(
        state: &LockTableState,
        ids: &[ObjectId],
        token: u64,
        before_seq: Option<u64>,
    ) -> bool {
        state.queue.iter().any(|t| {
            t.token != token
                && before_seq.is_none_or(|s| t.seq < s)
                && t.ids.iter().any(|id| ids.contains(id))
        })
    }

    fn grant(state: &mut LockTableState, ids: &[ObjectId], token: u64) {
        for id in ids {
            state.locks.entry(*id).or_insert(LockState::InFlight(token));
        }
    }

    fn journal_refused(&self, state: &mut LockTableState, ids: &[ObjectId], token: u64) {
        if self.journal.load(Ordering::Relaxed) {
            state.events.push(LockEvent::Refused {
                token,
                ids: ids.to_vec(),
            });
        }
    }

    fn remove_ticket(state: &mut LockTableState, seq: u64) {
        state.queue.retain(|t| t.seq != seq);
    }

    /// All-or-nothing: mark every id in-flight for `token`, waiting (up to
    /// `deadline`) while any id is in-flight for another token. Ids held by
    /// a *completed* check-out produce [`Acquire::Busy`] immediately — that
    /// conflict is resolved by check-in, not by waiting.
    ///
    /// Blocked acquisitions join a FIFO ticket queue and are granted in
    /// strict arrival order among conflicting tickets; a full queue (see
    /// [`LockTable::set_queue_bound`]) rejects the waiter with
    /// [`SharedServerError::QueueFull`].
    ///
    /// Re-entrancy: ids already in-flight or held by `token` itself count
    /// as satisfied, so a retry of the same idempotent check-out never
    /// deadlocks on its own locks.
    pub fn acquire_in_flight(
        &self,
        ids: &[ObjectId],
        token: u64,
        deadline: Option<Duration>,
    ) -> Result<Acquire, SharedServerError> {
        // lint:allow(wall-clock): condvar waits are real-OS blocking; their
        // deadline must be measured on the OS clock, not the virtual one.
        let start = Instant::now();
        let mut guard = lock_unpoisoned(&self.state);
        if Self::is_busy(&guard, ids, token) {
            self.journal_refused(&mut guard, ids, token);
            return Ok(Acquire::Busy);
        }
        if !Self::is_blocked(&guard, ids, token) && !Self::queue_conflicts(&guard, ids, token, None)
        {
            Self::grant(&mut guard, ids, token);
            return Ok(Acquire::Granted);
        }
        // Blocked: take a ticket (bounded queue).
        let depth = guard.queue.len();
        if depth >= self.queue_bound.load(Ordering::Relaxed) {
            self.rejections.inc();
            return Err(SharedServerError::QueueFull { depth });
        }
        let seq = guard.next_seq;
        guard.next_seq = guard.next_seq.saturating_add(1);
        guard.queue.push_back(Ticket {
            seq,
            token,
            ids: ids.to_vec(),
        });
        loop {
            let slice = match deadline {
                None => WAIT_SLICE,
                Some(d) => {
                    let Some(remaining) = d.checked_sub(start.elapsed()) else {
                        Self::remove_ticket(&mut guard, seq);
                        drop(guard);
                        // Our departure may unblock tickets queued behind us.
                        self.cv.notify_all();
                        return Err(SharedServerError::LockTimeout {
                            waited: start.elapsed(),
                        });
                    };
                    remaining.min(WAIT_SLICE)
                }
            };
            guard = match self.cv.wait_timeout(guard, slice) {
                Ok((g, _)) => g,
                Err(poisoned) => poisoned.into_inner().0,
            };
            if Self::is_busy(&guard, ids, token) {
                Self::remove_ticket(&mut guard, seq);
                self.journal_refused(&mut guard, ids, token);
                drop(guard);
                self.cv.notify_all();
                return Ok(Acquire::Busy);
            }
            if !Self::is_blocked(&guard, ids, token)
                && !Self::queue_conflicts(&guard, ids, token, Some(seq))
            {
                Self::remove_ticket(&mut guard, seq);
                Self::grant(&mut guard, ids, token);
                drop(guard);
                self.cv.notify_all();
                return Ok(Acquire::Granted);
            }
        }
    }

    /// Bound the wait queue: at most `n` queued waiters, further ones are
    /// rejected with [`SharedServerError::QueueFull`]. Default: unbounded.
    pub fn set_queue_bound(&self, n: usize) {
        self.queue_bound.store(n, Ordering::Relaxed);
    }

    /// Current number of queued waiters.
    pub fn queue_depth(&self) -> usize {
        lock_unpoisoned(&self.state).queue.len()
    }

    /// Queue-full rejections so far.
    pub fn queue_rejections(&self) -> u64 {
        self.rejections.get()
    }

    /// Register the rejection counter under the server's registry (called
    /// once at server assembly).
    fn set_rejection_counter(&mut self, counter: Counter) {
        self.rejections = counter;
    }

    /// Promote this token's in-flight marks to held (check-out committed)
    /// and record the grant.
    pub fn promote(&self, ids: &[ObjectId], token: u64) {
        let mut guard = lock_unpoisoned(&self.state);
        for id in ids {
            guard.locks.insert(*id, LockState::Held(token));
        }
        if self.journal.load(Ordering::Relaxed) {
            guard.events.push(LockEvent::Granted {
                token,
                ids: ids.to_vec(),
            });
        }
        drop(guard);
        self.cv.notify_all();
    }

    /// Drop this token's in-flight marks (check-out refused or failed) and
    /// wake waiters.
    pub fn abort(&self, ids: &[ObjectId], token: u64) {
        let mut guard = lock_unpoisoned(&self.state);
        for id in ids {
            if guard.locks.get(id) == Some(&LockState::InFlight(token)) {
                guard.locks.remove(id);
            }
        }
        if self.journal.load(Ordering::Relaxed) {
            guard.events.push(LockEvent::Refused {
                token,
                ids: ids.to_vec(),
            });
        }
        drop(guard);
        self.cv.notify_all();
    }

    /// Release held entries (check-in) and wake waiters. Ids not present
    /// are ignored — check-in of a classically checked-out tree (whose
    /// flags were set by plain UPDATEs) has nothing to release here.
    pub fn release(&self, ids: &[ObjectId]) {
        let mut guard = lock_unpoisoned(&self.state);
        for id in ids {
            if matches!(guard.locks.get(id), Some(LockState::Held(_))) {
                guard.locks.remove(id);
            }
        }
        if self.journal.load(Ordering::Relaxed) {
            guard.events.push(LockEvent::Released { ids: ids.to_vec() });
        }
        drop(guard);
        self.cv.notify_all();
    }

    /// Which token holds this object (completed check-outs only).
    pub fn holder(&self, id: ObjectId) -> Option<u64> {
        match lock_unpoisoned(&self.state).locks.get(&id) {
            Some(LockState::Held(t)) => Some(*t),
            _ => None,
        }
    }

    /// Number of live entries (in-flight + held).
    pub fn len(&self) -> usize {
        lock_unpoisoned(&self.state).locks.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn set_journal(&self, on: bool) {
        self.journal.store(on, Ordering::Relaxed);
    }

    fn take_events(&self) -> Vec<LockEvent> {
        std::mem::take(&mut lock_unpoisoned(&self.state).events)
    }
}

// ---------------------------------------------------------------------------
// Cross-session query-result cache
// ---------------------------------------------------------------------------

/// One cached result: the storage version it was computed against and the
/// shared rows.
#[derive(Debug, Clone)]
struct CacheEntry {
    version: u64,
    result: Arc<ResultSet>,
}

/// Hit/miss counters of the cross-session cache (monotonic).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
}

impl CacheStats {
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Cross-session query-result cache. Keyed by canonical SQL text (the
/// parsed query pretty-printed, so formatting differences collapse onto one
/// entry) plus the storage version. DML bumps the version, which atomically
/// invalidates every entry — a lookup only ever returns a result computed
/// against the *current* storage.
///
/// Hit/miss/invalidation counts live in the server's metrics registry
/// (`cache.hits`, `cache.misses`, `cache.invalidations`), so they appear in
/// the same snapshot as every other subsystem's counters.
#[derive(Debug)]
struct QueryCache {
    map: Mutex<HashMap<String, CacheEntry>>,
    /// Canonical keys currently being computed by a single-flight leader.
    /// Concurrent misses on the same key wait (bounded by their deadline)
    /// on `sf_cv` and re-probe instead of compiling + executing the same
    /// query N times — the cache-stampede (dogpile) fix.
    inflight: Mutex<HashSet<String>>,
    sf_cv: Condvar,
    hits: Counter,
    misses: Counter,
    /// Entries discarded because their storage version went stale — whether
    /// replaced in place by a recomputation or removed by an eviction sweep.
    invalidations: Counter,
    /// Computations that took single-flight leadership for their key.
    singleflight_leaders: Counter,
    /// Lookups served by another session's in-flight computation (waited,
    /// then hit the freshly published entry).
    singleflight_hits: Counter,
}

/// Entries beyond this trigger an eviction sweep of stale versions.
const CACHE_CAPACITY: usize = 4096;

impl QueryCache {
    fn new(registry: &MetricsRegistry) -> Self {
        QueryCache {
            map: Mutex::new(HashMap::new()),
            inflight: Mutex::new(HashSet::new()),
            sf_cv: Condvar::new(),
            hits: registry.counter("cache.hits"),
            misses: registry.counter("cache.misses"),
            invalidations: registry.counter("cache.invalidations"),
            singleflight_leaders: registry.counter("cache.singleflight_leaders"),
            singleflight_hits: registry.counter("cache.singleflight_hits"),
        }
    }

    fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
        }
    }
}

// ---------------------------------------------------------------------------
// Server metric handles
// ---------------------------------------------------------------------------

/// Metric handles resolved once at server assembly (registry lookups are a
/// mutex + map probe; the hot paths touch these pre-resolved atomics).
#[derive(Debug)]
struct ServerMetrics {
    queries: Counter,
    dml_commits: Counter,
    wal_appends: Counter,
    wal_fsync_ns: Histogram,
    lock_wait_ns: Histogram,
    lock_grants: Counter,
    lock_refusals: Counter,
    rows_scanned: Counter,
    subquery_evals: Counter,
    subquery_cache_hits: Counter,
    recursion_iterations: Counter,
    index_probes: Counter,
    /// Work abandoned at a blocking point because the caller's propagated
    /// deadline was already spent (DESIGN.md §14).
    deadline_abandons: Counter,
}

impl ServerMetrics {
    fn new(registry: &MetricsRegistry) -> Self {
        ServerMetrics {
            queries: registry.counter("server.queries"),
            dml_commits: registry.counter("server.dml_commits"),
            wal_appends: registry.counter("wal.appends"),
            wal_fsync_ns: registry.histogram("wal.fsync_ns"),
            lock_wait_ns: registry.histogram("locks.wait_ns"),
            lock_grants: registry.counter("locks.grants"),
            lock_refusals: registry.counter("locks.refusals"),
            rows_scanned: registry.counter("engine.rows_scanned"),
            subquery_evals: registry.counter("engine.subquery_evals"),
            subquery_cache_hits: registry.counter("engine.subquery_cache_hits"),
            recursion_iterations: registry.counter("engine.recursion_iterations"),
            index_probes: registry.counter("engine.index_probes"),
            deadline_abandons: registry.counter("overload.deadline_abandons"),
        }
    }

    /// Fold one query's executor counters into the registry totals.
    fn fold_exec(&self, stats: &pdm_sql::exec::ExecStats) {
        self.rows_scanned.add(stats.rows_scanned as u64);
        self.subquery_evals.add(stats.subquery_evals as u64);
        self.subquery_cache_hits
            .add(stats.subquery_cache_hits as u64);
        self.recursion_iterations
            .add(stats.recursion_iterations as u64);
        self.index_probes.add(stats.index_probes as u64);
    }
}

// ---------------------------------------------------------------------------
// Shared server
// ---------------------------------------------------------------------------

/// The central PDM server shared by all sessions. See the module docs.
#[derive(Debug)]
pub struct SharedServer {
    db: SharedDatabase,
    locks: LockTable,
    cache: QueryCache,
    /// Check-outs by idempotency token (shared across sessions — tokens are
    /// drawn from [`SharedServer::next_token`]). `None` marks a call still
    /// in progress: concurrent calls with the same token wait on
    /// `checkout_cv` for its recorded outcome instead of executing twice.
    checkout_log: Mutex<HashMap<u64, Option<CheckoutProcedureResult>>>,
    checkout_cv: Condvar,
    token_counter: AtomicU64,
    /// DML journal: the exact commit order of every write statement, for
    /// deterministic serial replay. `write_gate` makes append atomic with
    /// execution.
    write_gate: Mutex<Vec<String>>,
    journal: AtomicBool,
    /// Optional write-ahead log + checkpoint attachment. When present,
    /// every DML commit, check-out grant/release, and token completion is
    /// made durable before it takes effect (see [`crate::durability`]).
    durability: Option<Durability>,
    /// The server-wide metrics registry (cache, locks, WAL, engine, query
    /// counters). Sessions merge their network metering into the same
    /// registry so one snapshot covers the whole stack.
    metrics: Arc<MetricsRegistry>,
    /// Pre-resolved handles into `metrics` for the hot paths.
    m: ServerMetrics,
    /// Optional admission gate (overload protection). Absent — the
    /// default — every request is admitted and the server behaves exactly
    /// as it did before overload protection existed.
    overload: OnceLock<Arc<OverloadGate>>,
}

impl SharedServer {
    /// Wrap a populated database, installing the PDM stored functions.
    pub fn new(mut db: Database) -> Self {
        crate::functions::register_pdm_functions(&mut db);
        Self::assemble(SharedDatabase::new(db), None, HashMap::new(), 1)
    }

    /// Wrap a populated database with a durability attachment: every commit
    /// is write-ahead logged, and an initial checkpoint is cut immediately
    /// so recovery of this store is always checkpoint-load + log-replay.
    pub fn with_durability(mut db: Database, cfg: &DurabilityConfig) -> pdm_sql::Result<Self> {
        crate::functions::register_pdm_functions(&mut db);
        let shared = SharedDatabase::new(db);
        let durability = Durability::new(cfg);
        durability.checkpoint(&shared.snapshot())?;
        Ok(Self::assemble(shared, Some(durability), HashMap::new(), 1))
    }

    /// Assemble a server from recovered (or fresh) parts. `tokens` seeds
    /// the idempotency log; `next_token` must exceed every token in it.
    pub(crate) fn assemble(
        db: SharedDatabase,
        durability: Option<Durability>,
        tokens: impl IntoIterator<Item = (u64, Option<ResultSet>)>,
        next_token: u64,
    ) -> Self {
        let checkout_log: HashMap<u64, Option<CheckoutProcedureResult>> = tokens
            .into_iter()
            .map(|(token, rows)| (token, Some(CheckoutProcedureResult { rows })))
            .collect();
        let metrics = Arc::new(MetricsRegistry::new());
        let cache = QueryCache::new(&metrics);
        let m = ServerMetrics::new(&metrics);
        let mut locks = LockTable::default();
        locks.set_rejection_counter(metrics.counter("overload.lock_queue_rejections"));
        SharedServer {
            db,
            locks,
            cache,
            checkout_log: Mutex::new(checkout_log),
            checkout_cv: Condvar::new(),
            token_counter: AtomicU64::new(next_token),
            write_gate: Mutex::new(Vec::new()),
            journal: AtomicBool::new(false),
            durability,
            metrics,
            m,
            overload: OnceLock::new(),
        }
    }

    /// Install an admission gate (idempotent: the first installation
    /// wins). Returns the gate in effect.
    pub fn install_overload_gate(&self, cfg: OverloadConfig) -> Arc<OverloadGate> {
        let gate = OverloadGate::new(cfg, &self.metrics);
        match self.overload.set(Arc::clone(&gate)) {
            Ok(()) => gate,
            Err(_) => self.overload_gate().unwrap_or(gate),
        }
    }

    /// The admission gate, if one is installed.
    pub fn overload_gate(&self) -> Option<Arc<OverloadGate>> {
        self.overload.get().cloned()
    }

    /// The durability attachment, if this server write-ahead logs.
    pub fn durability(&self) -> Option<&Durability> {
        self.durability.as_ref()
    }

    /// The underlying snapshot store.
    pub fn database(&self) -> &SharedDatabase {
        &self.db
    }

    /// The check-out lock table (diagnostics and tests).
    pub fn lock_table(&self) -> &LockTable {
        &self.locks
    }

    /// Current storage version — the cache epoch.
    pub fn version(&self) -> u64 {
        self.db.version()
    }

    /// A server-unique idempotency token (sessions draw from this counter,
    /// so tokens never collide across sessions).
    pub fn next_token(&self) -> u64 {
        self.token_counter.fetch_add(1, Ordering::Relaxed)
    }

    /// Hit/miss counters of the cross-session result cache.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// The server-wide metrics registry. Covers the cache
    /// (`cache.hits/misses/invalidations`), lock table
    /// (`locks.grants/refusals/wait_ns`), WAL (`wal.appends/fsync_ns`),
    /// engine operator counters (`engine.*`), and query totals
    /// (`server.queries`, `server.dml_commits`); sessions additionally fold
    /// their network metering (`net.*`) into the same registry.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// Turn the operation journal on (DML commit log + lock events).
    pub fn enable_journal(&self) {
        self.journal.store(true, Ordering::Relaxed);
        self.locks.set_journal(true);
    }

    /// Drain the DML commit log (statements in exact commit order).
    pub fn take_dml_log(&self) -> Vec<String> {
        std::mem::take(&mut *lock_unpoisoned(&self.write_gate))
    }

    /// Drain the lock-event journal.
    pub fn take_lock_events(&self) -> Vec<LockEvent> {
        self.locks.take_events()
    }

    /// Names of views defined at the server.
    pub fn view_names(&self) -> HashSet<String> {
        self.db
            .snapshot()
            .catalog
            .view_names()
            .into_iter()
            .map(str::to_string)
            .collect()
    }

    // -- reads ------------------------------------------------------------

    /// Execute a read query through the cross-session result cache.
    ///
    /// The key is the canonical (parsed and re-printed) SQL plus the
    /// version of the snapshot the result was computed on; a hit requires
    /// the cached version to equal the *current* version, so results can
    /// never be stale.
    pub fn query_cached(&self, sql: &str) -> pdm_sql::Result<Arc<ResultSet>> {
        self.query_cached_obs(sql, &Recorder::disabled())
    }

    /// [`SharedServer::query_cached`] with span recording: the parse, the
    /// cache probe (detail `hit`/`miss`), and — on a miss — the engine's
    /// per-operator spans land in `obs`. With a disabled recorder this is
    /// byte-identical to the unprofiled path.
    pub fn query_cached_obs(&self, sql: &str, obs: &Recorder) -> pdm_sql::Result<Arc<ResultSet>> {
        self.query_cached_deadline_obs(sql, None, obs)
    }

    /// [`SharedServer::query_cached_obs`] with deadline-bounded
    /// single-flight: concurrent misses on the same canonical key wait for
    /// the first computation (up to `deadline`) and share its result
    /// instead of stampeding the engine. A waiter whose deadline runs out
    /// falls back to computing for itself — never worse than no
    /// single-flight. With no concurrency this path is identical to the
    /// pre-single-flight behaviour.
    pub fn query_cached_deadline_obs(
        &self,
        sql: &str,
        deadline: Option<Duration>,
        obs: &Recorder,
    ) -> pdm_sql::Result<Arc<ResultSet>> {
        let parse_span = obs.span(kinds::PARSE, "query");
        let query = pdm_sql::parser::parse_query(sql)?;
        drop(parse_span);
        let key = query.to_string();
        // lint:allow(wall-clock): the single-flight wait is real-OS
        // blocking, bounded on the OS clock like every condvar wait here.
        let started = Instant::now();
        self.m.queries.inc();
        let mut waited_sf = false;
        let mut leader = false;
        let snapshot = loop {
            let snapshot = self.db.snapshot();
            {
                // Scope the probe span so engine spans are siblings, not
                // children, of the probe.
                let probe = obs.span(kinds::CACHE_PROBE, "lookup");
                if let Some(entry) = lock_unpoisoned(&self.cache.map).get(&key) {
                    if entry.version == snapshot.version {
                        self.cache.hits.inc();
                        if waited_sf {
                            self.cache.singleflight_hits.inc();
                        }
                        probe.set_detail("hit");
                        return Ok(Arc::clone(&entry.result));
                    }
                }
                probe.set_detail("miss");
            }
            let mut infl = lock_unpoisoned(&self.cache.inflight);
            if !infl.contains(&key) {
                // Double-check the cache before claiming leadership: the
                // previous leader may have published and left between our
                // probe above and taking the in-flight lock. (Lock order
                // inflight→map is safe: no path holds map while taking
                // inflight.)
                if let Some(entry) = lock_unpoisoned(&self.cache.map).get(&key) {
                    if entry.version == snapshot.version {
                        self.cache.hits.inc();
                        if waited_sf {
                            self.cache.singleflight_hits.inc();
                        }
                        return Ok(Arc::clone(&entry.result));
                    }
                }
                infl.insert(key.clone());
                leader = true;
                self.cache.singleflight_leaders.inc();
                break snapshot;
            }
            // Another session is computing this key: wait for it, bounded
            // by our propagated deadline, then re-probe.
            let slice = match deadline {
                None => WAIT_SLICE,
                Some(d) => match d.checked_sub(started.elapsed()) {
                    // Deadline spent: stop waiting and compute for
                    // ourselves rather than returning empty-handed.
                    None => break snapshot,
                    Some(remaining) => remaining.min(WAIT_SLICE),
                },
            };
            waited_sf = true;
            let (g, _) = match self.cache.sf_cv.wait_timeout(infl, slice) {
                Ok(pair) => pair,
                Err(poisoned) => poisoned.into_inner(),
            };
            drop(g);
        };
        let computed = snapshot.query_ast_profiled(&query, obs);
        let (rows, stats) = match computed {
            Ok(v) => v,
            Err(e) => {
                self.finish_singleflight(&key, leader);
                return Err(e);
            }
        };
        let result = Arc::new(rows);
        self.m.fold_exec(&stats);
        self.cache.misses.inc();
        let mut map = lock_unpoisoned(&self.cache.map);
        if map.len() >= CACHE_CAPACITY {
            let current = snapshot.version;
            let before = map.len();
            map.retain(|_, e| e.version == current);
            self.cache.invalidations.add((before - map.len()) as u64);
            if map.len() >= CACHE_CAPACITY {
                self.cache.invalidations.add(map.len() as u64);
                map.clear();
            }
        }
        if let Some(old) = map.insert(
            key.clone(),
            CacheEntry {
                version: snapshot.version,
                result: Arc::clone(&result),
            },
        ) {
            if old.version != snapshot.version {
                self.cache.invalidations.inc();
            }
        }
        drop(map);
        self.finish_singleflight(&key, leader);
        Ok(result)
    }

    /// Release single-flight leadership of `key` (publishing already
    /// happened) and wake the waiters so they re-probe.
    fn finish_singleflight(&self, key: &str, leader: bool) {
        if !leader {
            return;
        }
        lock_unpoisoned(&self.cache.inflight).remove(key);
        self.cache.sf_cv.notify_all();
    }

    /// Execute a read query bypassing the cache (cold path; the cache
    /// differential tests compare against this).
    pub fn query_uncached(&self, sql: &str) -> pdm_sql::Result<ResultSet> {
        self.db.query(sql)
    }

    // -- writes -----------------------------------------------------------

    /// Execute any statement. Writes serialize on the commit gate so the
    /// DML journal order is exactly the storage commit order.
    pub fn execute(&self, sql: &str) -> pdm_sql::Result<ExecOutcome> {
        self.execute_obs(sql, &Recorder::disabled())
    }

    /// [`SharedServer::execute`] with span recording (parse + WAL commit).
    pub fn execute_obs(&self, sql: &str, obs: &Recorder) -> pdm_sql::Result<ExecOutcome> {
        let parse_span = obs.span(kinds::PARSE, "statement");
        let stmt = pdm_sql::parser::parse_statement(sql)?;
        drop(parse_span);
        self.execute_ast_obs(&stmt, obs)
    }

    /// Like [`SharedServer::execute`] for a parsed statement.
    ///
    /// With durability attached, the write path runs the WAL commit gate:
    /// the commit record is appended and fsynced after the statement is
    /// applied to the copied catalog but before the snapshot is published,
    /// so a state change is visible only once durable. The checkpoint
    /// cadence is also driven from here, inside the write gate, so a
    /// checkpoint can never interleave with a commit.
    pub fn execute_ast(&self, stmt: &Statement) -> pdm_sql::Result<ExecOutcome> {
        self.execute_ast_obs(stmt, &Recorder::disabled())
    }

    /// [`SharedServer::execute_ast`] with span recording: with durability
    /// attached, the WAL commit (append + fsync, inside the gate) gets a
    /// `wal.append` span and feeds the `wal.fsync_ns` histogram.
    pub fn execute_ast_obs(
        &self,
        stmt: &Statement,
        obs: &Recorder,
    ) -> pdm_sql::Result<ExecOutcome> {
        match self.execute_ast_deadline_obs(stmt, None, obs) {
            Ok(outcome) => Ok(outcome),
            Err(SharedServerError::Sql(e)) => Err(e),
            // Unreachable with deadline = None; mapped for totality.
            Err(other) => Err(pdm_sql::Error::Eval(other.to_string())),
        }
    }

    /// Deadline-aware write: parse-and-execute `sql`, abandoning the work
    /// at the commit gate if the caller's propagated `deadline` (measured
    /// from entry) is already spent — once before waiting on the gate, and
    /// once after acquiring it (before the WAL fsync), so a doomed commit
    /// never pays for an fsync whose result the client gave up on.
    pub fn execute_deadline_obs(
        &self,
        sql: &str,
        deadline: Option<Duration>,
        obs: &Recorder,
    ) -> Result<ExecOutcome, SharedServerError> {
        let parse_span = obs.span(kinds::PARSE, "statement");
        let stmt = pdm_sql::parser::parse_statement(sql).map_err(SharedServerError::Sql)?;
        drop(parse_span);
        self.execute_ast_deadline_obs(&stmt, deadline, obs)
    }

    /// [`SharedServer::execute_deadline_obs`] for a parsed statement.
    /// With `deadline = None` this is byte-identical to the pre-deadline
    /// write path.
    pub fn execute_ast_deadline_obs(
        &self,
        stmt: &Statement,
        deadline: Option<Duration>,
        obs: &Recorder,
    ) -> Result<ExecOutcome, SharedServerError> {
        if matches!(stmt, Statement::Query(_)) {
            let (outcome, _) = self.db.execute_ast(stmt)?;
            return Ok(outcome);
        }
        // lint:allow(wall-clock): gate/fsync deadline checks bound real-OS
        // blocking, measured on the OS clock (see acquire_in_flight).
        let started = Instant::now();
        self.check_deadline(deadline, started, "write_gate", obs)?;
        // lint:allow(lock-across-boundary): the write gate serializes DML
        // so the WAL fsync lands before the new version is published
        // (fsync-before-publish, DESIGN.md §9).
        let mut log = lock_unpoisoned(&self.write_gate);
        // The gate wait itself may have consumed the deadline: abandon
        // before the fsync, while nothing has been applied yet.
        self.check_deadline(deadline, started, "wal_commit", obs)?;
        let outcome = match &self.durability {
            None => self.db.execute_ast(stmt)?.0,
            Some(d) => {
                let sql = stmt.to_string();
                let (outcome, _) = self.db.execute_ast_gated(stmt, |version| {
                    self.wal_op(obs, "commit", || d.log_commit(version, &sql))
                })?;
                if d.checkpoint_due() {
                    d.checkpoint(&self.db.snapshot())?;
                }
                outcome
            }
        };
        self.m.dml_commits.inc();
        if self.journal.load(Ordering::Relaxed) {
            log.push(stmt.to_string());
        }
        Ok(outcome)
    }

    /// Run one durable-log operation under a `wal.append` span, feeding the
    /// WAL metrics. The store's `commit` is append + fsync under one lock,
    /// so a single span per record is the honest granularity.
    fn wal_op<T>(
        &self,
        obs: &Recorder,
        label: &str,
        f: impl FnOnce() -> pdm_sql::Result<T>,
    ) -> pdm_sql::Result<T> {
        let span = obs.span(kinds::WAL_APPEND, label);
        // lint:allow(wall-clock): wal.fsync_ns is an advisory wall-time
        // histogram (device cost), never part of the deterministic timeline.
        let t0 = Instant::now();
        let result = f();
        self.m
            .wal_fsync_ns
            .record(u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX));
        self.m.wal_appends.inc();
        drop(span);
        result
    }

    /// Deadline-propagation checkpoint: if the caller's remaining
    /// `deadline` (measured from `started`) is spent, record the abandon
    /// (`overload.deadline_abandons` + an `overload.abandon` span) and
    /// fail fast instead of doing the doomed work.
    fn check_deadline(
        &self,
        deadline: Option<Duration>,
        started: Instant,
        label: &str,
        obs: &Recorder,
    ) -> Result<(), SharedServerError> {
        let Some(d) = deadline else { return Ok(()) };
        let waited = started.elapsed();
        if waited < d {
            return Ok(());
        }
        self.m.deadline_abandons.inc();
        let span = obs.span(kinds::OVERLOAD_ABANDON, label.to_string());
        span.set_detail("deadline");
        drop(span);
        Err(SharedServerError::DeadlineExpired { waited })
    }

    // -- check-out / check-in --------------------------------------------

    /// Server-side check-out through the lock table (§6 function shipping
    /// with real concurrency semantics).
    ///
    /// 1. Run the (rule-modified) recursive retrieval on the current
    ///    snapshot and collect the subtree's object ids.
    /// 2. Acquire in-flight locks on all of them (plus the root). A
    ///    conflicting *in-flight* check-out makes us wait up to `deadline`
    ///    ([`SharedServerError::LockTimeout`] past it); a conflicting
    ///    *completed* check-out makes us refuse (∀rows semantics).
    /// 3. Re-verify the `checkedout` flags under the locks (covers flags
    ///    set by the classic UPDATE path, which bypasses the lock table).
    /// 4. Flip the flags, promote the locks to held, record the outcome
    ///    under the idempotency token.
    pub fn checkout_procedure_locked(
        &self,
        root: ObjectId,
        modified_sql: &str,
        token: u64,
        deadline: Option<Duration>,
    ) -> Result<CheckoutProcedureResult, SharedServerError> {
        self.checkout_procedure_locked_obs(
            root,
            modified_sql,
            token,
            deadline,
            &Recorder::disabled(),
        )
    }

    /// [`SharedServer::checkout_procedure_locked`] with span recording: the
    /// retrieval's engine spans, the lock-table wait (`locks.wait`, fed into
    /// the `locks.wait_ns` histogram even when it times out), and the
    /// durable grant/token WAL appends all land in `obs`.
    pub fn checkout_procedure_locked_obs(
        &self,
        root: ObjectId,
        modified_sql: &str,
        token: u64,
        deadline: Option<Duration>,
        obs: &Recorder,
    ) -> Result<CheckoutProcedureResult, SharedServerError> {
        // Claim the token, or adopt its outcome. A token executes AT MOST
        // ONCE: a concurrent call with the same token (an aggressive client
        // retry racing its own original) waits here for the recorded
        // outcome rather than running the procedure a second time.
        // lint:allow(wall-clock): real-OS condvar wait deadline (see
        // acquire_in_flight).
        let start = Instant::now();
        {
            let mut log = lock_unpoisoned(&self.checkout_log);
            loop {
                match log.get(&token) {
                    Some(Some(done)) => return Ok(done.clone()),
                    Some(None) => {
                        // Bounded slices even without a deadline, so a
                        // missed wakeup costs one slice, never a hang.
                        let slice = match deadline {
                            None => WAIT_SLICE,
                            Some(d) => {
                                let Some(remaining) = d.checked_sub(start.elapsed()) else {
                                    return Err(SharedServerError::LockTimeout {
                                        waited: start.elapsed(),
                                    });
                                };
                                remaining.min(WAIT_SLICE)
                            }
                        };
                        log = match self.checkout_cv.wait_timeout(log, slice) {
                            Ok((g, _)) => g,
                            Err(poisoned) => poisoned.into_inner().0,
                        };
                    }
                    None => {
                        log.insert(token, None);
                        break;
                    }
                }
            }
        }

        let mut result =
            self.checkout_procedure_inner(root, modified_sql, token, deadline, start, obs);
        // Make the outcome durable before recording it: a crash after this
        // point replays the token's recorded result instead of re-running
        // the procedure; a crash before it sweeps the grant, as if the
        // check-out never happened.
        if let (Ok(outcome), Some(d)) = (&result, &self.durability) {
            if let Err(e) = self.wal_op(obs, "token", || d.log_token(token, outcome.rows.as_ref()))
            {
                result = Err(SharedServerError::Sql(e));
            }
        }
        let mut log = lock_unpoisoned(&self.checkout_log);
        match &result {
            Ok(outcome) => {
                log.insert(token, Some(outcome.clone()));
            }
            // A failed call records nothing: the token stays replayable.
            Err(_) => {
                log.remove(&token);
            }
        }
        drop(log);
        self.checkout_cv.notify_all();
        result
    }

    /// The procedure body, entered by exactly one call per token. The
    /// deadline is measured from `start` (the moment the check-out call
    /// entered the server) and re-checked at every blocking point: the
    /// retrieval's single-flight wait, the lock queue, and again before
    /// the durable grant — doomed work is abandoned at the next blocking
    /// point, not completed uselessly.
    fn checkout_procedure_inner(
        &self,
        root: ObjectId,
        modified_sql: &str,
        token: u64,
        deadline: Option<Duration>,
        start: Instant,
        obs: &Recorder,
    ) -> Result<CheckoutProcedureResult, SharedServerError> {
        let remaining = |waited: Duration| match deadline {
            None => Ok(None),
            Some(d) => match d.checked_sub(waited) {
                Some(rem) if !rem.is_zero() => Ok(Some(rem)),
                _ => Err(SharedServerError::DeadlineExpired { waited }),
            },
        };
        let rows =
            (*self.query_cached_deadline_obs(modified_sql, remaining(start.elapsed())?, obs)?)
                .clone();
        let (assy_ids, comp_ids) = split_ids(&rows)?;
        let mut all_assy = assy_ids.clone();
        all_assy.push(root);

        let mut lock_ids: Vec<ObjectId> = Vec::with_capacity(all_assy.len() + comp_ids.len());
        lock_ids.extend(&all_assy);
        lock_ids.extend(&comp_ids);

        // lint:allow(wall-clock): locks.wait_ns is an advisory wall-time
        // histogram of real-OS condvar blocking.
        let waited = Instant::now();
        let wait_span = obs.span(kinds::LOCK_WAIT, format!("token{token}"));
        let acquired = self
            .locks
            .acquire_in_flight(&lock_ids, token, remaining(start.elapsed())?);
        self.m
            .lock_wait_ns
            .record(u64::try_from(waited.elapsed().as_nanos()).unwrap_or(u64::MAX));
        if let Ok(acq) = &acquired {
            wait_span.set_detail(match acq {
                Acquire::Granted => "granted",
                Acquire::Busy => "busy",
            });
        } else {
            wait_span.set_detail("timeout");
        }
        drop(wait_span);
        // The lock table only saw the deadline REMAINING after the earlier
        // procedure phases; account the whole procedure in the timeout so
        // the caller's reported wait covers its full deadline window.
        let acquired = acquired.map_err(|e| match e {
            SharedServerError::LockTimeout { .. } => SharedServerError::LockTimeout {
                waited: start.elapsed(),
            },
            other => other,
        });
        match acquired? {
            Acquire::Busy => {
                self.m.lock_refusals.inc();
                return Ok(CheckoutProcedureResult { rows: None });
            }
            Acquire::Granted => {}
        }

        // Flags may be set by the classic (non-lock-table) check-out path;
        // verify them under the in-flight locks.
        let busy =
            self.any_checked_out("assy", &all_assy)? || self.any_checked_out("comp", &comp_ids)?;
        if busy {
            self.locks.abort(&lock_ids, token);
            self.m.lock_refusals.inc();
            return Ok(CheckoutProcedureResult { rows: None });
        }

        // Deadline checkpoint: the retrieval and lock wait may have spent
        // the caller's budget. Abandon now — before the durable grant's
        // fsync and the flag UPDATEs — while backing out is still free.
        if let Err(e) = self.check_deadline(deadline, start, "checkout_grant", obs) {
            self.locks.abort(&lock_ids, token);
            return Err(e);
        }

        // Durable-grant protocol: log the grant BEFORE the flag UPDATEs.
        // Whatever happens next — crash between the two UPDATEs, crash
        // before either — recovery sees the grant and sweeps its ids back
        // to FALSE, so every crash position converges to "the check-out
        // never happened".
        if let Some(d) = &self.durability {
            if let Err(e) = self.wal_op(obs, "grant", || d.log_grant(token, &all_assy, &comp_ids)) {
                self.locks.abort(&lock_ids, token);
                return Err(SharedServerError::Sql(e));
            }
        }

        if let Err(e) = self
            .set_checked_out("assy", &all_assy, true, obs)
            .and_then(|_| self.set_checked_out("comp", &comp_ids, true, obs))
        {
            self.locks.abort(&lock_ids, token);
            if let Some(d) = &self.durability {
                // Best-effort: cancel the grant so it is not swept later;
                // if the device is already dead, recovery sweeps instead.
                let _ = d.log_release(&lock_ids);
            }
            return Err(e.into());
        }
        self.locks.promote(&lock_ids, token);
        self.m.lock_grants.inc();

        Ok(CheckoutProcedureResult { rows: Some(rows) })
    }

    /// Recovery hook: force `checkedout = FALSE` on the given ids (the
    /// union of all stale grants) and log the closing release. Runs through
    /// the normal durable write path so the sweep itself is replayable.
    pub(crate) fn sweep_stale_grants(
        &self,
        assy_ids: &[ObjectId],
        comp_ids: &[ObjectId],
    ) -> pdm_sql::Result<()> {
        let obs = Recorder::disabled();
        self.set_checked_out("assy", assy_ids, false, &obs)?;
        self.set_checked_out("comp", comp_ids, false, &obs)?;
        if assy_ids.is_empty() && comp_ids.is_empty() {
            return Ok(());
        }
        if let Some(d) = &self.durability {
            let mut all: Vec<ObjectId> = Vec::with_capacity(assy_ids.len() + comp_ids.len());
            all.extend(assy_ids);
            all.extend(comp_ids);
            d.log_release(&all)?;
        }
        Ok(())
    }

    /// Whether a check-out with this token has completed.
    pub fn checkout_recorded(&self, token: u64) -> bool {
        matches!(
            lock_unpoisoned(&self.checkout_log).get(&token),
            Some(Some(_))
        )
    }

    /// Server-side check-in: clear the flags and release the lock entries.
    pub fn checkin_procedure(
        &self,
        assy_ids: &[ObjectId],
        comp_ids: &[ObjectId],
    ) -> pdm_sql::Result<usize> {
        self.checkin_procedure_obs(assy_ids, comp_ids, &Recorder::disabled())
    }

    /// [`SharedServer::checkin_procedure`] with span recording.
    pub fn checkin_procedure_obs(
        &self,
        assy_ids: &[ObjectId],
        comp_ids: &[ObjectId],
        obs: &Recorder,
    ) -> pdm_sql::Result<usize> {
        let a = self.set_checked_out("assy", assy_ids, false, obs)?;
        let c = self.set_checked_out("comp", comp_ids, false, obs)?;
        let mut ids: Vec<ObjectId> = Vec::with_capacity(assy_ids.len() + comp_ids.len());
        ids.extend(assy_ids);
        ids.extend(comp_ids);
        self.locks.release(&ids);
        // The flag-clearing UPDATEs above are already durable; the release
        // record retires the grant so recovery stops sweeping these ids. A
        // crash between the two is safe: the sweep re-forces FALSE, a no-op.
        if let Some(d) = &self.durability {
            self.wal_op(obs, "release", || d.log_release(&ids))?;
        }
        Ok(a + c)
    }

    fn any_checked_out(&self, table: &str, ids: &[ObjectId]) -> pdm_sql::Result<bool> {
        if ids.is_empty() {
            return Ok(false);
        }
        let list = id_list(ids);
        let rs = self.db.query(&format!(
            "SELECT COUNT(*) AS n FROM {table} WHERE checkedout = TRUE AND obid IN ({list})"
        ))?;
        let row = rs
            .rows
            .first()
            .ok_or_else(|| pdm_sql::Error::Eval("COUNT(*) returned no row".into()))?;
        Ok(row.get(0) != &pdm_sql::Value::Int(0))
    }

    fn set_checked_out(
        &self,
        table: &str,
        ids: &[ObjectId],
        value: bool,
        obs: &Recorder,
    ) -> pdm_sql::Result<usize> {
        if ids.is_empty() {
            return Ok(0);
        }
        let list = id_list(ids);
        let flag = if value { "TRUE" } else { "FALSE" };
        match self.execute_obs(
            &format!("UPDATE {table} SET checkedout = {flag} WHERE obid IN ({list})"),
            obs,
        )? {
            ExecOutcome::Dml(pdm_sql::DmlOutcome::Updated(n)) => Ok(n),
            other => Err(pdm_sql::Error::Eval(format!(
                "UPDATE returned unexpected outcome {other:?}"
            ))),
        }
    }
}

// Sessions on many threads share one server.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SharedServer>();
    assert_send_sync::<LockTable>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use pdm_workload::{build_database, TreeSpec};

    fn server() -> Arc<SharedServer> {
        let (db, _) = build_database(&TreeSpec::new(2, 2, 1.0).with_node_size(128)).unwrap();
        Arc::new(SharedServer::new(db))
    }

    #[test]
    fn cache_hit_requires_same_version() {
        let s = server();
        let sql = "SELECT COUNT(*) AS n FROM assy";
        let a = s.query_cached(sql).unwrap();
        let b = s.query_cached(sql).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second lookup must hit");
        assert_eq!(s.cache_stats(), CacheStats { hits: 1, misses: 1 });

        // DML bumps the epoch: next lookup recomputes.
        s.execute("UPDATE assy SET checkedout = FALSE WHERE obid = 1")
            .unwrap();
        let c = s.query_cached(sql).unwrap();
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(s.cache_stats(), CacheStats { hits: 1, misses: 2 });
        assert_eq!(*c, s.query_uncached(sql).unwrap());
    }

    #[test]
    fn canonicalization_collapses_formatting() {
        let s = server();
        s.query_cached("SELECT obid FROM assy WHERE obid = 1")
            .unwrap();
        s.query_cached("select  obid\nfrom ASSY where obid=1")
            .unwrap();
        let stats = s.cache_stats();
        assert_eq!(stats.hits, 1, "differently formatted same query must hit");
    }

    #[test]
    fn lock_table_waits_and_times_out() {
        let t = LockTable::default();
        assert_eq!(
            t.acquire_in_flight(&[1, 2], 10, None).unwrap(),
            Acquire::Granted
        );
        // Another token waiting on an in-flight conflict times out.
        let err = t
            .acquire_in_flight(&[2, 3], 11, Some(Duration::from_millis(30)))
            .unwrap_err();
        assert!(matches!(err, SharedServerError::LockTimeout { .. }));
        // Re-entrant: same token sails through.
        assert_eq!(
            t.acquire_in_flight(&[1, 2], 10, None).unwrap(),
            Acquire::Granted
        );
        // Promote → competitor refuses instead of waiting.
        t.promote(&[1, 2], 10);
        assert_eq!(
            t.acquire_in_flight(&[2], 11, Some(Duration::from_millis(5)))
                .unwrap(),
            Acquire::Busy
        );
        assert_eq!(t.holder(2), Some(10));
        // Release → free again.
        t.release(&[1, 2]);
        assert_eq!(
            t.acquire_in_flight(&[2], 11, None).unwrap(),
            Acquire::Granted
        );
    }

    #[test]
    fn abort_frees_waiters() {
        let t = Arc::new(LockTable::default());
        assert_eq!(
            t.acquire_in_flight(&[7], 1, None).unwrap(),
            Acquire::Granted
        );
        let t2 = Arc::clone(&t);
        let waiter = std::thread::spawn(move || {
            t2.acquire_in_flight(&[7], 2, Some(Duration::from_secs(10)))
                .unwrap()
        });
        std::thread::sleep(Duration::from_millis(10));
        t.abort(&[7], 1);
        assert_eq!(waiter.join().unwrap(), Acquire::Granted);
    }

    #[test]
    fn checkout_serializes_and_checkin_releases() {
        let s = server();
        let sql = crate::query::recursive::mle_query(1).to_string();
        let t1 = s.next_token();
        let first = s.checkout_procedure_locked(1, &sql, t1, None).unwrap();
        assert!(first.rows.is_some());
        assert!(s.lock_table().holder(1).is_some());

        // Conflicting check-out refuses (completed holder).
        let t2 = s.next_token();
        let second = s.checkout_procedure_locked(1, &sql, t2, None).unwrap();
        assert!(second.rows.is_none());

        // Replay of the first token returns the recorded success.
        let replay = s.checkout_procedure_locked(1, &sql, t1, None).unwrap();
        assert!(replay.rows.is_some());

        // Check-in releases locks and flags; a new check-out succeeds.
        s.checkin_procedure(&[1, 2, 3], &[4, 5, 6, 7]).unwrap();
        assert!(s.lock_table().is_empty());
        let t3 = s.next_token();
        assert!(s
            .checkout_procedure_locked(1, &sql, t3, None)
            .unwrap()
            .rows
            .is_some());
    }
}
