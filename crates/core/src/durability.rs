//! Durability policy for the shared PDM server: what gets logged when, how
//! checkpoints are cut, and how a crashed server is rebuilt.
//!
//! The mechanism (simulated device, framing, checksums, checkpoint cell)
//! lives in `pdm-wal`; this module decides the protocol:
//!
//! * **DML commits** are logged through the commit gate of
//!   [`pdm_sql::SharedDatabase::execute_ast_gated`]: the record is appended
//!   and fsynced *after* the statement has been applied to the copied
//!   catalog but *before* the new snapshot is published. The WAL sync is
//!   the commit point — a state change is visible only if durable, and a
//!   crash between sync and publish costs nothing because replay
//!   re-executes the logged statement.
//! * **Check-out grants** are logged *before* the `checkedout` flag
//!   UPDATEs. A crash anywhere inside the procedure therefore leaves a
//!   durable grant record whose ids recovery sweeps back to `FALSE`; the
//!   sweep is idempotent (it forces flags that may never have been set), so
//!   every crash position inside the procedure converges to the same
//!   recovered state: the check-out never happened.
//! * **Token completions** are logged after the grant is promoted. On
//!   recovery a completed token's outcome is restored into the idempotency
//!   log without re-executing the procedure — a client replaying the token
//!   gets its recorded rows (or recorded refusal) exactly once.
//! * **Checkpoints** serialize the current snapshot plus the durability
//!   aux state (outstanding grants, completed token outcomes) and truncate
//!   the log. They are cut inside the write gate, so no DML commit can
//!   interleave; grant/token records racing the checkpoint are safe because
//!   the aux trackers are updated atomically with their log appends under
//!   the store lock, and the sweep is idempotent.
//!
//! The recovery invariant the crash harness asserts: for any crash point,
//! `recover` produces a state byte-identical to replaying the durable
//! commit-log prefix serially and sweeping the outstanding grants.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, Mutex, MutexGuard};

use pdm_sql::persist::{
    self, decode_snapshot, encode_snapshot, put_result_set, put_u32, put_u64, put_u8, Cursor,
};
use pdm_sql::shared::Snapshot;
use pdm_sql::ResultSet;
use pdm_wal::{CrashPlan, DeviceStats, DurableImage, DurableStore, LogDamage, WalError, WalRecord};

use crate::product::ObjectId;
use crate::repl::ReplicationFeed;

/// Tuning knobs for the durability layer.
#[derive(Debug, Clone, Copy)]
pub struct DurabilityConfig {
    /// Cut a checkpoint after this many logged DML commits. Small values
    /// bound recovery replay at the cost of frequent snapshot writes.
    pub checkpoint_interval: u64,
    /// Crash schedule for the simulated log device.
    pub crash_plan: CrashPlan,
}

impl Default for DurabilityConfig {
    fn default() -> Self {
        DurabilityConfig {
            checkpoint_interval: 64,
            crash_plan: CrashPlan::none(),
        }
    }
}

impl DurabilityConfig {
    pub fn with_interval(mut self, n: u64) -> Self {
        assert!(n > 0, "checkpoint interval must be positive");
        self.checkpoint_interval = n;
        self
    }

    pub fn with_crash_plan(mut self, plan: CrashPlan) -> Self {
        self.crash_plan = plan;
        self
    }
}

/// The ids covered by one outstanding check-out grant.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GrantIds {
    pub assy: Vec<ObjectId>,
    pub comp: Vec<ObjectId>,
}

impl GrantIds {
    pub(crate) fn is_empty(&self) -> bool {
        self.assy.is_empty() && self.comp.is_empty()
    }

    pub(crate) fn remove(&mut self, ids: &[ObjectId]) {
        self.assy.retain(|id| !ids.contains(id));
        self.comp.retain(|id| !ids.contains(id));
    }
}

#[derive(Debug)]
struct DurState {
    store: DurableStore,
    /// Outstanding grants (token → ids), mirrored into checkpoints so a
    /// truncated grant record is never forgotten. Updated atomically with
    /// the corresponding log append.
    grants: BTreeMap<u64, GrantIds>,
    /// Completed token outcomes (`None` = recorded refusal), mirrored into
    /// checkpoints for the same reason.
    tokens: BTreeMap<u64, Option<ResultSet>>,
    commits_since_checkpoint: u64,
    /// Replication tap: every durably committed record is republished here
    /// (same seq the store assigned) for shipping to replica sites. The
    /// feed retains records across checkpoint truncation — replicas replay
    /// the logical history, not the physical log.
    feed: Option<Arc<ReplicationFeed>>,
}

/// The durability attachment of a [`crate::SharedServer`].
#[derive(Debug)]
pub struct Durability {
    state: Mutex<DurState>,
    interval: u64,
}

fn wal_to_sql(e: WalError) -> pdm_sql::Error {
    pdm_sql::Error::Eval(format!("durability: {e}"))
}

fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl Durability {
    /// Fresh durability state over an empty store.
    pub fn new(cfg: &DurabilityConfig) -> Self {
        Durability {
            state: Mutex::new(DurState {
                store: DurableStore::new(cfg.crash_plan),
                grants: BTreeMap::new(),
                tokens: BTreeMap::new(),
                commits_since_checkpoint: 0,
                feed: None,
            }),
            interval: cfg.checkpoint_interval,
        }
    }

    pub(crate) fn from_parts(
        store: DurableStore,
        grants: BTreeMap<u64, GrantIds>,
        tokens: BTreeMap<u64, Option<ResultSet>>,
        interval: u64,
    ) -> Self {
        Durability {
            state: Mutex::new(DurState {
                store,
                grants,
                tokens,
                commits_since_checkpoint: 0,
                feed: None,
            }),
            interval,
        }
    }

    /// Attach a replication feed: every subsequent durable append is
    /// republished to it under the store-assigned sequence number, in
    /// commit order (the publish happens under the store lock).
    pub fn attach_feed(&self, feed: Arc<ReplicationFeed>) {
        lock_unpoisoned(&self.state).feed = Some(feed);
    }

    /// The commit gate body: append + fsync one DML commit record. Called
    /// with the version the statement will publish as.
    pub fn log_commit(&self, version: u64, sql: &str) -> pdm_sql::Result<()> {
        // lint:allow(lock-across-boundary): append+fsync under the store
        // lock IS the commit point; seq and in-memory state must advance
        // atomically (DESIGN.md §9).
        let mut st = lock_unpoisoned(&self.state);
        let record = WalRecord::DmlCommit {
            version,
            sql: sql.to_string(),
        };
        let seq = st.store.commit(&record).map_err(wal_to_sql)?;
        st.commits_since_checkpoint += 1;
        if let Some(feed) = &st.feed {
            feed.publish(seq, record);
        }
        Ok(())
    }

    /// Whether the checkpoint interval has elapsed. The caller (holding the
    /// write gate) follows up with [`Durability::checkpoint`].
    pub fn checkpoint_due(&self) -> bool {
        lock_unpoisoned(&self.state).commits_since_checkpoint >= self.interval
    }

    /// Log a check-out grant and track it for sweeping. Atomic with the
    /// tracker update, so a checkpoint can never see the record without the
    /// tracker entry or vice versa.
    pub fn log_grant(
        &self,
        token: u64,
        assy: &[ObjectId],
        comp: &[ObjectId],
    ) -> pdm_sql::Result<()> {
        // lint:allow(lock-across-boundary): grant durability and the
        // outstanding-grant table must move together — fsync under the
        // lock is the commit point.
        let mut st = lock_unpoisoned(&self.state);
        let record = WalRecord::CheckoutGrant {
            token,
            assy_ids: assy.to_vec(),
            comp_ids: comp.to_vec(),
        };
        let seq = st.store.commit(&record).map_err(wal_to_sql)?;
        st.grants.insert(
            token,
            GrantIds {
                assy: assy.to_vec(),
                comp: comp.to_vec(),
            },
        );
        if let Some(feed) = &st.feed {
            feed.publish(seq, record);
        }
        Ok(())
    }

    /// Log a release covering `ids` and drop them from outstanding grants.
    pub fn log_release(&self, ids: &[ObjectId]) -> pdm_sql::Result<()> {
        // lint:allow(lock-across-boundary): release durability and the
        // outstanding-grant table must move together — fsync under the
        // lock is the commit point.
        let mut st = lock_unpoisoned(&self.state);
        let record = WalRecord::CheckoutRelease { ids: ids.to_vec() };
        let seq = st.store.commit(&record).map_err(wal_to_sql)?;
        for grant in st.grants.values_mut() {
            grant.remove(ids);
        }
        st.grants.retain(|_, g| !g.is_empty());
        if let Some(feed) = &st.feed {
            feed.publish(seq, record);
        }
        Ok(())
    }

    /// Log a token completion and track its outcome for checkpointing.
    pub fn log_token(&self, token: u64, rows: Option<&ResultSet>) -> pdm_sql::Result<()> {
        // lint:allow(lock-across-boundary): token completion is logged and
        // tracked for checkpointing in one atomic step; fsync under the
        // lock is the commit point.
        let mut st = lock_unpoisoned(&self.state);
        let record = WalRecord::TokenComplete {
            token,
            rows: rows.cloned(),
        };
        let seq = st.store.commit(&record).map_err(wal_to_sql)?;
        st.tokens.insert(token, rows.cloned());
        if let Some(feed) = &st.feed {
            feed.publish(seq, record);
        }
        Ok(())
    }

    /// Cut a checkpoint of `snapshot` plus the aux trackers and truncate
    /// the log. Must be called from inside the write gate so no DML commit
    /// interleaves between the snapshot read and the install.
    pub fn checkpoint(&self, snapshot: &Snapshot) -> pdm_sql::Result<()> {
        let mut st = lock_unpoisoned(&self.state);
        let payload = encode_checkpoint(snapshot, &st.grants, &st.tokens);
        st.store.install_checkpoint(&payload).map_err(wal_to_sql)?;
        st.commits_since_checkpoint = 0;
        Ok(())
    }

    /// The bytes that would survive if the process died right now.
    pub fn image(&self) -> DurableImage {
        lock_unpoisoned(&self.state).store.image()
    }

    /// Kill the device at the current boundary (harness hook).
    pub fn crash_now(&self) {
        lock_unpoisoned(&self.state).store.crash_now();
    }

    pub fn is_crashed(&self) -> bool {
        lock_unpoisoned(&self.state).store.is_crashed()
    }

    /// Outstanding (unreleased) grants, for diagnostics and tests.
    pub fn outstanding_grants(&self) -> BTreeMap<u64, GrantIds> {
        lock_unpoisoned(&self.state).grants.clone()
    }

    /// Completed token outcomes (replication bootstrap carries these so a
    /// re-seeded site replays idempotent check-outs correctly).
    pub(crate) fn completed_tokens(&self) -> BTreeMap<u64, Option<ResultSet>> {
        lock_unpoisoned(&self.state).tokens.clone()
    }

    /// Current log size in bytes (excludes the checkpoint cell).
    pub fn log_len(&self) -> usize {
        lock_unpoisoned(&self.state).store.log_len()
    }

    /// Current checkpoint cell size in bytes.
    pub fn checkpoint_len(&self) -> usize {
        lock_unpoisoned(&self.state).store.checkpoint_len()
    }

    pub fn device_stats(&self) -> DeviceStats {
        lock_unpoisoned(&self.state).store.device_stats()
    }
}

// ---------------------------------------------------------------------------
// Checkpoint payload codec
// ---------------------------------------------------------------------------

fn put_ids(out: &mut Vec<u8>, ids: &[ObjectId]) {
    put_u32(out, ids.len() as u32);
    for &id in ids {
        persist::put_i64(out, id);
    }
}

fn read_ids(cur: &mut Cursor<'_>, what: &str) -> pdm_sql::Result<Vec<ObjectId>> {
    let n = cur.u32(what)? as usize;
    let mut ids = Vec::with_capacity(n);
    for _ in 0..n {
        ids.push(cur.i64(what)?);
    }
    Ok(ids)
}

fn encode_checkpoint(
    snapshot: &Snapshot,
    grants: &BTreeMap<u64, GrantIds>,
    tokens: &BTreeMap<u64, Option<ResultSet>>,
) -> Vec<u8> {
    let mut out = Vec::new();
    let snap = encode_snapshot(snapshot);
    put_u32(&mut out, snap.len() as u32);
    out.extend_from_slice(&snap);
    put_u32(&mut out, grants.len() as u32);
    for (token, g) in grants {
        put_u64(&mut out, *token);
        put_ids(&mut out, &g.assy);
        put_ids(&mut out, &g.comp);
    }
    put_u32(&mut out, tokens.len() as u32);
    for (token, rows) in tokens {
        put_u64(&mut out, *token);
        match rows {
            None => put_u8(&mut out, 0),
            Some(rs) => {
                put_u8(&mut out, 1);
                put_result_set(&mut out, rs);
            }
        }
    }
    out
}

type CheckpointParts = (
    Snapshot,
    BTreeMap<u64, GrantIds>,
    BTreeMap<u64, Option<ResultSet>>,
);

fn decode_checkpoint(payload: &[u8]) -> pdm_sql::Result<CheckpointParts> {
    let mut cur = Cursor::new(payload);
    let snap_len = cur.u32("checkpoint snapshot length")? as usize;
    let snap_bytes = cur.take(snap_len, "checkpoint snapshot")?;
    let snapshot = decode_snapshot(snap_bytes)?;
    let n_grants = cur.u32("checkpoint grant count")? as usize;
    let mut grants = BTreeMap::new();
    for _ in 0..n_grants {
        let token = cur.u64("grant token")?;
        let assy = read_ids(&mut cur, "grant assy ids")?;
        let comp = read_ids(&mut cur, "grant comp ids")?;
        grants.insert(token, GrantIds { assy, comp });
    }
    let n_tokens = cur.u32("checkpoint token count")? as usize;
    let mut tokens = BTreeMap::new();
    for _ in 0..n_tokens {
        let token = cur.u64("token id")?;
        let rows = match cur.u8("token outcome tag")? {
            0 => None,
            1 => Some(persist::read_result_set(&mut cur)?),
            other => {
                return Err(pdm_sql::Error::Persist(format!(
                    "invalid token outcome tag {other} at offset {}",
                    cur.offset()
                )))
            }
        };
        tokens.insert(token, rows);
    }
    if !cur.is_empty() {
        return Err(pdm_sql::Error::Persist(format!(
            "{} trailing bytes after checkpoint",
            cur.remaining()
        )));
    }
    Ok((snapshot, grants, tokens))
}

// ---------------------------------------------------------------------------
// Recovery
// ---------------------------------------------------------------------------

/// Why recovery could not rebuild a server from a surviving image. Unlike
/// tail damage in the log (a normal crash artifact, truncated and
/// reported), these are fatal: the durable state is self-inconsistent.
#[derive(Debug)]
pub enum RecoveryError {
    /// The checkpoint blob failed its checksum — with the byte offset and
    /// the expected vs found CRC for the diagnostic.
    CorruptCheckpoint {
        offset: usize,
        expected: u32,
        found: u32,
    },
    /// The checkpoint was structurally damaged or undecodable.
    CheckpointDecode { detail: String },
    /// No checkpoint survived; a durable store always writes one at attach,
    /// so its absence means the image is not one of ours.
    MissingCheckpoint,
    /// A checksum-valid record failed logical decoding.
    CorruptRecord { detail: String },
    /// A replayed commit produced a different storage version than the one
    /// it logged — the log is not the history of this checkpoint.
    VersionChain {
        seq: u64,
        logged: u64,
        produced: u64,
        sql: String,
    },
    /// A logged statement failed to re-execute.
    Replay {
        seq: u64,
        sql: String,
        error: pdm_sql::Error,
    },
    /// Lower-level WAL failure (non-monotonic sequences, crashed device).
    Wal(WalError),
}

impl fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryError::CorruptCheckpoint {
                offset,
                expected,
                found,
            } => write!(
                f,
                "corrupt checkpoint at offset {offset}: expected crc {expected:#010x}, found {found:#010x}"
            ),
            RecoveryError::CheckpointDecode { detail } => {
                write!(f, "checkpoint decode failed: {detail}")
            }
            RecoveryError::MissingCheckpoint => write!(f, "no checkpoint in durable image"),
            RecoveryError::CorruptRecord { detail } => write!(f, "corrupt record: {detail}"),
            RecoveryError::VersionChain {
                seq,
                logged,
                produced,
                sql,
            } => write!(
                f,
                "version chain broken at seq {seq}: logged v{logged}, replay produced v{produced} ({sql})"
            ),
            RecoveryError::Replay { seq, sql, error } => {
                write!(f, "replay failed at seq {seq} ({sql}): {error}")
            }
            RecoveryError::Wal(e) => write!(f, "wal error: {e}"),
        }
    }
}

impl std::error::Error for RecoveryError {}

impl From<WalError> for RecoveryError {
    fn from(e: WalError) -> Self {
        match e {
            WalError::Damage(LogDamage::ChecksumMismatch {
                offset,
                expected,
                found,
            }) => RecoveryError::CorruptCheckpoint {
                offset,
                expected,
                found,
            },
            WalError::Damage(d) => RecoveryError::CheckpointDecode {
                detail: d.to_string(),
            },
            WalError::Decode { offset, detail } => RecoveryError::CorruptRecord {
                detail: format!("at offset {offset}: {detail}"),
            },
            WalError::DeviceCrashed => RecoveryError::Wal(e),
        }
    }
}

/// What recovery did, for logs, tests, and the chaos bench.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Storage version of the loaded checkpoint.
    pub checkpoint_version: u64,
    /// DML commits replayed from the log suffix.
    pub replayed_commits: u64,
    /// Completed token outcomes restored into the idempotency log.
    pub restored_tokens: usize,
    /// Tokens whose grants were outstanding at the crash and were swept.
    pub swept_tokens: Vec<u64>,
    /// Assembly / component ids the sweep reset to `checkedout = FALSE`.
    pub swept_assy: Vec<ObjectId>,
    pub swept_comp: Vec<ObjectId>,
    /// Tail damage truncated from the log, if any (normal after a crash
    /// mid-append; rendered for the report).
    pub tail_damage: Option<String>,
}

/// Rebuild a server from a surviving image. See the module docs for the
/// invariants; the crash harness in `tests/crash_recovery.rs` checks them
/// across hundreds of seeded crash points.
pub fn recover_server(
    image: DurableImage,
    cfg: &DurabilityConfig,
) -> Result<(crate::SharedServer, RecoveryReport), RecoveryError> {
    let (store, recovered) = DurableStore::from_image(image, cfg.crash_plan)?;

    let (_cp_seq, cp_payload) = recovered
        .checkpoint
        .ok_or(RecoveryError::MissingCheckpoint)?;
    let (mut snapshot, mut grants, mut tokens) =
        decode_checkpoint(&cp_payload).map_err(|e| RecoveryError::CheckpointDecode {
            detail: e.to_string(),
        })?;

    // The snapshot comes back with builtin functions only; restore the PDM
    // stored functions before any replayed SQL can call them.
    crate::functions::register_into(&mut snapshot.catalog.functions);

    let mut report = RecoveryReport {
        checkpoint_version: snapshot.version,
        tail_damage: recovered.damage.map(|d| d.to_string()),
        ..RecoveryReport::default()
    };

    let db = pdm_sql::SharedDatabase::from_snapshot(snapshot);

    // Replay the log suffix in sequence order.
    for (seq, record) in recovered.records {
        match record {
            WalRecord::DmlCommit { version, sql } => {
                let stmt = pdm_sql::parser::parse_statement(&sql).map_err(|error| {
                    RecoveryError::Replay {
                        seq,
                        sql: sql.clone(),
                        error,
                    }
                })?;
                let (_, produced) =
                    db.execute_ast(&stmt)
                        .map_err(|error| RecoveryError::Replay {
                            seq,
                            sql: sql.clone(),
                            error,
                        })?;
                if produced != version {
                    return Err(RecoveryError::VersionChain {
                        seq,
                        logged: version,
                        produced,
                        sql,
                    });
                }
                report.replayed_commits += 1;
            }
            WalRecord::CheckoutGrant {
                token,
                assy_ids,
                comp_ids,
            } => {
                grants.insert(
                    token,
                    GrantIds {
                        assy: assy_ids,
                        comp: comp_ids,
                    },
                );
            }
            WalRecord::CheckoutRelease { ids } => {
                for grant in grants.values_mut() {
                    grant.remove(&ids);
                }
                grants.retain(|_, g| !g.is_empty());
            }
            WalRecord::TokenComplete { token, rows } => {
                tokens.insert(token, rows);
            }
        }
    }

    // Every session died with the process, so no grant survives recovery:
    // sweep the outstanding ones back to FALSE (deterministically — sorted
    // unions — so the harness can reproduce the exact recovered bytes).
    let mut sweep_assy: Vec<ObjectId> = Vec::new();
    let mut sweep_comp: Vec<ObjectId> = Vec::new();
    for (token, g) in &grants {
        report.swept_tokens.push(*token);
        sweep_assy.extend(&g.assy);
        sweep_comp.extend(&g.comp);
    }
    sweep_assy.sort_unstable();
    sweep_assy.dedup();
    sweep_comp.sort_unstable();
    sweep_comp.dedup();

    let next_token = tokens
        .keys()
        .chain(grants.keys())
        .max()
        .map(|t| t.saturating_add(1))
        .unwrap_or(1)
        .max(1);
    report.restored_tokens = tokens.len();

    let durability = Durability::from_parts(store, grants, tokens.clone(), cfg.checkpoint_interval);
    let server = crate::SharedServer::assemble(db, Some(durability), tokens, next_token);

    // The sweep runs through the normal durable write path, so the reset
    // UPDATEs are themselves logged and a re-crash during recovery replays
    // them; the closing release record clears the grant trackers.
    server
        .sweep_stale_grants(&sweep_assy, &sweep_comp)
        .map_err(|error| RecoveryError::Replay {
            seq: 0,
            sql: "recovery sweep".into(),
            error,
        })?;
    report.swept_assy = sweep_assy;
    report.swept_comp = sweep_comp;

    Ok((server, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdm_sql::Database;

    fn snap() -> Snapshot {
        let mut db = Database::new();
        db.execute("CREATE TABLE assy (obid INTEGER NOT NULL, checkedout BOOLEAN)")
            .unwrap();
        db.execute("INSERT INTO assy VALUES (1, FALSE), (2, TRUE)")
            .unwrap();
        Snapshot {
            catalog: db.catalog,
            config: db.config,
            version: 3,
        }
    }

    #[test]
    fn checkpoint_payload_round_trip() {
        let mut grants = BTreeMap::new();
        grants.insert(
            7,
            GrantIds {
                assy: vec![1, 2],
                comp: vec![10],
            },
        );
        let mut tokens = BTreeMap::new();
        tokens.insert(7u64, None);
        let payload = encode_checkpoint(&snap(), &grants, &tokens);
        let (s, g, t) = decode_checkpoint(&payload).unwrap();
        assert_eq!(s.version, 3);
        assert_eq!(g, grants);
        assert_eq!(t.len(), 1);
        assert!(t[&7].is_none());
    }

    #[test]
    fn checkpoint_decode_rejects_truncation() {
        let payload = encode_checkpoint(&snap(), &BTreeMap::new(), &BTreeMap::new());
        assert!(decode_checkpoint(&payload[..payload.len() - 1]).is_err());
    }

    #[test]
    fn release_trims_grants() {
        let d = Durability::new(&DurabilityConfig::default());
        d.log_grant(1, &[1, 2], &[10, 11]).unwrap();
        d.log_grant(2, &[3], &[]).unwrap();
        d.log_release(&[1, 2, 10]).unwrap();
        let g = d.outstanding_grants();
        assert_eq!(g.len(), 2);
        assert_eq!(g[&1].comp, vec![11]);
        d.log_release(&[11]).unwrap();
        assert_eq!(d.outstanding_grants().len(), 1);
    }
}
