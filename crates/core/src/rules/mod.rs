//! Rules: the paper's 4-tuples (user, action, object type, condition).
//!
//! §3.1: "A user is permitted to perform an action on an instance of an
//! object type, if the condition is met." The system is negative-biased —
//! rules only *permit* (footnote 6) — so an object is accessible when at
//! least one relevant rule's condition holds; relevant rules are OR-ed
//! (§5.5 steps 2/5/9/13).

pub mod classify;
pub mod condition;
pub mod table;
pub mod translate;

use condition::Condition;

/// SQL LIKE semantics shared with the server (`%` any sequence, `_` one
/// character) — client-side late evaluation must match the engine exactly.
pub use pdm_sql::exec::expr::like_match;

/// Who a rule applies to: a specific user or everyone (`*` in the paper's
/// examples).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UserPattern {
    Any,
    Named(String),
}

impl UserPattern {
    pub fn matches(&self, user: &str) -> bool {
        match self {
            UserPattern::Any => true,
            UserPattern::Named(n) => n == user,
        }
    }
}

/// PDM actions rules can govern. `Access` covers plain traversal/read of an
/// object or relation (the action structure options and effectivities are
/// formulated with, §3.1 example 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ActionKind {
    Access,
    Query,
    Expand,
    MultiLevelExpand,
    CheckOut,
    CheckIn,
}

impl ActionKind {
    /// Rules governing `Access` apply to every retrieving action — the
    /// §5.5 step-11 lookup fetches row conditions "according to the current
    /// user, referring to any object type t occurring in the query, and
    /// action = access".
    pub fn implied_by(&self, rule_action: ActionKind) -> bool {
        rule_action == *self || rule_action == ActionKind::Access
    }
}

/// One access rule: the paper's 4-tuple, plus the SQL translation that is
/// produced once at definition time and stored alongside (§5.5: "Translated
/// conditions are stored — together with the four components defining the
/// rule — in an appropriate data structure ... at each client").
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    pub user: UserPattern,
    pub action: ActionKind,
    /// The object type the rule guards — a *table name* in the flattened
    /// representation ("assy", "comp", "link"), since that is what the
    /// query modificator matches FROM clauses against.
    pub object_type: String,
    pub condition: Condition,
    /// SQL text of the translated condition (cached at definition time;
    /// regenerated via [`translate`] when the rule is built).
    pub translated_sql: String,
}

impl Rule {
    /// Build a rule, translating its condition to SQL immediately.
    pub fn new(
        user: UserPattern,
        action: ActionKind,
        object_type: impl Into<String>,
        condition: Condition,
    ) -> Self {
        let object_type = object_type.into().to_ascii_lowercase();
        let translated_sql = translate::condition_to_sql_text(&condition, &object_type);
        Rule {
            user,
            action,
            object_type,
            condition,
            translated_sql,
        }
    }

    /// Convenience: a rule for every user.
    pub fn for_all_users(
        action: ActionKind,
        object_type: impl Into<String>,
        condition: Condition,
    ) -> Self {
        Rule::new(UserPattern::Any, action, object_type, condition)
    }
}

#[cfg(test)]
mod tests {
    use super::condition::{CmpOp, Condition, RowPredicate};
    use super::*;

    #[test]
    fn user_pattern_matching() {
        assert!(UserPattern::Any.matches("scott"));
        assert!(UserPattern::Named("scott".into()).matches("scott"));
        assert!(!UserPattern::Named("scott".into()).matches("tiger"));
    }

    #[test]
    fn access_implies_all_retrievals() {
        assert!(ActionKind::MultiLevelExpand.implied_by(ActionKind::Access));
        assert!(ActionKind::Query.implied_by(ActionKind::Access));
        assert!(ActionKind::CheckOut.implied_by(ActionKind::CheckOut));
        assert!(!ActionKind::CheckOut.implied_by(ActionKind::Query));
    }

    #[test]
    fn rule_translates_at_definition_time() {
        // The paper's example 1: Scott may multi-level-expand assemblies
        // that are not bought from a supplier.
        let rule = Rule::new(
            UserPattern::Named("scott".into()),
            ActionKind::MultiLevelExpand,
            "assy",
            Condition::Row(RowPredicate::compare("make_or_buy", CmpOp::NotEq, "buy")),
        );
        assert_eq!(rule.translated_sql, "assy.make_or_buy <> 'buy'");
    }

    #[test]
    fn object_type_lowercased() {
        let rule = Rule::for_all_users(
            ActionKind::Access,
            "ASSY",
            Condition::Row(RowPredicate::compare("dec", CmpOp::Eq, "+")),
        );
        assert_eq!(rule.object_type, "assy");
    }
}
