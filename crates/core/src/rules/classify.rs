//! Figure 1: the condition classification tree. The query modificator
//! dispatches on these classes — each class is injected into a different
//! part of a recursive query (§5.5 steps A–D).

use super::condition::Condition;

/// Leaf classes of Figure 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConditionClass {
    /// Involves only one object (typically evaluable in a plain WHERE).
    Row,
    /// Tree condition: all nodes must satisfy a row condition.
    ForAllRows,
    /// Tree condition: tested objects must have a related object.
    ExistsStructure,
    /// Tree condition: an aggregate over the tree is constrained.
    TreeAggregate,
}

impl ConditionClass {
    /// Tree conditions involve the whole object tree (the inner split of
    /// Figure 1).
    pub fn is_tree_condition(&self) -> bool {
        !matches!(self, ConditionClass::Row)
    }
}

/// Classify a condition per Figure 1.
pub fn classify(condition: &Condition) -> ConditionClass {
    match condition {
        Condition::Row(_) => ConditionClass::Row,
        Condition::ForAllRows { .. } => ConditionClass::ForAllRows,
        Condition::ExistsStructure { .. } => ConditionClass::ExistsStructure,
        Condition::TreeAggregate { .. } => ConditionClass::TreeAggregate,
    }
}

#[cfg(test)]
mod tests {
    use super::super::condition::{AggFunc, CmpOp, Condition, RowPredicate};
    use super::*;

    #[test]
    fn classification_matches_figure1() {
        let row = Condition::Row(RowPredicate::compare("x", CmpOp::Eq, 1i64));
        assert_eq!(classify(&row), ConditionClass::Row);
        assert!(!classify(&row).is_tree_condition());

        let forall = Condition::ForAllRows {
            object_type: Some("assy".into()),
            predicate: RowPredicate::compare("dec", CmpOp::Eq, "+"),
        };
        assert_eq!(classify(&forall), ConditionClass::ForAllRows);
        assert!(classify(&forall).is_tree_condition());

        let exists = Condition::ExistsStructure {
            object_table: "comp".into(),
            relation_table: "specified_by".into(),
            related_table: "spec".into(),
        };
        assert_eq!(classify(&exists), ConditionClass::ExistsStructure);

        let agg = Condition::TreeAggregate {
            func: AggFunc::Count,
            attr: None,
            object_type: Some("assy".into()),
            op: CmpOp::LtEq,
            value: 10.0,
        };
        assert_eq!(classify(&agg), ConditionClass::TreeAggregate);
    }
}
