//! Condition → SQL translation (§4.1 for row conditions, §5.3 for the three
//! tree-condition classes).
//!
//! Translation happens once when a rule is defined (the paper stores the
//! translated representation in the client-side rule table); the query
//! modificator re-instantiates the tree-condition templates against the
//! actual recursion CTE name at query-build time.

use pdm_sql::ast::{
    BinOp, Expr, Join, JoinKind, Query, Select, SelectItem, TableFactor, TableWithJoins,
};
use pdm_sql::Value;

use super::condition::{AggFunc, CmpOp, Condition, FnArg, RowPredicate};

/// Canonical CTE name used when rendering a tree condition at rule
/// definition time (before the target query exists).
pub const CANONICAL_CTE: &str = "rtbl";

/// Column holding the type discriminator in homogenized results.
pub const TYPE_COLUMN: &str = "type";

impl From<CmpOp> for BinOp {
    fn from(op: CmpOp) -> BinOp {
        match op {
            CmpOp::Eq => BinOp::Eq,
            CmpOp::NotEq => BinOp::NotEq,
            CmpOp::Lt => BinOp::Lt,
            CmpOp::LtEq => BinOp::LtEq,
            CmpOp::Gt => BinOp::Gt,
            CmpOp::GtEq => BinOp::GtEq,
        }
    }
}

/// Translate a row predicate into an SQL expression with columns qualified
/// by `qualifier` (the table or alias the predicate will be evaluated
/// against). Stored functions become function calls compared to TRUE so
/// they are valid WHERE predicates.
pub fn row_predicate_expr(pred: &RowPredicate, qualifier: &str) -> Expr {
    match pred {
        RowPredicate::Compare { attr, op, value } => Expr::binary(
            Expr::qcol(qualifier, attr.clone()),
            (*op).into(),
            Expr::Literal(value.clone()),
        ),
        RowPredicate::CompareAttrs { left, op, right } => Expr::binary(
            Expr::qcol(qualifier, left.clone()),
            (*op).into(),
            Expr::qcol(qualifier, right.clone()),
        ),
        RowPredicate::StoredFn { name, args } => {
            let args = args
                .iter()
                .map(|a| match a {
                    FnArg::Attr(attr) => Expr::qcol(qualifier, attr.clone()),
                    FnArg::Const(v) => Expr::Literal(v.clone()),
                })
                .collect();
            Expr::binary(
                Expr::Function {
                    name: name.clone(),
                    args,
                    star: false,
                },
                BinOp::Eq,
                Expr::Literal(Value::Bool(true)),
            )
        }
        RowPredicate::Like {
            attr,
            pattern,
            negated,
        } => Expr::Like {
            expr: Box::new(Expr::qcol(qualifier, attr.clone())),
            pattern: Box::new(Expr::Literal(Value::Text(pattern.clone()))),
            negated: *negated,
        },
        RowPredicate::And(a, b) => Expr::and(
            row_predicate_expr(a, qualifier),
            row_predicate_expr(b, qualifier),
        ),
        RowPredicate::Or(a, b) => Expr::or(
            row_predicate_expr(a, qualifier),
            row_predicate_expr(b, qualifier),
        ),
        RowPredicate::Not(p) => Expr::Not(Box::new(row_predicate_expr(p, qualifier))),
    }
}

/// §5.3.1: the all-or-nothing translation of a ∀rows condition —
/// `NOT EXISTS (SELECT * FROM <cte> WHERE type = 'T' AND NOT pred)`.
pub fn forall_rows_expr(cte: &str, object_type: Option<&str>, pred: &RowPredicate) -> Expr {
    let mut inner = Select::new();
    inner.projection.push(SelectItem::Wildcard);
    inner.from.push(TableWithJoins::table(cte));
    if let Some(t) = object_type {
        inner.and_where(Expr::eq(Expr::col(TYPE_COLUMN), Expr::lit(t)));
    }
    inner.and_where(Expr::Not(Box::new(row_predicate_expr(pred, cte))));
    // Built as NOT(EXISTS ..) rather than EXISTS{negated} because that is
    // the shape the parser produces for `NOT EXISTS` — generated ASTs must
    // round-trip through print→parse unchanged.
    Expr::Not(Box::new(Expr::Exists {
        query: Box::new(Query::select(inner)),
        negated: false,
    }))
}

/// §5.3.2: the ∃structure translation —
/// `EXISTS (SELECT * FROM rel AS s JOIN U ON s.right = U.obid WHERE s.left
/// = O.obid)`. `object_qualifier` is the binding of the tested object O in
/// the SELECT block the predicate is injected into.
pub fn exists_structure_expr(
    object_qualifier: &str,
    relation_table: &str,
    related_table: &str,
) -> Expr {
    let mut inner = Select::new();
    inner.projection.push(SelectItem::Wildcard);
    let mut twj = TableWithJoins {
        base: TableFactor::Table {
            name: relation_table.to_string(),
            alias: Some("s".to_string()),
        },
        joins: Vec::new(),
    };
    twj.joins.push(Join {
        kind: JoinKind::Inner,
        factor: TableFactor::Table {
            name: related_table.to_string(),
            alias: None,
        },
        on: Some(Expr::eq(
            Expr::qcol("s", "right"),
            Expr::qcol(related_table, "obid"),
        )),
    });
    inner.from.push(twj);
    inner.and_where(Expr::eq(
        Expr::qcol("s", "left"),
        Expr::qcol(object_qualifier, "obid"),
    ));
    Expr::Exists {
        query: Box::new(Query::select(inner)),
        negated: false,
    }
}

/// §5.3.3: the tree-aggregate translation —
/// `(SELECT AGG(attr) FROM <cte> [WHERE type = 'T']) op value`.
pub fn tree_aggregate_expr(
    cte: &str,
    func: AggFunc,
    attr: Option<&str>,
    object_type: Option<&str>,
    op: CmpOp,
    value: f64,
) -> Expr {
    let mut inner = Select::new();
    let agg = match attr {
        None => Expr::Function {
            name: func.sql_name().to_string(),
            args: vec![],
            star: true,
        },
        Some(a) => Expr::Function {
            name: func.sql_name().to_string(),
            args: vec![Expr::col(a)],
            star: false,
        },
    };
    inner.projection.push(SelectItem::expr(agg));
    inner.from.push(TableWithJoins::table(cte));
    if let Some(t) = object_type {
        inner.and_where(Expr::eq(Expr::col(TYPE_COLUMN), Expr::lit(t)));
    }
    // Integral bounds render as integers ("<= 10", not "<= 10.0"), matching
    // COUNT comparisons in the paper.
    let bound = if value.fract() == 0.0 && value.abs() < i64::MAX as f64 {
        Expr::lit(value as i64)
    } else {
        Expr::lit(value)
    };
    Expr::binary(
        Expr::ScalarSubquery(Box::new(Query::select(inner))),
        op.into(),
        bound,
    )
}

/// Translate a condition against the canonical CTE name, producing the SQL
/// text stored in the rule table at definition time.
pub fn condition_to_sql_text(condition: &Condition, object_type: &str) -> String {
    condition_expr(condition, object_type, CANONICAL_CTE).to_string()
}

/// Translate a condition to an expression, with `qualifier` the binding of
/// the rule's object type and `cte` the recursion table name.
pub fn condition_expr(condition: &Condition, qualifier: &str, cte: &str) -> Expr {
    match condition {
        Condition::Row(pred) => row_predicate_expr(pred, qualifier),
        Condition::ForAllRows {
            object_type,
            predicate,
        } => forall_rows_expr(cte, object_type.as_deref(), predicate),
        Condition::ExistsStructure {
            object_table,
            relation_table,
            related_table,
        } => {
            // At definition time the tested object is qualified by its own
            // table name; the modificator re-qualifies when injecting.
            let q = if qualifier.is_empty() {
                object_table
            } else {
                qualifier
            };
            exists_structure_expr(q, relation_table, related_table)
        }
        Condition::TreeAggregate {
            func,
            attr,
            object_type,
            op,
            value,
        } => tree_aggregate_expr(
            cte,
            *func,
            attr.as_deref(),
            object_type.as_deref(),
            *op,
            *value,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdm_sql::parser::parse_expr;

    #[test]
    fn row_condition_like_paper_example_1() {
        let pred = RowPredicate::compare("make_or_buy", CmpOp::NotEq, "buy");
        let e = row_predicate_expr(&pred, "assembly");
        assert_eq!(e.to_string(), "assembly.make_or_buy <> 'buy'");
    }

    #[test]
    fn forall_rows_matches_paper_shape() {
        // §5.3.1: all assemblies decomposable.
        let pred = RowPredicate::compare("dec", CmpOp::Eq, "+");
        let e = forall_rows_expr("rtbl", Some("assy"), &pred);
        assert_eq!(
            e.to_string(),
            "NOT EXISTS (SELECT * FROM rtbl WHERE type = 'assy' AND NOT rtbl.dec = '+')"
        );
        // and it parses back
        parse_expr(&e.to_string()).unwrap();
    }

    #[test]
    fn exists_structure_matches_paper_shape() {
        let e = exists_structure_expr("comp", "specified_by", "spec");
        assert_eq!(
            e.to_string(),
            "EXISTS (SELECT * FROM specified_by AS s JOIN spec ON s.right = spec.obid \
             WHERE s.left = comp.obid)"
        );
        parse_expr(&e.to_string()).unwrap();
    }

    #[test]
    fn tree_aggregate_matches_paper_shape() {
        let e = tree_aggregate_expr(
            "rtbl",
            AggFunc::Count,
            None,
            Some("assy"),
            CmpOp::LtEq,
            10.0,
        );
        assert_eq!(
            e.to_string(),
            "(SELECT COUNT(*) FROM rtbl WHERE type = 'assy') <= 10"
        );
        parse_expr(&e.to_string()).unwrap();

        let e = tree_aggregate_expr(
            "rtbl",
            AggFunc::Avg,
            Some("weight"),
            None,
            CmpOp::LtEq,
            12.0,
        );
        assert_eq!(e.to_string(), "(SELECT AVG(weight) FROM rtbl) <= 12");
    }

    #[test]
    fn stored_fn_predicate_renders_as_call() {
        let pred = RowPredicate::StoredFn {
            name: "set_overlaps".into(),
            args: vec![
                FnArg::Attr("strc_opt".into()),
                FnArg::Const(Value::from("OPTA,OPTB")),
            ],
        };
        let e = row_predicate_expr(&pred, "link");
        assert_eq!(
            e.to_string(),
            "SET_OVERLAPS(link.strc_opt, 'OPTA,OPTB') = TRUE"
        );
        parse_expr(&e.to_string()).unwrap();
    }

    #[test]
    fn nested_logic_renders_with_parens() {
        let pred = RowPredicate::compare("a", CmpOp::Eq, 1i64)
            .or(RowPredicate::compare("b", CmpOp::Eq, 2i64))
            .and(RowPredicate::compare("c", CmpOp::Eq, 3i64).negate());
        let e = row_predicate_expr(&pred, "t");
        assert_eq!(e.to_string(), "(t.a = 1 OR t.b = 2) AND NOT t.c = 3");
    }

    #[test]
    fn definition_time_text_uses_canonical_cte() {
        let cond = Condition::TreeAggregate {
            func: AggFunc::Count,
            attr: None,
            object_type: None,
            op: CmpOp::LtEq,
            value: 100.0,
        };
        assert_eq!(
            condition_to_sql_text(&cond, "assy"),
            "(SELECT COUNT(*) FROM rtbl) <= 100"
        );
    }
}
