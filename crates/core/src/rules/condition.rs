//! Rule conditions: the paper's §3.2 taxonomy as an AST, with client-side
//! evaluation (needed by late rule evaluation, which filters after
//! transfer).

use std::collections::HashMap;
use std::fmt;

use pdm_sql::Value;

/// Comparison operators available in conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
}

impl CmpOp {
    pub fn eval(&self, ord: Option<std::cmp::Ordering>) -> Option<bool> {
        use std::cmp::Ordering::*;
        ord.map(|o| match self {
            CmpOp::Eq => o == Equal,
            CmpOp::NotEq => o != Equal,
            CmpOp::Lt => o == Less,
            CmpOp::LtEq => o != Greater,
            CmpOp::Gt => o == Greater,
            CmpOp::GtEq => o != Less,
        })
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::NotEq => "<>",
            CmpOp::Lt => "<",
            CmpOp::LtEq => "<=",
            CmpOp::Gt => ">",
            CmpOp::GtEq => ">=",
        };
        write!(f, "{s}")
    }
}

/// A row condition: a boolean predicate over the attributes of one object
/// (§3.2: "can be evaluated by the use of standard SQL predicates", falling
/// back to stored functions when they are not sufficient).
#[derive(Debug, Clone, PartialEq)]
pub enum RowPredicate {
    /// `attr op constant` — e.g. `make_or_buy <> 'buy'`.
    Compare {
        attr: String,
        op: CmpOp,
        value: Value,
    },
    /// `attr op attr` — e.g. `eff_from <= eff_to`.
    CompareAttrs {
        left: String,
        op: CmpOp,
        right: String,
    },
    /// A stored function returning a boolean, applied to attributes and
    /// constants — the paper's escape hatch for set/interval comparisons
    /// and transient attributes (§3.2, §4.1).
    StoredFn {
        name: String,
        /// Arguments: attribute references or constants, in call order.
        args: Vec<FnArg>,
    },
    /// `attr [NOT] LIKE pattern` — SQL pattern matching on a text
    /// attribute (`%` any sequence, `_` one character).
    Like {
        attr: String,
        pattern: String,
        negated: bool,
    },
    And(Box<RowPredicate>, Box<RowPredicate>),
    Or(Box<RowPredicate>, Box<RowPredicate>),
    Not(Box<RowPredicate>),
}

/// One argument to a stored-function predicate.
#[derive(Debug, Clone, PartialEq)]
pub enum FnArg {
    Attr(String),
    Const(Value),
}

impl RowPredicate {
    pub fn compare(attr: impl Into<String>, op: CmpOp, value: impl Into<Value>) -> Self {
        RowPredicate::Compare {
            attr: attr.into(),
            op,
            value: value.into(),
        }
    }

    pub fn and(self, other: RowPredicate) -> Self {
        RowPredicate::And(Box::new(self), Box::new(other))
    }

    pub fn or(self, other: RowPredicate) -> Self {
        RowPredicate::Or(Box::new(self), Box::new(other))
    }

    pub fn negate(self) -> Self {
        RowPredicate::Not(Box::new(self))
    }

    /// Client-side evaluation over an attribute map (late rule evaluation).
    /// Missing attributes and NULL-involved comparisons evaluate to `false`
    /// (the object is not permitted), mirroring SQL's WHERE semantics.
    ///
    /// `funcs` supplies stored-function implementations; the same functions
    /// registered at the database server (see [`crate::functions`]) are used
    /// here so both evaluation sites agree.
    pub fn eval(
        &self,
        attrs: &HashMap<String, Value>,
        funcs: &pdm_sql::functions::FunctionRegistry,
    ) -> bool {
        self.eval3(attrs, funcs) == Some(true)
    }

    fn eval3(
        &self,
        attrs: &HashMap<String, Value>,
        funcs: &pdm_sql::functions::FunctionRegistry,
    ) -> Option<bool> {
        match self {
            RowPredicate::Compare { attr, op, value } => {
                let v = attrs.get(attr.as_str())?;
                op.eval(v.sql_cmp(value))
            }
            RowPredicate::CompareAttrs { left, op, right } => {
                let l = attrs.get(left.as_str())?;
                let r = attrs.get(right.as_str())?;
                op.eval(l.sql_cmp(r))
            }
            RowPredicate::StoredFn { name, args } => {
                let mut values = Vec::with_capacity(args.len());
                for a in args {
                    values.push(match a {
                        FnArg::Attr(attr) => attrs.get(attr.as_str())?.clone(),
                        FnArg::Const(v) => v.clone(),
                    });
                }
                match funcs.call(name, &values).ok()? {
                    Value::Bool(b) => Some(b),
                    Value::Null => None,
                    _ => None,
                }
            }
            RowPredicate::Like {
                attr,
                pattern,
                negated,
            } => match attrs.get(attr.as_str())? {
                Value::Text(s) => Some(crate::rules::like_match(s, pattern) != *negated),
                Value::Null => None,
                _ => None,
            },
            RowPredicate::And(a, b) => match (a.eval3(attrs, funcs), b.eval3(attrs, funcs)) {
                (Some(false), _) | (_, Some(false)) => Some(false),
                (Some(true), Some(true)) => Some(true),
                _ => None,
            },
            RowPredicate::Or(a, b) => match (a.eval3(attrs, funcs), b.eval3(attrs, funcs)) {
                (Some(true), _) | (_, Some(true)) => Some(true),
                (Some(false), Some(false)) => Some(false),
                _ => None,
            },
            RowPredicate::Not(p) => p.eval3(attrs, funcs).map(|b| !b),
        }
    }

    /// Attribute names this predicate reads.
    pub fn attributes(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_attrs(&mut out);
        out
    }

    fn collect_attrs<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            RowPredicate::Compare { attr, .. } => out.push(attr),
            RowPredicate::CompareAttrs { left, right, .. } => {
                out.push(left);
                out.push(right);
            }
            RowPredicate::StoredFn { args, .. } => {
                for a in args {
                    if let FnArg::Attr(attr) = a {
                        out.push(attr);
                    }
                }
            }
            RowPredicate::Like { attr, .. } => out.push(attr),
            RowPredicate::And(a, b) | RowPredicate::Or(a, b) => {
                a.collect_attrs(out);
                b.collect_attrs(out);
            }
            RowPredicate::Not(p) => p.collect_attrs(out),
        }
    }
}

/// SQL aggregate functions usable in tree-aggregate conditions (§5.3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    Count,
    Sum,
    Avg,
    Min,
    Max,
}

impl AggFunc {
    pub fn sql_name(&self) -> &'static str {
        match self {
            AggFunc::Count => "count",
            AggFunc::Sum => "sum",
            AggFunc::Avg => "avg",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
        }
    }
}

/// A rule condition (Figure 1): a row condition on a single object, or one
/// of the three tree-condition classes over the whole object tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Condition {
    /// Plain row condition on the rule's object type.
    Row(RowPredicate),
    /// ∀rows: every node in the tree (optionally restricted to one object
    /// type) must satisfy the row condition, otherwise the result tree is
    /// empty — the "all-or-nothing" principle (§5.3.1).
    ForAllRows {
        /// Restrict the check to nodes of this type (`assy`-style type
        /// discriminator value); `None` checks every node.
        object_type: Option<String>,
        predicate: RowPredicate,
    },
    /// ∃structure: an object of type O is visible only if it is related,
    /// via `relation_table(left → O.obid, right → U.obid)`, to at least one
    /// object in `related_table` (§5.3.2).
    ExistsStructure {
        /// Table of the tested objects O (e.g. "comp").
        object_table: String,
        /// Relation table (e.g. "specified_by").
        relation_table: String,
        /// Related type U's table (e.g. "spec").
        related_table: String,
    },
    /// Tree-aggregate: `agg(attr over tree) op value`, evaluated on the set
    /// of accessible nodes (§5.3.3).
    TreeAggregate {
        func: AggFunc,
        /// Attribute aggregated; `None` means `COUNT(*)`.
        attr: Option<String>,
        /// Restrict the aggregation to nodes of this type.
        object_type: Option<String>,
        op: CmpOp,
        value: f64,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdm_sql::functions::FunctionRegistry;

    fn attrs(pairs: &[(&str, Value)]) -> HashMap<String, Value> {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect()
    }

    fn funcs() -> FunctionRegistry {
        let mut reg = FunctionRegistry::with_builtins();
        crate::functions::register_into(&mut reg);
        reg
    }

    #[test]
    fn compare_predicate_eval() {
        let p = RowPredicate::compare("make_or_buy", CmpOp::NotEq, "buy");
        assert!(p.eval(&attrs(&[("make_or_buy", Value::from("make"))]), &funcs()));
        assert!(!p.eval(&attrs(&[("make_or_buy", Value::from("buy"))]), &funcs()));
        // missing attribute → not permitted
        assert!(!p.eval(&attrs(&[]), &funcs()));
        // NULL attribute → unknown → not permitted
        assert!(!p.eval(&attrs(&[("make_or_buy", Value::Null)]), &funcs()));
    }

    #[test]
    fn and_or_not_combinators() {
        let a = RowPredicate::compare("x", CmpOp::Gt, 1i64);
        let b = RowPredicate::compare("y", CmpOp::Lt, 5i64);
        let both = a.clone().and(b.clone());
        let either = a.clone().or(b.clone());
        let ctx = attrs(&[("x", Value::Int(2)), ("y", Value::Int(9))]);
        assert!(!both.eval(&ctx, &funcs()));
        assert!(either.eval(&ctx, &funcs()));
        assert!(!a.negate().eval(&ctx, &funcs()));
        let _ = b;
    }

    #[test]
    fn compare_attrs() {
        let p = RowPredicate::CompareAttrs {
            left: "eff_from".into(),
            op: CmpOp::LtEq,
            right: "eff_to".into(),
        };
        assert!(p.eval(
            &attrs(&[("eff_from", Value::Int(1)), ("eff_to", Value::Int(5))]),
            &funcs()
        ));
    }

    #[test]
    fn stored_fn_interval_overlap() {
        // §3.1 example 3 style: relation effectivity overlaps user selection.
        let p = RowPredicate::StoredFn {
            name: "overlaps_interval".into(),
            args: vec![
                FnArg::Attr("eff_from".into()),
                FnArg::Attr("eff_to".into()),
                FnArg::Const(Value::Int(4)),
                FnArg::Const(Value::Int(6)),
            ],
        };
        assert!(p.eval(
            &attrs(&[("eff_from", Value::Int(1)), ("eff_to", Value::Int(10))]),
            &funcs()
        ));
        assert!(!p.eval(
            &attrs(&[("eff_from", Value::Int(1)), ("eff_to", Value::Int(3))]),
            &funcs()
        ));
    }

    #[test]
    fn attributes_collected() {
        let p = RowPredicate::compare("a", CmpOp::Eq, 1i64)
            .and(RowPredicate::CompareAttrs {
                left: "b".into(),
                op: CmpOp::Lt,
                right: "c".into(),
            })
            .or(RowPredicate::StoredFn {
                name: "f".into(),
                args: vec![FnArg::Attr("d".into()), FnArg::Const(Value::Int(0))],
            });
        let mut got = p.attributes();
        got.sort_unstable();
        assert_eq!(got, vec!["a", "b", "c", "d"]);
    }

    #[test]
    fn unknown_propagation_in_logic() {
        // (NULL-compare OR true) must be true — unknown doesn't poison OR.
        let p = RowPredicate::compare("missing", CmpOp::Eq, 1i64).or(RowPredicate::compare(
            "x",
            CmpOp::Eq,
            1i64,
        ));
        assert!(p.eval(&attrs(&[("x", Value::Int(1))]), &funcs()));
    }
}
