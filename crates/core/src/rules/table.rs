//! The client-side rule table (§5.5): rules with their pre-translated SQL,
//! queried by (user, action, object type) and by condition class — the
//! lookups steps A–D of the query modificator perform.

use super::classify::{classify, ConditionClass};
use super::{ActionKind, Rule};

/// Rule store kept at each client.
#[derive(Debug, Clone, Default)]
pub struct RuleTable {
    rules: Vec<Rule>,
}

impl RuleTable {
    pub fn new() -> Self {
        RuleTable::default()
    }

    /// Add a rule (only authorized users create rules in the paper; the
    /// authorization model itself is out of scope here as it is there).
    pub fn add(&mut self, rule: Rule) {
        self.rules.push(rule);
    }

    pub fn len(&self) -> usize {
        self.rules.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = &Rule> {
        self.rules.iter()
    }

    /// Rules relevant to (user, action): the footnote-9 notion of
    /// relevance, with `Access` rules applying to every retrieving action.
    pub fn relevant(&self, user: &str, action: ActionKind) -> Vec<&Rule> {
        self.rules
            .iter()
            .filter(|r| r.user.matches(user) && action.implied_by(r.action))
            .collect()
    }

    /// Relevant rules of one condition class (the per-step fetch of §5.5).
    pub fn relevant_of_class(
        &self,
        user: &str,
        action: ActionKind,
        class: ConditionClass,
    ) -> Vec<&Rule> {
        self.relevant(user, action)
            .into_iter()
            .filter(|r| classify(&r.condition) == class)
            .collect()
    }

    /// Relevant rules of one class restricted to an object type (step D
    /// groups row conditions by type).
    pub fn relevant_for_type(
        &self,
        user: &str,
        action: ActionKind,
        class: ConditionClass,
        object_type: &str,
    ) -> Vec<&Rule> {
        let t = object_type.to_ascii_lowercase();
        self.relevant_of_class(user, action, class)
            .into_iter()
            .filter(|r| r.object_type == t)
            .collect()
    }
}

impl FromIterator<Rule> for RuleTable {
    fn from_iter<I: IntoIterator<Item = Rule>>(iter: I) -> Self {
        RuleTable {
            rules: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::condition::{CmpOp, Condition, RowPredicate};
    use super::super::UserPattern;
    use super::*;

    fn sample_table() -> RuleTable {
        let mut t = RuleTable::new();
        t.add(Rule::new(
            UserPattern::Named("scott".into()),
            ActionKind::MultiLevelExpand,
            "assy",
            Condition::Row(RowPredicate::compare("make_or_buy", CmpOp::NotEq, "buy")),
        ));
        t.add(Rule::for_all_users(
            ActionKind::Access,
            "link",
            Condition::Row(RowPredicate::compare("strc_opt", CmpOp::Eq, "OPTA")),
        ));
        t.add(Rule::for_all_users(
            ActionKind::CheckOut,
            "assy",
            Condition::ForAllRows {
                object_type: None,
                predicate: RowPredicate::compare("checkedout", CmpOp::Eq, false),
            },
        ));
        t
    }

    #[test]
    fn relevance_by_user_and_action() {
        let t = sample_table();
        // scott doing MLE: his own rule + the Access rule for everyone
        assert_eq!(t.relevant("scott", ActionKind::MultiLevelExpand).len(), 2);
        // tiger doing MLE: only the Access rule
        assert_eq!(t.relevant("tiger", ActionKind::MultiLevelExpand).len(), 1);
        // check-out picks up the ∀rows rule and the Access rule
        assert_eq!(t.relevant("tiger", ActionKind::CheckOut).len(), 2);
    }

    #[test]
    fn class_filtering() {
        let t = sample_table();
        let rows = t.relevant_of_class("scott", ActionKind::MultiLevelExpand, ConditionClass::Row);
        assert_eq!(rows.len(), 2);
        let forall = t.relevant_of_class("scott", ActionKind::CheckOut, ConditionClass::ForAllRows);
        assert_eq!(forall.len(), 1);
    }

    #[test]
    fn type_filtering() {
        let t = sample_table();
        let on_link = t.relevant_for_type(
            "scott",
            ActionKind::MultiLevelExpand,
            ConditionClass::Row,
            "LINK",
        );
        assert_eq!(on_link.len(), 1);
        assert_eq!(on_link[0].object_type, "link");
    }

    #[test]
    fn from_iterator() {
        let t: RuleTable = sample_table().rules.into_iter().collect();
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
    }
}
