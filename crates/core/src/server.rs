//! The database-server side: a `pdm_sql` database with the PDM stored
//! functions installed, plus the server-resident check-out procedure the
//! paper proposes for function shipping (§6: "application-specific
//! functionality performing the desired user action has to be installed at
//! the database server").

use std::collections::{HashMap, HashSet};

use pdm_sql::{Database, ExecOutcome, Result, ResultSet, Statement, Value};

use crate::product::ObjectId;

/// The PDM database server.
#[derive(Debug)]
pub struct PdmServer {
    db: Database,
    /// Completed check-outs by idempotency token: a client replaying a
    /// check-out whose confirmation was lost gets the recorded outcome back
    /// instead of a spurious "already checked out" refusal.
    checkout_log: HashMap<u64, CheckoutProcedureResult>,
}

impl PdmServer {
    /// Wrap a populated database, installing the PDM stored functions.
    pub fn new(mut db: Database) -> Self {
        crate::functions::register_pdm_functions(&mut db);
        PdmServer {
            db,
            checkout_log: HashMap::new(),
        }
    }

    pub fn database(&self) -> &Database {
        &self.db
    }

    pub fn database_mut(&mut self) -> &mut Database {
        &mut self.db
    }

    /// Execute a read query arriving from the client.
    pub fn query(&self, sql: &str) -> Result<ResultSet> {
        self.db.query(sql)
    }

    /// Execute any statement (the check-out UPDATE path).
    pub fn execute(&mut self, sql: &str) -> Result<ExecOutcome> {
        self.db.execute(sql)
    }

    /// Names of views defined at the server — schema knowledge the client's
    /// query modificator consults for the §5.5 view caveat.
    pub fn view_names(&self) -> HashSet<String> {
        self.db
            .catalog
            .view_names()
            .into_iter()
            .map(str::to_string)
            .collect()
    }

    /// Server-side check-out procedure (function shipping): retrieve the
    /// subtree with an already-modified recursive query, verify no node is
    /// checked out, flip the flags, and return the rows — all in ONE
    /// client/server exchange.
    ///
    /// `modified_sql` is the recursive MLE query (with rule predicates
    /// already spliced in) shipped as the procedure's argument.
    pub fn checkout_procedure(
        &mut self,
        root: ObjectId,
        modified_sql: &str,
    ) -> Result<CheckoutProcedureResult> {
        let rows = self.db.query(modified_sql)?;

        // Collect retrieved object ids per node table.
        let (assy_ids, comp_ids) = split_ids(&rows)?;

        // ∀rows check: nothing may already be checked out (the paper's
        // example 2 condition), root included.
        let mut all_ids = assy_ids.clone();
        all_ids.push(root);
        let busy =
            self.any_checked_out("assy", &all_ids)? || self.any_checked_out("comp", &comp_ids)?;
        if busy {
            return Ok(CheckoutProcedureResult { rows: None });
        }

        self.set_checked_out("assy", &all_ids, true)?;
        self.set_checked_out("comp", &comp_ids, true)?;
        Ok(CheckoutProcedureResult { rows: Some(rows) })
    }

    /// Failure-atomic check-out: like [`PdmServer::checkout_procedure`],
    /// but keyed by a client-chosen idempotency `token`. The outcome is
    /// recorded *before* the confirmation leaves the server, so a retry
    /// with the same token — after a lost response — returns the original
    /// outcome without flipping any flag twice or refusing its own
    /// check-out as "already checked out". Flags are never left in a state
    /// the client cannot learn about by replaying.
    pub fn checkout_procedure_idempotent(
        &mut self,
        root: ObjectId,
        modified_sql: &str,
        token: u64,
    ) -> Result<CheckoutProcedureResult> {
        if let Some(done) = self.checkout_log.get(&token) {
            return Ok(done.clone());
        }
        let result = self.checkout_procedure(root, modified_sql)?;
        self.checkout_log.insert(token, result.clone());
        Ok(result)
    }

    /// Whether a check-out with this idempotency token has already
    /// completed (test/diagnostic hook).
    pub fn checkout_recorded(&self, token: u64) -> bool {
        self.checkout_log.contains_key(&token)
    }

    /// Server-side check-in: clear the flags for the given objects.
    pub fn checkin_procedure(
        &mut self,
        assy_ids: &[ObjectId],
        comp_ids: &[ObjectId],
    ) -> Result<usize> {
        let a = self.set_checked_out("assy", assy_ids, false)?;
        let c = self.set_checked_out("comp", comp_ids, false)?;
        Ok(a + c)
    }

    fn any_checked_out(&self, table: &str, ids: &[ObjectId]) -> Result<bool> {
        if ids.is_empty() {
            return Ok(false);
        }
        let list = id_list(ids);
        let rs = self.db.query(&format!(
            "SELECT COUNT(*) AS n FROM {table} WHERE checkedout = TRUE AND obid IN ({list})"
        ))?;
        let row = rs
            .rows
            .first()
            .ok_or_else(|| pdm_sql::Error::Eval("COUNT(*) returned no row".into()))?;
        Ok(row.get(0) != &Value::Int(0))
    }

    fn set_checked_out(&mut self, table: &str, ids: &[ObjectId], value: bool) -> Result<usize> {
        if ids.is_empty() {
            return Ok(0);
        }
        let list = id_list(ids);
        let flag = if value { "TRUE" } else { "FALSE" };
        match self.db.execute(&format!(
            "UPDATE {table} SET checkedout = {flag} WHERE obid IN ({list})"
        ))? {
            ExecOutcome::Dml(pdm_sql::DmlOutcome::Updated(n)) => Ok(n),
            other => Err(pdm_sql::Error::Eval(format!(
                "UPDATE returned unexpected outcome {other:?}"
            ))),
        }
    }

    /// Parse and execute a statement AST directly (bypasses re-parsing when
    /// the caller built the AST itself).
    pub fn execute_ast(&mut self, stmt: &Statement) -> Result<ExecOutcome> {
        self.db.execute_ast(stmt)
    }
}

/// Result of the server-side check-out: `None` rows means the ∀rows
/// condition failed (something was already checked out).
#[derive(Debug, Clone)]
pub struct CheckoutProcedureResult {
    pub rows: Option<ResultSet>,
}

/// Split a homogenized result into assembly and component object ids.
pub(crate) fn split_ids(rows: &ResultSet) -> Result<(Vec<ObjectId>, Vec<ObjectId>)> {
    let type_idx = rows.schema.require("type")?;
    let obid_idx = rows.schema.require("obid")?;
    let mut assy = Vec::new();
    let mut comp = Vec::new();
    for row in &rows.rows {
        let id = match row.get(obid_idx) {
            Value::Int(i) => *i,
            other => {
                return Err(pdm_sql::Error::Eval(format!(
                    "non-integer obid in result: {other}"
                )))
            }
        };
        match row.get(type_idx) {
            Value::Text(t) if t == "assy" => assy.push(id),
            Value::Text(t) if t == "comp" => comp.push(id),
            _ => {}
        }
    }
    Ok((assy, comp))
}

/// Render an IN-list of ids.
pub(crate) fn id_list(ids: &[ObjectId]) -> String {
    let mut s = String::with_capacity(ids.len() * 8);
    for (i, id) in ids.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        s.push_str(&id.to_string());
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::recursive;
    use pdm_workload::{build_database, TreeSpec};

    fn server() -> PdmServer {
        let (db, _) = build_database(&TreeSpec::new(2, 2, 1.0).with_node_size(128)).unwrap();
        PdmServer::new(db)
    }

    #[test]
    fn query_and_views() {
        let mut s = server();
        assert!(s.view_names().is_empty());
        s.execute("CREATE VIEW v AS SELECT obid FROM assy").unwrap();
        assert!(s.view_names().contains("v"));
        let rs = s.query("SELECT COUNT(*) AS n FROM assy").unwrap();
        assert_eq!(rs.rows[0].get(0), &Value::Int(3));
    }

    #[test]
    fn pdm_functions_installed() {
        let s = server();
        let rs = s
            .query("SELECT SET_OVERLAPS('OPTA', 'OPTA,OPTB') AS o FROM assy WHERE obid = 1")
            .unwrap();
        assert_eq!(rs.rows[0].get(0), &Value::Bool(true));
    }

    #[test]
    fn checkout_procedure_flips_flags_once() {
        let mut s = server();
        let sql = recursive::mle_query(1).to_string();
        let result = s.checkout_procedure(1, &sql).unwrap();
        let rows = result.rows.expect("first check-out succeeds");
        assert_eq!(rows.len(), 2 + 4); // 2 child assys + 4 comps (root excluded)

        // everything below (and including) the root is now flagged
        let rs = s
            .query("SELECT COUNT(*) AS n FROM assy WHERE checkedout = TRUE")
            .unwrap();
        assert_eq!(rs.rows[0].get(0), &Value::Int(3));

        // a second check-out must fail the ∀rows condition
        let again = s.checkout_procedure(1, &sql).unwrap();
        assert!(again.rows.is_none());
    }

    #[test]
    fn checkin_procedure_clears_flags() {
        let mut s = server();
        let sql = recursive::mle_query(1).to_string();
        s.checkout_procedure(1, &sql).unwrap();
        let n = s.checkin_procedure(&[1, 2, 3], &[4, 5, 6, 7]).unwrap();
        assert_eq!(n, 7);
        let rs = s
            .query("SELECT COUNT(*) AS n FROM comp WHERE checkedout = TRUE")
            .unwrap();
        assert_eq!(rs.rows[0].get(0), &Value::Int(0));
    }

    #[test]
    fn idempotent_checkout_replays_original_outcome() {
        let mut s = server();
        let sql = recursive::mle_query(1).to_string();
        let first = s.checkout_procedure_idempotent(1, &sql, 42).unwrap();
        assert!(first.rows.is_some());
        assert!(s.checkout_recorded(42));
        // replaying the same token returns the original success instead of
        // refusing its own check-out
        let replay = s.checkout_procedure_idempotent(1, &sql, 42).unwrap();
        assert!(replay.rows.is_some());
        // a genuinely new check-out still fails the ∀rows condition
        let other = s.checkout_procedure_idempotent(1, &sql, 43).unwrap();
        assert!(other.rows.is_none());
    }

    #[test]
    fn id_list_rendering() {
        assert_eq!(id_list(&[1, 2, 3]), "1, 2, 3");
        assert_eq!(id_list(&[]), "");
    }
}
