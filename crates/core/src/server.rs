//! The database-server side: a handle to the shared PDM server.
//!
//! Historically `PdmServer` *owned* its database, which made every session
//! a private universe — nothing the paper describes (one central server,
//! many worldwide clients, §1 Fig. 1) could be measured. It is now a cheap
//! cloneable handle over [`crate::shared::SharedServer`]: cloning the
//! handle (or [`crate::Session::attach`]-ing more sessions) shares ONE
//! server — one storage, one check-out lock table, one cross-session
//! result cache — across any number of threads.
//!
//! The server-resident check-out procedure the paper proposes for function
//! shipping (§6: "application-specific functionality performing the
//! desired user action has to be installed at the database server") lives
//! on the shared server; the wrappers here keep the PR-1 call surface.

use std::collections::HashSet;
use std::sync::Arc;
use std::time::Duration;

use pdm_sql::{Database, ExecOutcome, Result, ResultSet, SharedDatabase, Statement, Value};

use crate::product::ObjectId;
use crate::shared::{SharedServer, SharedServerError};

/// A handle to the PDM database server. Clones share the same server.
#[derive(Debug, Clone)]
pub struct PdmServer {
    shared: Arc<SharedServer>,
}

impl PdmServer {
    /// Publish a populated database as a fresh shared server (PDM stored
    /// functions installed).
    pub fn new(db: Database) -> Self {
        PdmServer {
            shared: Arc::new(SharedServer::new(db)),
        }
    }

    /// Handle to an existing shared server.
    pub fn from_shared(shared: Arc<SharedServer>) -> Self {
        PdmServer { shared }
    }

    /// The shared server behind this handle.
    pub fn shared(&self) -> &Arc<SharedServer> {
        &self.shared
    }

    /// The snapshot store (direct storage access for loaders and tests).
    pub fn database(&self) -> &SharedDatabase {
        self.shared.database()
    }

    /// Execute a read query arriving from the client, through the
    /// cross-session result cache.
    pub fn query(&self, sql: &str) -> Result<ResultSet> {
        Ok((*self.shared.query_cached(sql)?).clone())
    }

    /// [`PdmServer::query`] with span recording (parse, cache probe, engine
    /// operators).
    pub fn query_obs(&self, sql: &str, obs: &pdm_obs::Recorder) -> Result<ResultSet> {
        Ok((*self.shared.query_cached_obs(sql, obs)?).clone())
    }

    /// Execute any statement (the check-out UPDATE path).
    pub fn execute(&self, sql: &str) -> Result<ExecOutcome> {
        self.shared.execute(sql)
    }

    /// [`PdmServer::execute`] with span recording (parse, WAL commit).
    pub fn execute_obs(&self, sql: &str, obs: &pdm_obs::Recorder) -> Result<ExecOutcome> {
        self.shared.execute_obs(sql, obs)
    }

    /// Names of views defined at the server — schema knowledge the client's
    /// query modificator consults for the §5.5 view caveat.
    pub fn view_names(&self) -> HashSet<String> {
        self.shared.view_names()
    }

    /// Server-side check-out procedure (function shipping): retrieve the
    /// subtree with an already-modified recursive query, verify via the
    /// lock table and the `checkedout` flags that nothing in it is taken,
    /// flip the flags, and return the rows — all in ONE client/server
    /// exchange. Conflicting concurrent check-outs serialize on the lock
    /// table.
    pub fn checkout_procedure(
        &self,
        root: ObjectId,
        modified_sql: &str,
    ) -> Result<CheckoutProcedureResult> {
        let token = self.shared.next_token();
        self.checkout_procedure_idempotent(root, modified_sql, token)
    }

    /// Failure-atomic check-out keyed by a client-chosen idempotency
    /// `token` (see PR 1): a retry with the same token — after a lost
    /// response — returns the original outcome without flipping any flag
    /// twice or refusing its own check-out.
    pub fn checkout_procedure_idempotent(
        &self,
        root: ObjectId,
        modified_sql: &str,
        token: u64,
    ) -> Result<CheckoutProcedureResult> {
        match self
            .shared
            .checkout_procedure_locked(root, modified_sql, token, None)
        {
            Ok(r) => Ok(r),
            Err(SharedServerError::Sql(e)) => Err(e),
            // Without a deadline only Sql can occur; the overload-era
            // variants (timeout, queue-full, deadline-abandon) are mapped
            // for totality.
            Err(other) => Err(pdm_sql::Error::Eval(format!("check-out failed: {other}"))),
        }
    }

    /// Check-out with a bound on how long to wait for a conflicting
    /// in-flight check-out ([`SharedServerError::LockTimeout`] past it).
    pub fn checkout_procedure_with_deadline(
        &self,
        root: ObjectId,
        modified_sql: &str,
        token: u64,
        deadline: Option<Duration>,
    ) -> std::result::Result<CheckoutProcedureResult, SharedServerError> {
        self.shared
            .checkout_procedure_locked(root, modified_sql, token, deadline)
    }

    /// [`PdmServer::checkout_procedure_with_deadline`] with span recording
    /// (retrieval, lock wait, durable grant/token appends).
    pub fn checkout_procedure_with_deadline_obs(
        &self,
        root: ObjectId,
        modified_sql: &str,
        token: u64,
        deadline: Option<Duration>,
        obs: &pdm_obs::Recorder,
    ) -> std::result::Result<CheckoutProcedureResult, SharedServerError> {
        self.shared
            .checkout_procedure_locked_obs(root, modified_sql, token, deadline, obs)
    }

    /// Whether a check-out with this idempotency token has already
    /// completed (test/diagnostic hook).
    pub fn checkout_recorded(&self, token: u64) -> bool {
        self.shared.checkout_recorded(token)
    }

    /// Server-side check-in: clear the flags for the given objects and
    /// release their lock-table entries.
    pub fn checkin_procedure(&self, assy_ids: &[ObjectId], comp_ids: &[ObjectId]) -> Result<usize> {
        self.shared.checkin_procedure(assy_ids, comp_ids)
    }

    /// [`PdmServer::checkin_procedure`] with span recording.
    pub fn checkin_procedure_obs(
        &self,
        assy_ids: &[ObjectId],
        comp_ids: &[ObjectId],
        obs: &pdm_obs::Recorder,
    ) -> Result<usize> {
        self.shared.checkin_procedure_obs(assy_ids, comp_ids, obs)
    }

    /// The server-wide metrics registry (see [`SharedServer::metrics`]).
    pub fn metrics(&self) -> &std::sync::Arc<pdm_obs::MetricsRegistry> {
        self.shared.metrics()
    }

    /// Parse and execute a statement AST directly (bypasses re-parsing when
    /// the caller built the AST itself).
    pub fn execute_ast(&self, stmt: &Statement) -> Result<ExecOutcome> {
        self.shared.execute_ast(stmt)
    }
}

/// Result of the server-side check-out: `None` rows means the ∀rows
/// condition failed (something was already checked out).
#[derive(Debug, Clone)]
pub struct CheckoutProcedureResult {
    pub rows: Option<ResultSet>,
}

/// Split a homogenized result into assembly and component object ids.
pub(crate) fn split_ids(rows: &ResultSet) -> Result<(Vec<ObjectId>, Vec<ObjectId>)> {
    let type_idx = rows.schema.require("type")?;
    let obid_idx = rows.schema.require("obid")?;
    let mut assy = Vec::new();
    let mut comp = Vec::new();
    for row in &rows.rows {
        let id = match row.get(obid_idx) {
            Value::Int(i) => *i,
            other => {
                return Err(pdm_sql::Error::Eval(format!(
                    "non-integer obid in result: {other}"
                )))
            }
        };
        match row.get(type_idx) {
            Value::Text(t) if t == "assy" => assy.push(id),
            Value::Text(t) if t == "comp" => comp.push(id),
            _ => {}
        }
    }
    Ok((assy, comp))
}

/// Render an IN-list of ids.
pub(crate) fn id_list(ids: &[ObjectId]) -> String {
    let mut s = String::with_capacity(ids.len() * 8);
    for (i, id) in ids.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        s.push_str(&id.to_string());
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::recursive;
    use pdm_workload::{build_database, TreeSpec};

    fn server() -> PdmServer {
        let (db, _) = build_database(&TreeSpec::new(2, 2, 1.0).with_node_size(128)).unwrap();
        PdmServer::new(db)
    }

    #[test]
    fn query_and_views() {
        let s = server();
        assert!(s.view_names().is_empty());
        s.execute("CREATE VIEW v AS SELECT obid FROM assy").unwrap();
        assert!(s.view_names().contains("v"));
        let rs = s.query("SELECT COUNT(*) AS n FROM assy").unwrap();
        assert_eq!(rs.rows[0].get(0), &Value::Int(3));
    }

    #[test]
    fn pdm_functions_installed() {
        let s = server();
        let rs = s
            .query("SELECT SET_OVERLAPS('OPTA', 'OPTA,OPTB') AS o FROM assy WHERE obid = 1")
            .unwrap();
        assert_eq!(rs.rows[0].get(0), &Value::Bool(true));
    }

    #[test]
    fn checkout_procedure_flips_flags_once() {
        let s = server();
        let sql = recursive::mle_query(1).to_string();
        let result = s.checkout_procedure(1, &sql).unwrap();
        let rows = result.rows.expect("first check-out succeeds");
        assert_eq!(rows.len(), 2 + 4); // 2 child assys + 4 comps (root excluded)

        // everything below (and including) the root is now flagged
        let rs = s
            .query("SELECT COUNT(*) AS n FROM assy WHERE checkedout = TRUE")
            .unwrap();
        assert_eq!(rs.rows[0].get(0), &Value::Int(3));

        // a second check-out must fail the ∀rows condition
        let again = s.checkout_procedure(1, &sql).unwrap();
        assert!(again.rows.is_none());
    }

    #[test]
    fn checkin_procedure_clears_flags() {
        let s = server();
        let sql = recursive::mle_query(1).to_string();
        s.checkout_procedure(1, &sql).unwrap();
        let n = s.checkin_procedure(&[1, 2, 3], &[4, 5, 6, 7]).unwrap();
        assert_eq!(n, 7);
        let rs = s
            .query("SELECT COUNT(*) AS n FROM comp WHERE checkedout = TRUE")
            .unwrap();
        assert_eq!(rs.rows[0].get(0), &Value::Int(0));
        assert!(s.shared().lock_table().is_empty());
    }

    #[test]
    fn idempotent_checkout_replays_original_outcome() {
        let s = server();
        let sql = recursive::mle_query(1).to_string();
        let first = s.checkout_procedure_idempotent(1, &sql, 42).unwrap();
        assert!(first.rows.is_some());
        assert!(s.checkout_recorded(42));
        // replaying the same token returns the original success instead of
        // refusing its own check-out
        let replay = s.checkout_procedure_idempotent(1, &sql, 42).unwrap();
        assert!(replay.rows.is_some());
        // a genuinely new check-out still fails the ∀rows condition
        let other = s.checkout_procedure_idempotent(1, &sql, 43).unwrap();
        assert!(other.rows.is_none());
    }

    #[test]
    fn cloned_handles_share_one_server() {
        let s = server();
        let s2 = s.clone();
        s.execute("CREATE VIEW shared_v AS SELECT obid FROM assy")
            .unwrap();
        assert!(s2.view_names().contains("shared_v"));
        // Result cache is shared too: same query from the other handle hits.
        s.query("SELECT obid FROM comp WHERE obid = 4").unwrap();
        let before = s2.shared().cache_stats();
        s2.query("SELECT obid FROM comp WHERE obid = 4").unwrap();
        let after = s2.shared().cache_stats();
        assert_eq!(after.hits, before.hits + 1);
    }

    #[test]
    fn id_list_rendering() {
        assert_eq!(id_list(&[1, 2, 3]), "1, 2, 3");
        assert_eq!(id_list(&[]), "");
    }
}
