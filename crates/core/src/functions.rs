//! PDM stored functions (§3.2, §4.1): predicates plain SQL cannot express —
//! interval overlap for effectivities, set overlap for structure options,
//! and a transient-attribute example. Registered both at the database server
//! (so early evaluation can call them in WHERE clauses) and in the client's
//! registry (so late evaluation applies identical semantics after transfer).

use pdm_sql::functions::FunctionRegistry;
use pdm_sql::{Database, Error, Value};

/// Register the PDM function set into a registry.
pub fn register_into(reg: &mut FunctionRegistry) {
    // overlaps_interval(a_from, a_to, b_from, b_to) — closed-interval
    // overlap, the effectivity check of §3.1 example 3.
    reg.register("overlaps_interval", |args| {
        if args.len() != 4 {
            return Err(Error::Eval(
                "overlaps_interval() expects 4 arguments".into(),
            ));
        }
        let nums: Option<Vec<i64>> = args
            .iter()
            .map(|v| match v {
                Value::Int(i) => Some(*i),
                _ => None,
            })
            .collect();
        match nums {
            Some(n) => Ok(Value::Bool(n[0] <= n[3] && n[2] <= n[1])),
            None => Ok(Value::Null),
        }
    });

    // set_overlaps(a, b) — comma-separated option sets share an element;
    // the structure-option check ("relation.strc_opt overlaps
    // user_strc_opt").
    reg.register("set_overlaps", |args| {
        if args.len() != 2 {
            return Err(Error::Eval("set_overlaps() expects 2 arguments".into()));
        }
        match (&args[0], &args[1]) {
            (Value::Text(a), Value::Text(b)) => {
                let left: std::collections::HashSet<&str> = a
                    .split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .collect();
                let found = b
                    .split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .any(|s| left.contains(s));
                Ok(Value::Bool(found))
            }
            _ => Ok(Value::Null),
        }
    });

    // effective_name(name, obid) — a transient attribute computed by the
    // PDM system (§4.1): a display identifier derived from stored columns.
    reg.register("effective_name", |args| {
        if args.len() != 2 {
            return Err(Error::Eval("effective_name() expects 2 arguments".into()));
        }
        match (&args[0], &args[1]) {
            (Value::Text(name), Value::Int(obid)) => Ok(Value::Text(format!("{name}#{obid}"))),
            _ => Ok(Value::Null),
        }
    });
}

/// Install the PDM functions at a database server.
pub fn register_pdm_functions(db: &mut Database) {
    register_into(&mut db.catalog.functions);
}

/// A fresh client-side registry with builtins plus the PDM functions.
pub fn client_registry() -> FunctionRegistry {
    let mut reg = FunctionRegistry::with_builtins();
    register_into(&mut reg);
    reg
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reg() -> FunctionRegistry {
        client_registry()
    }

    #[test]
    fn interval_overlap_cases() {
        let r = reg();
        let call = |a: i64, b: i64, c: i64, d: i64| {
            r.call(
                "overlaps_interval",
                &[Value::Int(a), Value::Int(b), Value::Int(c), Value::Int(d)],
            )
            .unwrap()
        };
        assert_eq!(call(1, 3, 4, 10), Value::Bool(false)); // link 1001 vs 4..10
        assert_eq!(call(4, 10, 1, 10), Value::Bool(true));
        assert_eq!(call(5, 5, 5, 5), Value::Bool(true)); // touching point
        assert_eq!(call(1, 4, 4, 10), Value::Bool(true)); // closed boundary
    }

    #[test]
    fn interval_overlap_null_on_non_ints() {
        let r = reg();
        assert_eq!(
            r.call(
                "overlaps_interval",
                &[Value::Null, Value::Int(1), Value::Int(1), Value::Int(2)]
            )
            .unwrap(),
            Value::Null
        );
    }

    #[test]
    fn set_overlap_cases() {
        let r = reg();
        let call = |a: &str, b: &str| {
            r.call("set_overlaps", &[Value::from(a), Value::from(b)])
                .unwrap()
        };
        assert_eq!(call("OPTA,OPTB", "OPTB,OPTC"), Value::Bool(true));
        assert_eq!(call("OPTA", "OPTB"), Value::Bool(false));
        assert_eq!(call("", "OPTA"), Value::Bool(false));
        assert_eq!(call("OPTA, OPTB", "optb,OPTB"), Value::Bool(true)); // trims spaces
    }

    #[test]
    fn transient_attribute() {
        let r = reg();
        assert_eq!(
            r.call("effective_name", &[Value::from("Wing"), Value::Int(42)])
                .unwrap(),
            Value::Text("Wing#42".into())
        );
    }

    #[test]
    fn registered_at_server_usable_in_sql() {
        let mut db = Database::new();
        register_pdm_functions(&mut db);
        db.execute("CREATE TABLE l (eff_from INTEGER, eff_to INTEGER)")
            .unwrap();
        db.execute("INSERT INTO l VALUES (1, 3), (4, 10)").unwrap();
        let rs = db
            .query("SELECT COUNT(*) AS n FROM l WHERE OVERLAPS_INTERVAL(eff_from, eff_to, 5, 6) = TRUE")
            .unwrap();
        assert_eq!(rs.rows[0].get(0), &Value::Int(1));
    }
}
