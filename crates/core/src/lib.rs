#![cfg_attr(test, allow(clippy::unwrap_used))]

//! # pdm-core — the PDM system of the paper
//!
//! Implements the primary contribution of *"Tuning an SQL-Based PDM System
//! in a Worldwide Client/Server Environment"* (ICDE 2001):
//!
//! * the **rule taxonomy** of §3 — structure options, effectivities, and
//!   message access rules as (user, action, type, condition) 4-tuples, with
//!   conditions classified per Figure 1 into row conditions and the three
//!   tree-condition classes (∀rows, ∃structure, tree-aggregate);
//! * **condition → SQL translation** (§4.1, §5.3), performed once at rule
//!   definition time and stored in the client-side rule table (§5.5);
//! * the **query modificator** (§5.5, steps A–D) that splices rule
//!   predicates into navigational and recursive queries — including the
//!   paper's caveat that queries hidden behind views cannot be modified;
//! * three **client strategies** over a metered WAN: navigational access
//!   with late (client-side) rule evaluation, navigational access with
//!   early (in-query) evaluation — Approach 1 — and single recursive-query
//!   retrieval — Approach 2;
//! * **check-out/check-in** (§6): tree retrieval plus the separate UPDATE
//!   round trip that recursive querying cannot absorb, and the
//!   function-shipping (stored procedure) remedy the paper sketches;
//! * a **resilience layer** for faulty WANs: retry with deterministic
//!   backoff, failure-atomic check-out via idempotency tokens, circuit-
//!   breaker degradation from the recursive strategy to level-batched
//!   navigation, and partial federated results over unreachable sites;
//! * end-to-end **observability** (`pdm-obs`): per-action span trees from
//!   rule lookup down to engine operators, WAL appends and network
//!   exchanges ([`Session::enable_profiling`]), a server-wide metrics
//!   registry ([`SharedServer::metrics`]), and flight-recorder context on
//!   timeout errors ([`SessionError::Timeout`]).

pub mod checkout;
pub mod client;
pub mod durability;
pub mod federation;
pub mod functions;
pub mod overload;
pub mod product;
pub mod query;
pub mod repl;
pub mod resilience;
pub mod rules;
pub mod server;
pub mod session;
pub mod shared;

pub use client::Strategy;
pub use durability::{
    recover_server, Durability, DurabilityConfig, GrantIds, RecoveryError, RecoveryReport,
};
pub use federation::{FederatedOutcome, Federation, MountPoint};
pub use overload::{OverloadConfig, OverloadGate, Permit, Priority, Rejection, RetryBudget};
pub use pdm_obs::{
    attribution, chrome_trace_json, Attribution, AttributionTable, FlightDump, FlightEvent,
    MetricsRegistry, MetricsSnapshot, QueryProfile, Recorder, SpanKind, SpanRecord, Subsystem,
    TailSampler, TraceContext, TraceTree,
};
pub use product::{ObjectId, ProductNode, ProductTree};
pub use repl::{
    replay_prefix, AckedWrite, Cluster, ClusterConfig, FailoverReport, ReplError, ReplicaSite,
    ReplicationFeed, RoutedRead, RoutedSession, Staleness, WriteReceipt,
};
pub use resilience::{DegradationController, RetryPolicy};
pub use rules::condition::{AggFunc, CmpOp, Condition, RowPredicate};
pub use rules::table::RuleTable;
pub use rules::{ActionKind, Rule, UserPattern};
pub use server::PdmServer;
pub use session::{ExpandOutcome, QueryOutcome, Session, SessionConfig, SessionError};
pub use shared::{Acquire, CacheStats, LockEvent, LockTable, SharedServer, SharedServerError};
